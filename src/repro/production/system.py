"""The production system facade: recognize–act cycle over the network.

:class:`ProductionSystem` ties together working memory, the TREAT
network (whose alpha layer is the paper's predicate index), a conflict
set with OPS5-style resolution (priority, then LEX recency, then rule
age), refraction, and the recognize–act loop::

    ps = ProductionSystem()
    ps.add_rule(
        "greet",
        patterns=[Pattern("person", [Test("name", "=", Var("n"))])],
        action=lambda ctx: print("hello", ctx["n"]),
    )
    ps.assert_fact("person", name="Ada")
    ps.run()        # -> hello Ada

Actions receive a :class:`ProductionContext` giving variable bindings
(``ctx["n"]``), the matched WMEs (``ctx.wmes``), and the OPS5 verbs
``make`` / ``remove`` / ``modify`` / ``halt``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import RuleCycleError, RuleError, UnknownRuleError
from .memory import WME, WorkingMemory
from .network import Instantiation, ProductionRule, TreatNetwork
from .patterns import Pattern

__all__ = ["ProductionSystem", "ProductionContext", "Halt"]


class Halt(Exception):
    """Raised by ``ctx.halt()`` to stop the recognize–act cycle."""


class ProductionContext:
    """What an action sees when its rule fires."""

    __slots__ = ("system", "rule", "wmes", "bindings", "_halted")

    def __init__(
        self,
        system: "ProductionSystem",
        rule: ProductionRule,
        wmes: Tuple[WME, ...],
        bindings: Dict[str, Any],
    ):
        self.system = system
        self.rule = rule
        self.wmes = wmes
        self.bindings = bindings
        self._halted = False

    def __getitem__(self, var_name: str) -> Any:
        """Value of a bound variable (``ctx["x"]``)."""
        try:
            return self.bindings[var_name]
        except KeyError:
            raise RuleError(
                f"rule {self.rule.name!r} did not bind variable ?{var_name}"
            ) from None

    def get(self, var_name: str, default: Any = None) -> Any:
        return self.bindings.get(var_name, default)

    # -- the OPS5 action verbs -----------------------------------------

    def make(self, wme_type: str, **attributes: Any) -> WME:
        """Assert a new fact (OPS5 ``make``)."""
        return self.system.assert_fact(wme_type, **attributes)

    def remove(self, target: Union[int, WME]) -> None:
        """Retract a matched element (OPS5 ``remove``).

        *target* is a WME, a WME id, or a 1-based index into the
        rule's positive condition elements (OPS5's ``remove 2``).
        """
        self.system.retract(self._resolve(target))

    def modify(self, target: Union[int, WME], **changes: Any) -> WME:
        """Change attributes of a matched element (OPS5 ``modify``)."""
        return self.system.modify(self._resolve(target), **changes)

    def halt(self) -> None:
        """Stop the recognize–act cycle after this action returns."""
        self._halted = True

    def _resolve(self, target: Union[int, WME]) -> WME:
        if isinstance(target, WME):
            return target
        if isinstance(target, int) and 1 <= target <= len(self.wmes):
            return self.wmes[target - 1]
        wme = self.system.working_memory.get(target) if isinstance(target, int) else None
        if wme is None:
            raise RuleError(f"cannot resolve WME reference {target!r}")
        return wme

    def __repr__(self) -> str:
        return f"<ProductionContext {self.rule.name} {self.bindings}>"


class ProductionSystem:
    """An OPS5-style forward-chaining production system.

    The alpha network is the paper's two-level predicate index, so the
    per-fact matching cost is what the paper's evaluation measures —
    the expert-system application called out in its abstract.
    """

    def __init__(self, alpha_index=None) -> None:
        """*alpha_index* overrides the alpha-layer matcher (default:
        the paper's :class:`~repro.core.predicate_index.PredicateIndex`;
        any Section 2 baseline matcher also works — used by the
        expert-system scale benchmark)."""
        self.working_memory = WorkingMemory()
        self.network = TreatNetwork(self.working_memory, alpha_index)
        #: key -> live instantiation (the conflict set)
        self._conflict_set: Dict[Tuple, Instantiation] = {}
        #: refraction: keys that already fired (and whose WMEs still live)
        self._fired: set = set()
        self._halted = False
        self.total_fired = 0
        #: optional tracer called with each Instantiation as it fires
        #: (OPS5's ``watch`` facility)
        self.trace: Optional[Callable[[Instantiation], Any]] = None

    # -- rule management -------------------------------------------------

    def add_rule(
        self,
        name: str,
        patterns: Union[str, Sequence[Pattern]],
        action: Callable[[ProductionContext], Any],
        priority: int = 0,
    ) -> ProductionRule:
        """Compile and install a production; matches existing facts.

        ``patterns`` is a Pattern sequence or the textual OPS5 form::

            ps.add_rule(
                "over-budget",
                '(emp ^salary ?s ^dept ?d) (dept ^name ?d ^budget < ?s)',
                action,
            )

        (note: inequality against a *variable* is written with the
        variable on the right, and the variable must be bound by an
        earlier element).  Instantiations over already-present WMEs
        enter the conflict set immediately — productions are
        declarative, so rule/fact arrival order must not change the
        result.
        """
        if isinstance(patterns, str):
            from .parser import parse_lhs

            patterns = parse_lhs(patterns)
        rule = ProductionRule(name, patterns, action, priority)
        self.network.add_rule(rule)
        for instantiation in self.network.all_instantiations(rule):
            self._conflict_set[instantiation.key] = instantiation
        return rule

    def remove_rule(self, name: str) -> None:
        """Uninstall a production and drop its pending instantiations."""
        self.network.remove_rule(name)
        for key in [k for k in self._conflict_set if k[0] == name]:
            del self._conflict_set[key]
        self._fired = {k for k in self._fired if k[0] != name}

    def rule(self, name: str) -> ProductionRule:
        for rule in self.network.rules():
            if rule.name == name:
                return rule
        raise UnknownRuleError(name)

    # -- working-memory verbs ------------------------------------------------

    def assert_fact(self, wme_type: str, **attributes: Any) -> WME:
        """Add a fact; updates the conflict set incrementally."""
        wme = self.working_memory.insert(wme_type, attributes)
        new_instantiations, blocked_rules = self.network.assert_wme(wme)
        for instantiation in new_instantiations:
            self._conflict_set.setdefault(instantiation.key, instantiation)
        if blocked_rules:
            self._revalidate(blocked_rules)
        return wme

    def retract(self, target: Union[int, WME]) -> WME:
        """Remove a fact; prunes and re-enables instantiations."""
        wme = target if isinstance(target, WME) else self._require(target)
        self.working_memory.remove(wme.wme_id)
        removed_ids, enabled = self.network.retract_wme(wme)
        for key in [
            k
            for k in self._conflict_set
            if any(wme_id in removed_ids for wme_id in k[1:])
        ]:
            del self._conflict_set[key]
        self._fired = {
            k for k in self._fired if not any(w in removed_ids for w in k[1:])
        }
        for instantiation in enabled:
            if instantiation.key not in self._fired:
                self._conflict_set.setdefault(instantiation.key, instantiation)
        return wme

    def modify(self, target: Union[int, WME], **changes: Any) -> WME:
        """OPS5 ``modify``: retract + re-assert with a fresh timetag."""
        wme = target if isinstance(target, WME) else self._require(target)
        self.retract(wme)
        return self.assert_fact(wme.wme_type, **{**wme.attributes, **changes})

    def _require(self, wme_id: int) -> WME:
        wme = self.working_memory.get(wme_id)
        if wme is None:
            raise RuleError(f"no working-memory element {wme_id}")
        return wme

    def facts(self, wme_type: Optional[str] = None) -> List[WME]:
        """Current WMEs, optionally filtered by type."""
        if wme_type is None:
            return list(self.working_memory)
        return list(self.working_memory.by_type(wme_type))

    def _revalidate(self, rule_names) -> None:
        """Drop conflict-set entries newly blocked by a negated match."""
        for key in [k for k in self._conflict_set if k[0] in rule_names]:
            if not self.network.check_instantiation(self._conflict_set[key]):
                del self._conflict_set[key]

    # -- recognize-act cycle -----------------------------------------------

    def conflict_set(self) -> List[Instantiation]:
        """Pending instantiations, best-first (resolution order)."""
        pending = [
            inst
            for key, inst in self._conflict_set.items()
            if key not in self._fired
        ]
        pending.sort(key=self._resolution_key, reverse=True)
        return pending

    @staticmethod
    def _resolution_key(instantiation: Instantiation) -> Tuple:
        """Priority, then LEX recency (most recent timetags first)."""
        return (
            instantiation.rule.priority,
            instantiation.recency,
        )

    def step(self) -> Optional[Instantiation]:
        """Fire the single best instantiation; None if nothing to fire."""
        pending = self.conflict_set()
        if not pending:
            return None
        best = pending[0]
        self._fired.add(best.key)
        self._conflict_set.pop(best.key, None)
        best.rule.fire_count += 1
        self.total_fired += 1
        if self.trace is not None:
            self.trace(best)
        context = ProductionContext(self, best.rule, best.wmes, best.bindings)
        try:
            best.rule.action(context)
        except Halt:
            context._halted = True
        if context._halted:
            self._halted = True
        return best

    def run(self, limit: int = 10_000) -> int:
        """Recognize–act until quiescence, halt, or the firing limit.

        Returns the number of firings.  Exceeding *limit* raises
        :class:`~repro.errors.RuleCycleError`.
        """
        self._halted = False
        fired = 0
        while not self._halted:
            if fired >= limit:
                raise RuleCycleError(
                    f"production system did not reach quiescence within "
                    f"{limit} firings"
                )
            if self.step() is None:
                break
            fired += 1
        return fired

    def __repr__(self) -> str:
        return (
            f"<ProductionSystem {len(self.network.rules())} rules, "
            f"{len(self.working_memory)} facts, "
            f"{len(self.conflict_set())} pending>"
        )
