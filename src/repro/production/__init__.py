"""OPS5-style production system on the IBS-tree alpha network.

The paper's abstract promises the algorithm "could also be used to
improve the performance of forward-chaining inference engines for
large expert systems applications"; this subpackage is that engine:

* :class:`~repro.production.memory.WorkingMemory` — typed
  attribute/value facts with timetags;
* :class:`~repro.production.patterns.Pattern` /
  :class:`~repro.production.patterns.Var` — condition elements with
  variables, inequality tests, and negation;
* :class:`~repro.production.network.TreatNetwork` — TREAT matching
  with the paper's predicate index as the alpha layer;
* :class:`~repro.production.system.ProductionSystem` — conflict
  resolution (priority + LEX recency), refraction, and the
  recognize–act cycle;
* :func:`~repro.production.parser.parse_lhs` — the classic
  ``(type ^attr value ...)`` textual syntax.
"""

from .memory import WME, WorkingMemory
from .network import Instantiation, ProductionRule, TreatNetwork
from .parser import parse_lhs, parse_pattern
from .patterns import Pattern, Test, Var
from .system import Halt, ProductionContext, ProductionSystem

__all__ = [
    "ProductionSystem",
    "ProductionContext",
    "ProductionRule",
    "Instantiation",
    "TreatNetwork",
    "WorkingMemory",
    "WME",
    "Pattern",
    "Test",
    "Var",
    "Halt",
    "parse_pattern",
    "parse_lhs",
]
