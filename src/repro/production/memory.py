"""Working memory for the production system.

Working-memory elements (WMEs) are typed attribute/value facts.  Each
carries a monotonically increasing *timetag* (its recency, used by
conflict resolution) and a stable identifier.  The paper's matching
problem is "test each newly asserted fact against a collection of
predicates"; working memory is where those facts live.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from ..errors import RuleError

__all__ = ["WME", "WorkingMemory"]


class WME:
    """A working-memory element: type, attribute map, identity, recency."""

    __slots__ = ("wme_id", "wme_type", "attributes", "timetag")

    def __init__(self, wme_id: int, wme_type: str, attributes: Dict[str, Any], timetag: int):
        self.wme_id = wme_id
        self.wme_type = wme_type
        self.attributes = attributes
        self.timetag = timetag

    def get(self, attribute: str, default: Any = None) -> Any:
        """Attribute access with a default (mapping-style)."""
        return self.attributes.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        return self.attributes[attribute]

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def __repr__(self) -> str:
        body = " ".join(f"^{k} {v!r}" for k, v in self.attributes.items())
        return f"<wme {self.wme_id} ({self.wme_type}{(' ' + body) if body else ''})>"


class WorkingMemory:
    """The set of current WMEs, with assert/retract/modify."""

    def __init__(self) -> None:
        self._elements: Dict[int, WME] = {}
        self._id_counter = itertools.count(1)
        self._time_counter = itertools.count(1)

    def insert(self, wme_type: str, attributes: Mapping[str, Any]) -> WME:
        """Create and store a WME; returns it."""
        if not wme_type or not isinstance(wme_type, str):
            raise RuleError(f"WME type must be a non-empty string, got {wme_type!r}")
        wme = WME(
            next(self._id_counter),
            wme_type,
            dict(attributes),
            next(self._time_counter),
        )
        self._elements[wme.wme_id] = wme
        return wme

    def remove(self, wme_id: int) -> WME:
        """Remove and return a WME by identifier."""
        try:
            return self._elements.pop(wme_id)
        except KeyError:
            raise RuleError(f"no working-memory element {wme_id}") from None

    def touch(self, wme_id: int, changes: Mapping[str, Any]) -> Tuple[WME, WME]:
        """OPS5 ``modify``: new attribute values + fresh timetag.

        Returns ``(old_image, new_wme)``; the WME identity is kept, so
        references in match structures must be refreshed by the caller.
        """
        old = self.remove(wme_id)
        merged = dict(old.attributes)
        merged.update(changes)
        new = WME(wme_id, old.wme_type, merged, next(self._time_counter))
        self._elements[wme_id] = new
        return old, new

    def get(self, wme_id: int) -> Optional[WME]:
        """The WME stored under *wme_id*, or None."""
        return self._elements.get(wme_id)

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[WME]:
        return iter(self._elements.values())

    def __contains__(self, wme_id: int) -> bool:
        return wme_id in self._elements

    def by_type(self, wme_type: str) -> Iterator[WME]:
        """All WMEs of one type (full scan; match structures index better)."""
        return (wme for wme in self._elements.values() if wme.wme_type == wme_type)
