"""OPS5-flavoured textual syntax for condition elements.

Writing patterns as data structures is verbose; this parser accepts
the classic parenthesised form::

    (emp ^salary > 50000 ^dept ?d)
    (dept ^name ?d ^budget >= 100000)
    -(alarm ^severity "high")

Grammar per condition element::

    ce      := ['-'] '(' TYPE test* ')'
    test    := '^' ATTR [op] value
    op      := '=' | '<>' | '<' | '<=' | '>' | '>='     (default '=')
    value   := NUMBER | STRING | true | false | '?' VAR

A left-hand side is one or more condition elements, whitespace- or
newline-separated.  :func:`parse_lhs` returns the
:class:`~repro.production.patterns.Pattern` list that
:meth:`ProductionSystem.add_rule` accepts directly.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..errors import ParseError
from .patterns import COMPARATORS, Pattern, Test, Var

__all__ = ["parse_pattern", "parse_lhs"]

_OPS = sorted(COMPARATORS, key=len, reverse=True)  # longest first: <= before <


def _tokenize(text: str) -> List[Tuple[str, Any, int]]:
    tokens: List[Tuple[str, Any, int]] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "()^-?":
            tokens.append((ch, ch, i))
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            start = i
            i += 1
            chars: List[str] = []
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    chars.append(text[i + 1])
                    i += 2
                else:
                    chars.append(text[i])
                    i += 1
            if i >= n:
                raise ParseError("unterminated string in pattern", start)
            i += 1
            tokens.append(("string", "".join(chars), start))
            continue
        matched_op = next((op for op in _OPS if text.startswith(op, i)), None)
        if matched_op:
            tokens.append(("op", matched_op, i))
            i += len(matched_op)
            continue
        if ch.isdigit() or (
            ch in "+." and i + 1 < n and text[i + 1].isdigit()
        ):
            start = i
            while i < n and (text[i].isdigit() or text[i] in ".+eE-"):
                if text[i] == "-" and text[i - 1] not in "eE":
                    break
                i += 1
            literal = text[start:i]
            value = float(literal) if any(c in literal for c in ".eE") else int(literal)
            tokens.append(("number", value, start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] in "_-"):
                # hyphenated names (find-pair) are idiomatic OPS5; a
                # hyphen is part of the word unless followed by '('
                if text[i] == "-" and i + 1 < n and text[i + 1] == "(":
                    break
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered == "true":
                tokens.append(("boolean", True, start))
            elif lowered == "false":
                tokens.append(("boolean", False, start))
            else:
                tokens.append(("word", word, start))
            continue
        raise ParseError(f"unexpected character {ch!r} in pattern", i)
    tokens.append(("eof", None, n))
    return tokens


class _PatternParser:
    def __init__(self, tokens: List[Tuple[str, Any, int]]):
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Tuple[str, Any, int]:
        return self._tokens[self._pos]

    def advance(self) -> Tuple[str, Any, int]:
        token = self._tokens[self._pos]
        if token[0] != "eof":
            self._pos += 1
        return token

    def expect(self, kind: str) -> Tuple[str, Any, int]:
        token = self.current
        if token[0] != kind:
            raise ParseError(
                f"expected {kind!r}, found {token[0]!r} {token[1]!r}", token[2]
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.current[0] == "eof"

    def parse_ce(self) -> Pattern:
        negated = False
        if self.current[0] == "-":
            self.advance()
            negated = True
        self.expect("(")
        wme_type = self.expect("word")[1]
        tests: List[Test] = []
        while self.current[0] == "^":
            self.advance()
            attribute = self.expect("word")[1]
            op = "="
            if self.current[0] == "op":
                op = self.advance()[1]
            tests.append(Test(attribute, op, self.parse_value()))
        self.expect(")")
        return Pattern(wme_type, tests, negated=negated)

    def parse_value(self) -> Any:
        kind, value, position = self.current
        if kind == "?":
            self.advance()
            name = self.expect("word")[1]
            return Var(name)
        if kind in ("number", "string", "boolean"):
            self.advance()
            return value
        if kind == "-":
            self.advance()
            number = self.expect("number")
            return -number[1]
        if kind == "word":
            # bare words read as symbols (string constants), OPS5-style
            self.advance()
            return value
        raise ParseError(f"expected a value, found {kind!r} {value!r}", position)


def parse_pattern(text: str) -> Pattern:
    """Parse a single condition element."""
    parser = _PatternParser(_tokenize(text))
    pattern = parser.parse_ce()
    if not parser.at_end():
        token = parser.current
        raise ParseError(
            f"unexpected trailing input {token[1]!r}", token[2]
        )
    return pattern


def parse_lhs(text: str) -> List[Pattern]:
    """Parse one or more condition elements (a rule's whole LHS)."""
    parser = _PatternParser(_tokenize(text))
    patterns: List[Pattern] = []
    while not parser.at_end():
        patterns.append(parser.parse_ce())
    if not patterns:
        raise ParseError("left-hand side has no condition elements")
    return patterns
