"""Condition-element patterns for the production system.

A production rule's left-hand side is a sequence of *condition
elements* (OPS5 terminology), each matching working-memory elements of
one type.  A condition element is a :class:`Pattern`: a WME type plus
a list of :class:`Test` objects over attributes.  Tests against
constants compile into the IBS-tree predicate index (the "alpha
network"); tests involving :class:`Var` bindings are evaluated during
the join phase with the bindings accumulated from earlier condition
elements.

Examples::

    Pattern("emp", [Test("salary", ">", 50_000), Test("dept", "=", Var("d"))])
    Pattern("dept", [Test("name", "=", Var("d"))])
    Pattern("alarm", [], negated=True)       # "no alarm exists"
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import RuleError
from ..core.intervals import Interval
from ..predicates.clauses import (
    Clause,
    EqualityClause,
    FunctionClause,
    IntervalClause,
)
from ..predicates.predicate import Predicate

__all__ = ["Var", "Test", "Pattern", "COMPARATORS"]

COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_INTERVAL_BUILDERS = {
    "<": Interval.less_than,
    "<=": Interval.at_most,
    ">": Interval.greater_than,
    ">=": Interval.at_least,
}


class Var:
    """A pattern variable (OPS5's ``?x``).

    The first occurrence of a variable in a rule's condition elements
    *binds* it (for ``=`` tests) and later occurrences *test* against
    the bound value.  Variables are compared by name.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise RuleError(f"variable name must be a non-empty string, got {name!r}")
        self.name = name

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Var):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __repr__(self) -> str:
        return f"?{self.name}"


class Test:
    """One attribute test inside a pattern: ``attr op operand``.

    ``operand`` is a constant or a :class:`Var`.  ``op`` defaults to
    equality; the full set is ``= <> < <= > >=``.  A callable operand
    with op ``"?"`` denotes an opaque boolean test on the attribute
    (the paper's ``function(t.attribute)`` clause shape).
    """

    __slots__ = ("attribute", "op", "operand")

    #: pytest hint: this is a library class, not a test case.
    __test__ = False

    def __init__(self, attribute: str, op: str = "=", operand: Any = None):
        if op != "?" and op not in COMPARATORS:
            raise RuleError(f"unsupported test operator {op!r}")
        if op == "?" and not callable(operand):
            raise RuleError("op '?' requires a callable operand")
        self.attribute = attribute
        self.op = op
        self.operand = operand

    @property
    def is_variable(self) -> bool:
        return isinstance(self.operand, Var)

    @property
    def is_function(self) -> bool:
        return self.op == "?"

    def __repr__(self) -> str:
        return f"^{self.attribute} {self.op} {self.operand!r}"


class Pattern:
    """A condition element: WME type + tests (+ optional negation).

    The constant tests compile to a conjunctive
    :class:`~repro.predicates.Predicate` (via :meth:`alpha_predicate`)
    that the selection layer indexes; variable tests are evaluated by
    :meth:`bind` during joins.
    """

    __slots__ = ("wme_type", "tests", "negated")

    def __init__(
        self,
        wme_type: str,
        tests: Sequence[Test] = (),
        negated: bool = False,
    ):
        if not wme_type or not isinstance(wme_type, str):
            raise RuleError(f"pattern type must be a non-empty string, got {wme_type!r}")
        for test in tests:
            if not isinstance(test, Test):
                raise RuleError(f"not a Test: {test!r}")
        self.wme_type = wme_type
        self.tests = tuple(tests)
        self.negated = bool(negated)

    # -- alpha compilation ------------------------------------------------

    def alpha_predicate(self) -> Predicate:
        """The constant part of the pattern as an indexable predicate."""
        clauses: List[Clause] = []
        for test in self.tests:
            if test.is_variable:
                continue
            if test.is_function:
                clauses.append(
                    FunctionClause(test.attribute, test.operand)
                )
            elif test.op == "=":
                clauses.append(EqualityClause(test.attribute, test.operand))
            elif test.op == "<>":
                # non-indexable as a single clause; keep it opaque so the
                # pattern stays one predicate (exactness preserved)
                constant = test.operand
                clauses.append(
                    FunctionClause(
                        test.attribute,
                        lambda v, _c=constant: v != _c,
                        name=f"ne_{constant!r}",
                    )
                )
            else:
                clauses.append(
                    IntervalClause(
                        test.attribute, _INTERVAL_BUILDERS[test.op](test.operand)
                    )
                )
        return Predicate(self.wme_type, clauses)

    # -- variable handling ---------------------------------------------------

    def variable_tests(self) -> List[Test]:
        """The tests that reference variables (join-phase work)."""
        return [test for test in self.tests if test.is_variable]

    def bind(
        self, wme: Mapping[str, Any], bindings: Mapping[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """Extend *bindings* with this pattern's variables against *wme*.

        Returns the extended bindings dict, or None if any variable
        test fails (an unbound variable with a non-``=`` operator also
        fails: ordering requires binders before testers).
        """
        extended: Optional[Dict[str, Any]] = None
        current: Mapping[str, Any] = bindings
        for test in self.variable_tests():
            value = wme.get(test.attribute)
            if value is None:
                return None
            var_name = test.operand.name
            if var_name in current:
                bound = current[var_name]
                try:
                    ok = COMPARATORS[test.op](value, bound)
                except TypeError:
                    return None
                if not ok:
                    return None
            else:
                if test.op != "=":
                    return None  # cannot bind through an inequality
                if extended is None:
                    extended = dict(bindings)
                    current = extended
                extended[var_name] = value
        if extended is not None:
            return extended
        return dict(bindings)

    def binds(self) -> List[str]:
        """Names of variables this pattern can bind (``=`` var tests)."""
        return [
            test.operand.name
            for test in self.tests
            if test.is_variable and test.op == "="
        ]

    def __repr__(self) -> str:
        sign = "-" if self.negated else ""
        body = " ".join(repr(test) for test in self.tests)
        return f"{sign}({self.wme_type}{(' ' + body) if body else ''})"
