"""TREAT-style match network for the production system.

The paper's abstract: "the algorithm could also be used to improve the
performance of forward-chaining inference engines for large expert
systems applications".  This module is that application: a production
system match network whose **alpha layer is the paper's predicate
index** — each condition element's constant tests compile into a
conjunctive predicate indexed by the IBS-tree scheme — and whose join
layer is TREAT [Mir87]: no cached beta memories, just per-condition
alpha memories joined on demand with variable-consistency tests.

Data flow on ``assert(wme)``:

1. the predicate index reports every condition element whose constant
   part matches the WME (one stab per restricted attribute instead of
   testing every rule — the paper's speed-up);
2. the WME enters those condition elements' alpha memories;
3. for each *positive* matched condition element, the join phase pins
   the new WME there and extends bindings through the rule's other
   positive elements (smallest-memory-first would be TREAT's seed
   ordering; we keep declaration order so variable binders precede
   their uses, which the rule validator enforces);
4. fully joined instantiations are checked against the rule's
   *negated* elements and emitted;
5. a WME matching a negated element instead *invalidates* pending
   instantiations, and its later retraction re-enables them.
"""

from __future__ import annotations

import itertools
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.predicate_index import PredicateIndex
from ..errors import RuleError
from .memory import WME, WorkingMemory
from .patterns import Pattern

__all__ = ["ProductionRule", "Instantiation", "TreatNetwork"]


class ProductionRule:
    """A compiled production: patterns, action, priority.

    Validation performed at construction:

    * at least one positive (non-negated) condition element;
    * variables used in non-``=`` tests (or in negated elements) must
      be bound by an earlier positive element's ``=`` test, so the
      in-order join always has their values.
    """

    __slots__ = ("name", "patterns", "action", "priority", "fire_count")

    def __init__(
        self,
        name: str,
        patterns: Sequence[Pattern],
        action: Callable[..., Any],
        priority: int = 0,
    ):
        if not callable(action):
            raise RuleError(f"production {name!r} action must be callable")
        patterns = tuple(patterns)
        if not patterns:
            raise RuleError(f"production {name!r} needs at least one pattern")
        if all(p.negated for p in patterns):
            raise RuleError(
                f"production {name!r} needs at least one positive pattern"
            )
        self._validate_variable_order(name, patterns)
        self.name = name
        self.patterns = patterns
        self.action = action
        self.priority = priority
        self.fire_count = 0

    @staticmethod
    def _validate_variable_order(name: str, patterns: Sequence[Pattern]) -> None:
        bound: Set[str] = set()
        for pattern in patterns:
            if pattern.negated:
                continue
            for test in pattern.variable_tests():
                var = test.operand.name
                if test.op == "=":
                    bound.add(var)
                elif var not in bound:
                    raise RuleError(
                        f"production {name!r}: variable ?{var} is tested with "
                        f"{test.op!r} before any pattern binds it"
                    )
        for pattern in patterns:
            if not pattern.negated:
                continue
            for test in pattern.variable_tests():
                var = test.operand.name
                if var not in bound:
                    raise RuleError(
                        f"production {name!r}: variable ?{var} in a negated "
                        f"pattern is never bound by a positive pattern"
                    )

    def positive_indexes(self) -> List[int]:
        """Indexes of the positive condition elements, in order."""
        return [k for k, p in enumerate(self.patterns) if not p.negated]

    def negated_indexes(self) -> List[int]:
        """Indexes of the negated condition elements."""
        return [k for k, p in enumerate(self.patterns) if p.negated]

    def __repr__(self) -> str:
        return f"<ProductionRule {self.name!r} ({len(self.patterns)} CEs)>"


class Instantiation:
    """One complete match of a rule: the WMEs filling its positive CEs."""

    __slots__ = ("rule", "wmes", "bindings")

    def __init__(
        self,
        rule: ProductionRule,
        wmes: Tuple[WME, ...],
        bindings: Dict[str, Any],
    ):
        self.rule = rule
        self.wmes = wmes
        self.bindings = bindings

    @property
    def key(self) -> Tuple:
        """Identity for refraction / conflict-set dedup."""
        return (self.rule.name,) + tuple(w.wme_id for w in self.wmes)

    @property
    def recency(self) -> Tuple[int, ...]:
        """Timetags, most recent first (OPS5 LEX ordering key)."""
        return tuple(sorted((w.timetag for w in self.wmes), reverse=True))

    def __repr__(self) -> str:
        ids = ",".join(str(w.wme_id) for w in self.wmes)
        return f"<Instantiation {self.rule.name} [{ids}]>"


class TreatNetwork:
    """Alpha memories over a predicate index + on-demand joins."""

    def __init__(self, working_memory: WorkingMemory, alpha_index: Optional[PredicateIndex] = None):
        self._wm = working_memory
        self._alpha = alpha_index if alpha_index is not None else PredicateIndex()
        #: predicate ident -> (rule, ce_index)
        self._hooks: Dict[Hashable, Tuple[ProductionRule, int]] = {}
        #: (rule name, ce index) -> {wme_id: WME}
        self._memories: Dict[Tuple[str, int], Dict[int, WME]] = {}
        self._rules: Dict[str, ProductionRule] = {}

    # -- rule management -------------------------------------------------

    def add_rule(self, rule: ProductionRule) -> None:
        if rule.name in self._rules:
            raise RuleError(f"production {rule.name!r} already exists")
        registered: List[Hashable] = []
        try:
            for ce_index, pattern in enumerate(rule.patterns):
                predicate = pattern.alpha_predicate()
                self._alpha.add(predicate)
                registered.append(predicate.ident)
                self._hooks[predicate.ident] = (rule, ce_index)
                memory = self._memories[(rule.name, ce_index)] = {}
                # seed from existing working memory
                for wme in self._wm.by_type(pattern.wme_type):
                    if predicate.matches(wme.attributes):
                        memory[wme.wme_id] = wme
        except Exception:
            for ident in registered:
                self._alpha.remove(ident)
                self._hooks.pop(ident, None)
            for ce_index in range(len(rule.patterns)):
                self._memories.pop((rule.name, ce_index), None)
            raise
        self._rules[rule.name] = rule

    def remove_rule(self, name: str) -> ProductionRule:
        try:
            rule = self._rules.pop(name)
        except KeyError:
            from ..errors import UnknownRuleError

            raise UnknownRuleError(name) from None
        for ident, (hooked_rule, ce_index) in list(self._hooks.items()):
            if hooked_rule is rule:
                self._alpha.remove(ident)
                del self._hooks[ident]
                del self._memories[(name, ce_index)]
        return rule

    def rules(self) -> List[ProductionRule]:
        return list(self._rules.values())

    def memory(self, rule_name: str, ce_index: int) -> Dict[int, WME]:
        """The alpha memory of one condition element (live view)."""
        return self._memories[(rule_name, ce_index)]

    @property
    def alpha_index(self) -> PredicateIndex:
        """The underlying Figure 1 predicate index (for telemetry)."""
        return self._alpha

    # -- WME events --------------------------------------------------------

    def assert_wme(self, wme: WME) -> Tuple[List[Instantiation], Set[str]]:
        """Admit a WME; returns (new instantiations, rules to re-check).

        The second element names rules one of whose *negated* elements
        matched the WME: pending instantiations of those rules may now
        be blocked and must be re-validated by the caller.
        """
        new_instantiations: List[Instantiation] = []
        blocked_rules: Set[str] = set()
        for predicate in self._alpha.match(wme.wme_type, wme.attributes):
            rule, ce_index = self._hooks[predicate.ident]
            self._memories[(rule.name, ce_index)][wme.wme_id] = wme
            if rule.patterns[ce_index].negated:
                blocked_rules.add(rule.name)
            else:
                new_instantiations.extend(
                    self._join_with_pinned(rule, ce_index, wme)
                )
        return new_instantiations, blocked_rules

    def retract_wme(self, wme: WME) -> Tuple[Set[int], List[Instantiation]]:
        """Remove a WME; returns (its id as a set, newly enabled matches).

        Retraction from a *negated* element's memory can unblock
        instantiations, which are recomputed for the affected rules.
        """
        enabled: List[Instantiation] = []
        recheck: Set[str] = set()
        for (rule_name, ce_index), memory in self._memories.items():
            if memory.pop(wme.wme_id, None) is not None:
                rule = self._rules[rule_name]
                if rule.patterns[ce_index].negated:
                    recheck.add(rule_name)
        for rule_name in recheck:
            enabled.extend(self.all_instantiations(self._rules[rule_name]))
        return {wme.wme_id}, enabled

    # -- joining -----------------------------------------------------------

    def all_instantiations(self, rule: ProductionRule) -> List[Instantiation]:
        """Every current complete match of *rule* (used for re-checks)."""
        return list(self._join(rule, pinned_ce=None, pinned_wme=None))

    def _join_with_pinned(
        self, rule: ProductionRule, ce_index: int, wme: WME
    ) -> List[Instantiation]:
        return list(self._join(rule, pinned_ce=ce_index, pinned_wme=wme))

    def _join(
        self,
        rule: ProductionRule,
        pinned_ce: Optional[int],
        pinned_wme: Optional[WME],
    ) -> Iterator[Instantiation]:
        positives = rule.positive_indexes()

        def extend(
            position: int, chosen: List[WME], bindings: Dict[str, Any]
        ) -> Iterator[Instantiation]:
            if position == len(positives):
                if self._negations_clear(rule, bindings):
                    yield Instantiation(rule, tuple(chosen), dict(bindings))
                return
            ce_index = positives[position]
            pattern = rule.patterns[ce_index]
            if pinned_ce is not None and ce_index == pinned_ce:
                candidates: Iterator[WME] = iter((pinned_wme,))
            else:
                candidates = iter(
                    list(self._memories[(rule.name, ce_index)].values())
                )
            for candidate in candidates:
                extended = pattern.bind(candidate.attributes, bindings)
                if extended is None:
                    continue
                chosen.append(candidate)
                yield from extend(position + 1, chosen, extended)
                chosen.pop()

        yield from extend(0, [], {})

    def _negations_clear(
        self, rule: ProductionRule, bindings: Mapping[str, Any]
    ) -> bool:
        """True if no WME satisfies any negated element under *bindings*."""
        for ce_index in rule.negated_indexes():
            pattern = rule.patterns[ce_index]
            memory = self._memories[(rule.name, ce_index)]
            for wme in memory.values():
                if pattern.bind(wme.attributes, bindings) is not None:
                    return False
        return True

    def check_instantiation(self, instantiation: Instantiation) -> bool:
        """Is this instantiation still valid (WMEs live, negations clear)?"""
        rule = instantiation.rule
        if rule.name not in self._rules:
            return False
        for wme in instantiation.wmes:
            if self._wm.get(wme.wme_id) is not wme:
                return False
        return self._negations_clear(rule, instantiation.bindings)
