"""The PREDICATES table layer: storage, normalization, entry clauses.

:class:`ClauseCatalog` owns everything the paper's Figure 1 files under
"the PREDICATES table" plus the registration-time decisions around it:

* per-relation predicate storage (:class:`RelationState`), the
  non-indexable list, and the ``ident -> entry attribute(s)`` map;
* predicate **normalization** (same-attribute interval clauses merged,
  contradictions rejected);
* **entry-clause selection** — the paper's "most selective clause"
  choice via a pluggable selectivity estimator, or every indexable
  clause under multi-clause indexing — and feedback-driven entry-clause
  **migration** (:meth:`ClauseCatalog.retune`);
* the **compiled-residual cache**: each predicate's residual test
  compiled once into a tagged dispatch tuple (see
  :func:`compile_residual`) and reused by every batched match.

The catalog never descends a tree itself: tree storage and lifecycle
belong to :class:`~repro.match.store.TreeStore`, which registration
methods receive as an explicit collaborator, and stabbing belongs to
:class:`~repro.match.pipeline.MatchPipeline`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    MutableMapping,
    Optional,
    Set,
    Tuple,
)

from ..core.intervals import MINUS_INF, PLUS_INF
from ..core.selectivity import (
    DefaultEstimator,
    SelectivityEstimator,
    choose_index_clause,
    rank_index_clauses,
)
from ..errors import PredicateError, UnknownIntervalError
from ..predicates.clauses import FunctionClause, IntervalClause
from ..predicates.predicate import Predicate
from .observer import MatchObserver

__all__ = [
    "RelationState",
    "ClauseCatalog",
    "compile_residual",
    "vector_residual_spec",
    "TRIVIAL",
    "CLOSED",
    "SINGLE",
    "MULTI",
    "OPAQUE",
]


class RelationState:
    """Second-level index state for one relation (Figure 1, lower half).

    One record shared by the catalog layer (``predicates``,
    ``non_indexable``, ``indexed_under``, ``residuals``) and the tree
    store (``trees``, ``stab_cache``, ``epoch_floor``): the layers are
    separated by *method ownership*, while the per-relation state stays
    one allocation so the facade's rollback paths never have to keep
    two registries in sync.
    """

    __slots__ = (
        "name",
        "trees",
        "non_indexable",
        "indexed_under",
        "predicates",
        "residuals",
        "stab_cache",
        "epoch_floor",
        "version",
        "columnar_plane",
        "tree_backends",
    )

    def __init__(self, name: str = "?") -> None:
        #: the relation this record indexes — purely informational for
        #: most stores, but the disk tree store names segment files
        #: ``<relation>/<attribute>.g<N>.seg`` from it
        self.name = name
        #: attribute name -> interval index over that attribute's clauses
        self.trees: Dict[str, Any] = {}
        #: idents of predicates with no indexable clause
        self.non_indexable: Set[Hashable] = set()
        #: ident -> attributes whose trees hold the predicate's entry
        #: clause(s); a single attribute in the paper's scheme, possibly
        #: several under multi-clause indexing
        self.indexed_under: Dict[Hashable, Tuple[str, ...]] = {}
        #: the PREDICATES table: ident -> full predicate
        self.predicates: Dict[Hashable, Predicate] = {}
        #: ident -> compiled residual evaluator (built lazily by the
        #: batched pipeline); see :func:`compile_residual`
        self.residuals: Dict[Hashable, Tuple[Any, ...]] = {}
        #: LRU stab cache: ``(attribute, tree_epoch, value) ->
        #: frozenset(idents)``.  Because the tree's epoch is part of
        #: the key, a mutation invalidates every prior entry *by key
        #: mismatch* — no scan — and stale entries age out of the LRU.
        #: Cleared only when the tree map itself changes shape (a tree
        #: created or dropped), since a fresh tree restarts its epochs.
        #: ``freeze()`` replaces it with a plain ``dict`` (insertion
        #: order preserved, no LRU methods needed) so frozen-mode
        #: lock-free readers only ever do GIL-atomic dict ops.
        self.stab_cache: "MutableMapping[Tuple[str, int, Any], frozenset]" = (
            OrderedDict()
        )
        #: lowest epoch any *future* tree of this relation may carry.
        #: Raised past a tree's last epoch whenever that tree is dropped
        #: (remove/rollback/migration/rebuild), and seeded into every
        #: fresh tree, so ``(attribute, tree_epoch)`` pairs are never
        #: reused across tree generations — epoch-keyed caches and
        #: epoch-snapshot readers can rely on monotonicity.
        self.epoch_floor: int = 0
        #: monotone mutation counter, bumped by every catalog operation
        #: that changes what this relation matches (register, remove,
        #: entry-clause migration, rebuild, rollback).  Derived
        #: read-path structures — the columnar plane below — key their
        #: caches on it, so a mutation invalidates them by version
        #: mismatch instead of an explicit notification.
        self.version: int = 0
        #: ``(version, plane_or_None)`` — the relation's cached columnar
        #: batch plane (see :mod:`repro.match.columnar`), or ``None``
        #: when never built.  ``plane_or_None`` is ``None`` when the
        #: relation's shape cannot be vectorized.  A frozen relation's
        #: version never changes, so the plane is built at most once per
        #: snapshot and shared by lock-free readers (single attribute
        #: assignment; concurrent builders compute equal planes).
        self.columnar_plane: Optional[Tuple[int, Any]] = None
        #: attribute -> ``(backend name, tree factory)`` override,
        #: written by the auto-selector (:mod:`repro.match.autoselect`)
        #: when it migrates an attribute's tree off the store-wide
        #: default.  Consulted by :meth:`TreeStore.new_tree` /
        #: ``build_tree`` so the pick survives rebuilds and rollbacks;
        #: seeded from the catalog's ``backend_plan`` when the state
        #: record is (re-)created.
        self.tree_backends: Dict[str, Tuple[str, Any]] = {}


class ClauseCatalog:
    """Predicate storage plus the decisions made at registration time.

    Parameters
    ----------
    estimator:
        Selectivity estimator used to pick each predicate's entry
        clause; defaults to the System R style constants.
    multi_clause:
        The paper indexes exactly **one** clause per predicate — the
        most selective — and relies on the residual test for the rest.
        With ``multi_clause=True`` every indexable clause enters its
        attribute's tree and a predicate is a candidate only when *all*
        of its indexed clauses match.
    """

    def __init__(
        self,
        estimator: Optional[SelectivityEstimator] = None,
        multi_clause: bool = False,
    ) -> None:
        self.estimator: SelectivityEstimator = estimator or DefaultEstimator()
        self.multi_clause = bool(multi_clause)
        #: relation name -> per-relation state record
        self.relations: Dict[str, RelationState] = {}
        #: ident -> relation routing map
        self.relation_of: Dict[Hashable, str] = {}
        #: relation -> attribute -> ``(backend name, factory)``: the
        #: auto-selector's durable per-attribute picks.  A relation's
        #: state record can be dropped (last predicate removed) and
        #: recreated later; the plan outlives it and re-seeds
        #: ``RelationState.tree_backends`` on recreation.
        self.backend_plan: Dict[str, Dict[str, Tuple[str, Any]]] = {}

    # -- normalization and entry-clause selection ----------------------

    def normalize(self, predicate: Predicate) -> Predicate:
        """Normalize *predicate*; reject the unsatisfiable."""
        normalized = predicate.normalized()
        if normalized is None:
            raise PredicateError(
                f"predicate {predicate} is unsatisfiable and cannot be indexed"
            )
        return normalized

    def entry_clauses_of(self, normalized: Predicate) -> List[IntervalClause]:
        """The clause(s) *normalized* enters into the attribute trees.

        One (the most selective) in the paper's scheme; every indexable
        clause under multi-clause indexing; empty when the predicate
        has no indexable clause.  Shared by every registration path so
        they all make the same entry-clause choice.
        """
        if self.multi_clause:
            return list(normalized.indexable_clauses())
        chosen = choose_index_clause(normalized, self.estimator)
        return [chosen] if chosen is not None else []

    # -- registration ---------------------------------------------------

    def _state_for(self, relation: str) -> RelationState:
        """The relation's state record, created (and plan-seeded) on demand."""
        state = self.relations.get(relation)
        if state is None:
            state = self.relations[relation] = RelationState(relation)
            plan = self.backend_plan.get(relation)
            if plan:
                state.tree_backends = dict(plan)
        return state

    def register(self, store: Any, predicate: Predicate) -> Hashable:
        """Index *predicate*; returns its identifier.

        The predicate is normalized first; a contradictory predicate is
        rejected since it can never match.  Atomic: a failure while
        entering clauses leaves no trace of the predicate behind.
        """
        normalized = self.normalize(predicate)
        ident = normalized.ident
        if ident in self.relation_of:
            raise PredicateError(f"predicate ident {ident!r} already indexed")
        state = self._state_for(normalized.relation)
        try:
            self.enter_clauses(store, state, ident, normalized)
        except BaseException:
            # Atomic add: a failure while entering clauses (e.g. an
            # injected fault in a tree insert) must not leave the
            # predicate half-indexed.  Tree-level inserts roll
            # themselves back; here we undo entries in *other* trees
            # and drop anything this call created.
            self.rollback_add(store, normalized.relation, state, ident)
            raise
        state.predicates[ident] = normalized
        self.relation_of[ident] = normalized.relation
        state.version += 1
        return ident

    def register_many(
        self, store: Any, predicates: Iterable[Predicate]
    ) -> List[Hashable]:
        """Bulk-register *predicates*; returns their identifiers in order.

        Entry clauses destined for an attribute with **no existing
        tree** are collected and handed to the backend's ``bulk_load``
        in one pass; clauses for attributes that already have a live
        tree are inserted incrementally.  Atomic: on any failure every
        predicate this call registered is removed again before the
        exception propagates.
        """
        normalized_list: List[Predicate] = []
        seen: Set[Hashable] = set()
        for predicate in predicates:
            normalized = self.normalize(predicate)
            ident = normalized.ident
            if ident in self.relation_of or ident in seen:
                raise PredicateError(f"predicate ident {ident!r} already indexed")
            seen.add(ident)
            normalized_list.append(normalized)
        by_relation: Dict[str, List[Predicate]] = {}
        for normalized in normalized_list:
            by_relation.setdefault(normalized.relation, []).append(normalized)
        added: List[Tuple[str, Hashable]] = []
        try:
            for relation, group in by_relation.items():
                state = self._state_for(relation)
                fresh: Dict[str, List[Tuple[Any, Hashable]]] = {}
                for normalized in group:
                    ident = normalized.ident
                    state.predicates[ident] = normalized
                    self.relation_of[ident] = relation
                    added.append((relation, ident))
                    entry_clauses = self.entry_clauses_of(normalized)
                    if not entry_clauses:
                        state.non_indexable.add(ident)
                        continue
                    state.indexed_under[ident] = tuple(
                        clause.attribute for clause in entry_clauses
                    )
                    for clause in entry_clauses:
                        tree = state.trees.get(clause.attribute)
                        if tree is None:
                            fresh.setdefault(clause.attribute, []).append(
                                (clause.interval, ident)
                            )
                        else:
                            tree.insert(clause.interval, ident)
                for attribute, pairs in fresh.items():
                    state.trees[attribute] = store.build_tree(
                        state, pairs, attribute
                    )
                    state.stab_cache.clear()  # tree map changed shape
                state.version += 1
        except BaseException:
            for relation, ident in added:
                state_or_none = self.relations.get(relation)
                if state_or_none is None:
                    continue
                state_or_none.predicates.pop(ident, None)
                state_or_none.residuals.pop(ident, None)
                self.relation_of.pop(ident, None)
                self.rollback_add(store, relation, state_or_none, ident)
            raise
        return [normalized.ident for normalized in normalized_list]

    def attach_entry(
        self,
        relation: str,
        normalized: Predicate,
        under: Tuple[str, ...],
    ) -> Hashable:
        """Register *normalized* in the catalog **without touching trees**.

        Cold-start seam for the disk tier: recovery already has the
        predicate's entry attributes (recorded at checkpoint time) and
        the attribute trees arrive separately as mmap'd segments, so
        re-running entry-clause selection — or worse, re-inserting into
        trees that are about to be attached — would be wasted work and
        could disagree with the sealed segments.  *under* is the entry
        attribute tuple from the checkpoint; empty means non-indexable.
        The predicate must already be normalized.
        """
        ident = normalized.ident
        if ident in self.relation_of:
            raise PredicateError(f"predicate ident {ident!r} already indexed")
        state = self._state_for(relation)
        state.predicates[ident] = normalized
        self.relation_of[ident] = relation
        if under:
            state.indexed_under[ident] = tuple(under)
        else:
            state.non_indexable.add(ident)
        state.version += 1
        return ident

    def enter_clauses(
        self, store: Any, state: RelationState, ident: Hashable, normalized: Predicate
    ) -> None:
        """Enter *normalized*'s clause(s) into the per-attribute trees."""
        entry_clauses = self.entry_clauses_of(normalized)
        if not entry_clauses:
            state.non_indexable.add(ident)
            return
        for clause in entry_clauses:
            tree = state.trees.get(clause.attribute)
            if tree is None:
                tree = state.trees[clause.attribute] = store.new_tree(
                    state, clause.attribute
                )
                state.stab_cache.clear()  # tree map changed shape
            tree.insert(clause.interval, ident)
        state.indexed_under[ident] = tuple(
            clause.attribute for clause in entry_clauses
        )

    def rollback_add(
        self, store: Any, relation: str, state: RelationState, ident: Hashable
    ) -> None:
        """Undo a partially-applied :meth:`register` for *ident*."""
        state.version += 1
        state.non_indexable.discard(ident)
        state.indexed_under.pop(ident, None)
        for attribute in list(state.trees):
            tree = state.trees[attribute]
            if ident in tree:
                tree.delete(ident)
            if not tree:
                store.drop_tree(state, attribute)
        if not state.predicates and not state.trees:
            self.relations.pop(relation, None)

    def unregister(self, store: Any, ident: Hashable) -> Predicate:
        """Un-index and return the predicate registered under *ident*."""
        try:
            relation = self.relation_of.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        state = self.relations[relation]
        state.version += 1
        predicate = state.predicates.pop(ident)
        state.residuals.pop(ident, None)
        attributes = state.indexed_under.pop(ident, None)
        if attributes is None:
            state.non_indexable.discard(ident)
        else:
            for attribute in attributes:
                tree = state.trees[attribute]
                tree.delete(ident)
                if not tree:
                    store.drop_tree(state, attribute)
        if not state.predicates:
            del self.relations[relation]
        return predicate

    # -- adaptive entry-clause migration --------------------------------

    def retune(
        self,
        store: Any,
        feedback: Any,
        migration_ratio: float,
        observer: MatchObserver,
        relation: Optional[str] = None,
    ) -> List[Hashable]:
        """One feedback-driven migration pass; returns migrated idents.

        For every indexed predicate of *relation* (or of every
        relation) with enough observed samples, compare the
        **observed** selectivity of its current entry clause against
        the estimated selectivity of its best indexable clause on a
        *different* attribute; when the alternative's estimate is below
        ``observed * migration_ratio`` the entry clause is migrated.
        After a pass the relation's feedback window is reset so the
        next decision rests on fresh evidence.  No-op under
        multi-clause indexing.
        """
        if self.multi_clause:
            return []
        migrated: List[Hashable] = []
        targets = [relation] if relation is not None else list(self.relations)
        for rel in targets:
            state = self.relations.get(rel)
            if state is None:
                continue
            if feedback.tuples_seen(rel) < feedback.min_samples:
                continue
            for ident in list(state.indexed_under):
                observed = feedback.observed_selectivity(rel, ident)
                if observed is None:
                    continue
                current = state.indexed_under.get(ident)
                if not current:
                    continue
                predicate = state.predicates[ident]
                alternative: Optional[Tuple[float, IntervalClause]] = None
                for score, clause in rank_index_clauses(predicate, self.estimator):
                    if clause.attribute != current[0]:
                        alternative = (score, clause)
                        break
                if alternative is None:
                    continue  # no different-attribute clause to move to
                score, clause = alternative
                if score < observed * migration_ratio:
                    if self.migrate_entry_clause(
                        store, rel, state, ident, clause, observer
                    ):
                        migrated.append(ident)
            feedback.reset(
                rel,
                list(state.indexed_under) + list(state.non_indexable),
            )
        return migrated

    def migrate_entry_clause(
        self,
        store: Any,
        relation: str,
        state: RelationState,
        ident: Hashable,
        clause: IntervalClause,
        observer: MatchObserver,
    ) -> bool:
        """Move *ident*'s entry clause into *clause*'s attribute tree.

        Transactional per predicate: the old entry is re-inserted if
        the new tree's insert fails, and if *that* also fails the
        predicate is parked on the non-indexable list (brute force is
        always sound) before the failure propagates.
        """
        old_attr = state.indexed_under[ident][0]
        new_attr = clause.attribute
        if new_attr == old_attr:
            return False
        state.version += 1
        old_tree = state.trees[old_attr]
        old_interval = old_tree.get(ident)
        new_tree = state.trees.get(new_attr)
        created = new_tree is None
        if created:
            new_tree = store.new_tree(state, new_attr)
        old_tree.delete(ident)
        try:
            new_tree.insert(clause.interval, ident)
        except BaseException:
            try:
                old_tree.insert(old_interval, ident)
            except BaseException:
                # Double fault: neither tree accepted the entry.  Brute
                # force is always sound, so park the predicate on the
                # non-indexable list rather than lose it.
                state.indexed_under.pop(ident, None)
                state.residuals.pop(ident, None)
                state.non_indexable.add(ident)
                if not old_tree:
                    store.drop_tree(state, old_attr)
                raise
            raise
        if created:
            state.trees[new_attr] = new_tree
            state.stab_cache.clear()  # tree map changed shape
        if not old_tree:
            store.drop_tree(state, old_attr)
        state.indexed_under[ident] = (new_attr,)
        # the residual must re-test the old entry clause and skip the
        # new one; the batched pipeline recompiles it lazily
        state.residuals.pop(ident, None)
        observer.on_migration(relation, ident, old_attr, new_attr)
        return True

    # -- rebuild --------------------------------------------------------

    def rebuild_relation(
        self, store: Any, relation: str, state: RelationState
    ) -> None:
        """Rebuild *relation*'s trees and registries from its predicates.

        Entry clauses are grouped by attribute and each fresh tree is
        built with ``bulk_load`` — O(N) endpoint sorting plus a
        balanced build, instead of N incremental inserts.  Predicates
        are already normalized in the registry, so nothing is
        re-normalized here.
        """
        state.version += 1
        for tree in state.trees.values():
            store.retire_tree(state, tree)
        state.trees = {}
        state.non_indexable = set()
        state.indexed_under = {}
        state.residuals = {}
        state.stab_cache.clear()  # dropped trees: epochs jump past the floor
        per_attribute: Dict[str, List[Tuple[Any, Hashable]]] = {}
        for ident, predicate in state.predicates.items():
            self.relation_of[ident] = relation
            entry_clauses = self.entry_clauses_of(predicate)
            if not entry_clauses:
                state.non_indexable.add(ident)
                continue
            for clause in entry_clauses:
                per_attribute.setdefault(clause.attribute, []).append(
                    (clause.interval, ident)
                )
            state.indexed_under[ident] = tuple(
                clause.attribute for clause in entry_clauses
            )
        for attribute, pairs in per_attribute.items():
            state.trees[attribute] = store.build_tree(state, pairs, attribute)

    # -- residual cache -------------------------------------------------

    def ensure_residuals(self, state: RelationState) -> Dict[Hashable, Tuple[Any, ...]]:
        """Compile (and cache) every predicate's residual evaluator."""
        residuals = state.residuals
        predicates = state.predicates
        if len(residuals) != len(predicates):
            indexed_under = state.indexed_under
            for ident, predicate in predicates.items():
                if ident not in residuals:
                    residuals[ident] = compile_residual(
                        predicate, indexed_under.get(ident, ())
                    )
        return residuals

    # -- introspection --------------------------------------------------

    def state(self, relation: str) -> Optional[RelationState]:
        """The per-relation state record, or None."""
        return self.relations.get(relation)

    def get(self, ident: Hashable) -> Predicate:
        """Return the predicate registered under *ident*."""
        try:
            relation = self.relation_of[ident]
        except KeyError:
            raise UnknownIntervalError(ident) from None
        return self.relations[relation].predicates[ident]

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self.relation_of

    def __len__(self) -> int:
        return len(self.relation_of)

    def predicates_for(self, relation: str) -> List[Predicate]:
        """All predicates registered for *relation*."""
        state = self.relations.get(relation)
        if state is None:
            return []
        return list(state.predicates.values())

    def indexed_attributes(self, ident: Hashable) -> Tuple[str, ...]:
        """Every attribute whose tree holds this predicate (may be empty)."""
        relation = self.relation_of.get(ident)
        if relation is None:
            raise UnknownIntervalError(ident)
        return self.relations[relation].indexed_under.get(ident, ())


# ----------------------------------------------------------------------
# compiled residual evaluators (the pipeline's residual stage)
# ----------------------------------------------------------------------
#
# A residual test re-checks a candidate's conjunction against the
# tuple.  ``Predicate.matches`` pays, per clause, a dict lookup, a
# method dispatch, and ``Interval.contains``'s sentinel-aware helper
# chain — and it re-tests the entry clause the index probe already
# proved.  The compiled form drops the proven clauses (the entry
# clause in the paper's scheme; every indexed clause under
# multi-clause indexing) and shape-specializes what remains.  Entries
# are small tagged tuples dispatched inline by the batched pipeline:
#
#   (TRIVIAL, pred)                      nothing left to test
#   (CLOSED,  pred, attr, low, high)     one closed interval, inlined
#   (SINGLE,  pred, attr, check, memo)   one residual attribute
#   (MULTI,   pred, attrs, eval, memo)   several residual attributes
#   (OPAQUE,  pred)                      unknown clause subclass:
#                                        fall back to pred.matches
#
# ``memo`` marks interval-only residuals, whose verdicts depend only
# on ``==``-interchangeable values (the total-order assumption the
# tree itself rests on) and are therefore safe to memoize; function
# clauses are not (a type-sensitive function distinguishes ``2`` from
# ``2.0``, which share a memo key).  Semantics are identical to
# clause.matches(): None never matches, the infinity sentinels never
# match an interval clause, incomparable values fail the clause
# instead of raising, and function-clause exceptions propagate.
#
# Interval tests are compiled in the same *rejection* style as
# ``Interval.contains`` — fail when a bound comparison proves the
# value outside, succeed otherwise — rather than as positive
# containment tests.  The two styles agree on every totally-ordered
# value but diverge on partially-ordered ones: ``nan <= high`` and
# ``nan > high`` are both False, so a positive test rejects NaN while
# the per-tuple oracle (``contains``) accepts it.  The per-tuple path
# is the documented semantics, so the compiled form must mirror its
# branch structure exactly.

TRIVIAL, CLOSED, SINGLE, MULTI, OPAQUE = range(5)


def compile_residual(
    predicate: Predicate, proven_attrs: Tuple[str, ...]
) -> Tuple[Any, ...]:
    """Compile *predicate*'s residual into a tagged dispatch tuple.

    ``proven_attrs`` are the attributes whose interval clauses the
    index probe has already verified (the tuple stabbed them); those
    clauses are skipped.  Function clauses are never proven by a probe
    and are always kept.
    """
    residual: List[Any] = []
    for clause in predicate.clauses:
        if isinstance(clause, IntervalClause):
            if clause.attribute in proven_attrs:
                continue  # proven by the index probe
            residual.append(clause)
        elif isinstance(clause, FunctionClause):
            residual.append(clause)
        else:
            return (OPAQUE, predicate)
    if not residual:
        return (TRIVIAL, predicate)
    if len(residual) == 1:
        clause = residual[0]
        if isinstance(clause, IntervalClause):
            interval = clause.interval
            if (
                interval.low is not MINUS_INF
                and interval.high is not PLUS_INF
                and interval.low_inclusive
                and interval.high_inclusive
            ):
                return (CLOSED, predicate, clause.attribute, interval.low, interval.high)
            return (
                SINGLE,
                predicate,
                clause.attribute,
                _compile_interval_vcheck(interval),
                True,
            )
        return (
            SINGLE,
            predicate,
            clause.attribute,
            _compile_function_vcheck(clause),
            False,
        )
    attrs: List[str] = []
    for clause in residual:
        if clause.attribute not in attrs:
            attrs.append(clause.attribute)
    memo_ok = all(isinstance(clause, IntervalClause) for clause in residual)
    vchecks = [
        _compile_interval_vcheck(clause.interval)
        if isinstance(clause, IntervalClause)
        else _compile_function_vcheck(clause)
        for clause in residual
    ]
    if len(attrs) == 1:

        def combined(
            v: Any, _vchecks: Tuple[Callable[[Any], bool], ...] = tuple(vchecks)
        ) -> bool:
            for vcheck in _vchecks:
                if not vcheck(v):
                    return False
            return True

        return (SINGLE, predicate, attrs[0], combined, memo_ok)
    pairs = tuple(
        (clause.attribute, vcheck) for clause, vcheck in zip(residual, vchecks)
    )
    if len(pairs) == 2:
        (attr_a, check_a), (attr_b, check_b) = pairs

        def evaluate(
            tup_get: Callable[[str], Any],
            _a: str = attr_a,
            _ca: Callable[[Any], bool] = check_a,
            _b: str = attr_b,
            _cb: Callable[[Any], bool] = check_b,
        ) -> bool:
            return _ca(tup_get(_a)) and _cb(tup_get(_b))

    else:

        def evaluate(
            tup_get: Callable[[str], Any],
            _pairs: Tuple[Tuple[str, Callable[[Any], bool]], ...] = pairs,
        ) -> bool:
            for attribute, vcheck in _pairs:
                if not vcheck(tup_get(attribute)):
                    return False
            return True

    return (MULTI, predicate, tuple(attrs), evaluate, memo_ok)


def _compile_interval_vcheck(interval: Any) -> Callable[[Any], bool]:
    # Rejection-style tests mirroring Interval.contains: each branch
    # fails only when a comparison *proves* the value outside a bound,
    # so values incomparable under <
    # (NaN) pass exactly as the per-tuple oracle passes them.
    low, high = interval.low, interval.high
    low_inc, high_inc = interval.low_inclusive, interval.high_inclusive
    test: Optional[Callable[[Any], bool]]
    if low is MINUS_INF and high is PLUS_INF:
        test = None
    elif low is MINUS_INF:
        if high_inc:
            test = lambda v, _h=high: not v > _h  # noqa: E731
        else:
            test = lambda v, _h=high: not v >= _h  # noqa: E731
    elif high is PLUS_INF:
        if low_inc:
            test = lambda v, _l=low: not v < _l  # noqa: E731
        else:
            test = lambda v, _l=low: not v <= _l  # noqa: E731
    elif low_inc and high_inc:
        test = lambda v, _l=low, _h=high: not (v < _l or v > _h)  # noqa: E731
    elif low_inc:
        test = lambda v, _l=low, _h=high: not (v < _l or v >= _h)  # noqa: E731
    elif high_inc:
        test = lambda v, _l=low, _h=high: not (v <= _l or v > _h)  # noqa: E731
    else:
        test = lambda v, _l=low, _h=high: not (v <= _l or v >= _h)  # noqa: E731
    if test is None:

        def check_any(v: Any) -> bool:
            return v is not None and v is not MINUS_INF and v is not PLUS_INF

        return check_any

    def check(v: Any, _test: Callable[[Any], bool] = test) -> bool:
        if v is None or v is MINUS_INF or v is PLUS_INF:
            return False
        try:
            return _test(v)
        except TypeError:
            return False

    return check


# -- vectorized residual specs (the columnar plane's compiler seam) ----
#
# The columnar batch path (repro.match.columnar) evaluates residual
# conjunctions as NumPy mask expressions over per-attribute column
# arrays.  vector_residual_spec is the catalog-side half of that
# compiler: it decides, per predicate, whether the residual conjunction
# is expressible as bound comparisons over exactly-representable
# numeric constants, and emits one (attribute, low, high, low_inc,
# high_inc) row per clause.  Everything else — function clauses,
# non-numeric or float64-inexact bounds, unknown clause subclasses —
# returns None, and the plane falls back to per-candidate
# ``predicate.matches`` for that predicate, the same seam the scalar
# batch path's OPAQUE entries use.

#: Largest magnitude an int may have and still be exactly representable
#: as a float64 (columns are float64; 2**53 is the first integer with a
#: neighbour it cannot distinguish).
MAX_EXACT_FLOAT_INT = 2 ** 53


def _vectorizable_bound(value: Any) -> bool:
    """Whether *value* can be a float64 bound without changing answers."""
    kind = type(value)
    if kind is bool:
        return True
    if kind is int:
        return -MAX_EXACT_FLOAT_INT < value < MAX_EXACT_FLOAT_INT
    if kind is float:
        # NaN and infinities are excluded: NaN bounds defeat the
        # rejection-style comparisons and float infinities would
        # collide with the unbounded-side encoding.
        return value == value and value not in (float("inf"), float("-inf"))
    return False


def vector_residual_spec(
    predicate: Predicate, proven_attrs: Tuple[str, ...]
) -> Optional[List[Tuple[Any, ...]]]:
    """*predicate*'s residual as vectorizable tagged rows, or None.

    Rows are either ``("interval", attribute, low, high, low_inclusive,
    high_inclusive)`` with ``None`` standing for an unbounded side, or
    ``("function", attribute, function, negated)`` for an opaque
    predicate function the columnar plane evaluates column-wise.
    Interval clauses on ``proven_attrs`` are skipped exactly as
    :func:`compile_residual` skips them; function clauses are never
    proven by a probe and always kept.  A ``None`` return means the
    residual cannot be expressed vectorized (an unknown clause
    subclass, or interval bounds outside the exact float64 domain) and
    the caller must fall back to ``predicate.matches`` — never a
    partial spec, so the fallback decision is per predicate, not per
    clause.
    """
    spec: List[Tuple[Any, ...]] = []
    for clause in predicate.clauses:
        if isinstance(clause, IntervalClause):
            if clause.attribute in proven_attrs:
                continue  # proven by the index probe
            interval = clause.interval
            low = None if interval.low is MINUS_INF else interval.low
            high = None if interval.high is PLUS_INF else interval.high
            if low is not None and not _vectorizable_bound(low):
                return None
            if high is not None and not _vectorizable_bound(high):
                return None
            spec.append(
                (
                    "interval",
                    clause.attribute,
                    low,
                    high,
                    interval.low_inclusive,
                    interval.high_inclusive,
                )
            )
        elif isinstance(clause, FunctionClause):
            spec.append(
                ("function", clause.attribute, clause.function, clause.negated)
            )
        else:
            return None  # unknown clause subclass
    return spec


def _compile_function_vcheck(clause: Any) -> Callable[[Any], bool]:
    function = clause.function
    if clause.negated:

        def check_negated(v: Any, _fn: Callable[[Any], Any] = function) -> bool:
            if v is None:
                return False
            return not _fn(v)

        return check_negated

    def check(v: Any, _fn: Callable[[Any], Any] = function) -> bool:
        if v is None:
            return False
        return True if _fn(v) else False

    return check
