"""The layered matching kernel behind the paper's predicate index.

The monolithic two-level index of :mod:`repro.core.predicate_index`
decomposes into four cooperating layers, each separately testable:

* :mod:`~repro.match.catalog` — :class:`ClauseCatalog`, the PREDICATES
  table: predicate storage, normalization, entry-clause
  selection/migration, and the compiled-residual cache;
* :mod:`~repro.match.store` — :class:`TreeStore`, tree lifecycle
  (epoch continuity, bulk construction, freeze demotion) and cache
  policy;
* :mod:`~repro.match.pipeline` — :class:`MatchPipeline`, the one
  staged route → stab → candidate → residual → emit implementation
  shared by every read path (per-tuple, batched, and the concurrency
  layer's epoch-snapshot merge), instrumented through
  :class:`MatchObserver`;
* :mod:`~repro.match.registry` — :class:`BackendRegistry`, the
  string-keyed table of tree backends and matchers every entry point
  resolves through;
* :mod:`~repro.match.columnar` — the optional vectorized batch plane
  (NumPy ``searchsorted`` stabs over precomputed outcome rows), tried
  first by ``match_batch`` when a pipeline is built with
  ``columnar=True`` and NumPy is available.

:class:`~repro.core.predicate_index.PredicateIndex` survives as a thin
facade composing these layers; its public API is unchanged.
"""

# Import order matters: this package is (re-)exported by
# ``repro.core.predicate_index`` mid-initialisation, and the modules
# below only import core *submodules* (never the half-built
# ``repro.core`` attributes).  The registry comes last — its builders
# import PredicateIndex lazily.
from .observer import (
    CompositeObserver,
    MatchObserver,
    MatchStatistics,
    StatsObserver,
)
from .catalog import ClauseCatalog, RelationState, compile_residual
from .store import TreeFactory, TreeStore
from .pipeline import (
    MatchPipeline,
    snapshot_match,
    snapshot_match_batch,
    snapshot_match_idents,
)
from . import health
from .columnar import HAVE_NUMPY, build_relation_plane
from .autoselect import (
    AttributeProfile,
    AutoSelector,
    BackendDecision,
    EvidenceObserver,
    migrate_attribute_tree,
)
from .registry import (
    BackendRegistry,
    DEFAULT_REGISTRY,
    register_backend,
    register_matcher,
)

__all__ = [
    "MatchStatistics",
    "MatchObserver",
    "StatsObserver",
    "CompositeObserver",
    "ClauseCatalog",
    "RelationState",
    "compile_residual",
    "TreeStore",
    "TreeFactory",
    "MatchPipeline",
    "snapshot_match",
    "snapshot_match_idents",
    "snapshot_match_batch",
    "health",
    "HAVE_NUMPY",
    "build_relation_plane",
    "AttributeProfile",
    "AutoSelector",
    "BackendDecision",
    "EvidenceObserver",
    "migrate_attribute_tree",
    "BackendRegistry",
    "DEFAULT_REGISTRY",
    "register_backend",
    "register_matcher",
]
