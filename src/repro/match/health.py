"""Index health: registry audits, differential probing, self-repair.

These functions are the corruption-detection and self-healing layer
behind :meth:`PredicateIndex.audit` / :meth:`check_invariants` /
:meth:`verify_and_rebuild`.  They operate on a
:class:`~repro.match.catalog.ClauseCatalog` plus a
:class:`~repro.match.store.TreeStore` and keep three kinds of checks:

* **registry consistency** — every ident routed to a relation appears
  in its predicates table; ``indexed_under`` / ``non_indexable``
  entries have backing predicates; tree entries have backing
  ``indexed_under`` rows;
* **per-tree invariants** — each backend's own ``audit``/``validate``;
* **differential probing** — every tree is rebuilt from its own
  entries into a reference and both are stabbed at every finite clause
  endpoint, catching completeness corruption (markers silently lost by
  an interrupted structural delete) that is invisible to the internal
  validator, which only proves the markers still present sound.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Set

from ..core.intervals import is_infinite
from ..errors import TreeInvariantError
from .catalog import ClauseCatalog, RelationState
from .store import TreeStore

__all__ = ["audit", "audit_relation", "check_invariants", "verify_and_rebuild"]


def check_invariants(catalog: ClauseCatalog, tree_factory: Callable[[], Any]) -> bool:
    """Validate the whole index; raise on any violation.

    Returns True when healthy, raises
    :class:`~repro.errors.TreeInvariantError` otherwise.
    """
    problems = audit(catalog, tree_factory)
    if problems:
        raise TreeInvariantError(
            f"predicate index corrupt ({len(problems)} problem"
            f"{'s' if len(problems) != 1 else ''}): " + "; ".join(problems)
        )
    return True


def audit(catalog: ClauseCatalog, tree_factory: Callable[[], Any]) -> List[str]:
    """Non-raising health check: a list of problem descriptions.

    An empty list means the index is healthy.
    """
    problems: List[str] = []
    for ident, relation in catalog.relation_of.items():
        state = catalog.relations.get(relation)
        if state is None or ident not in state.predicates:
            problems.append(
                f"orphaned ident {ident!r}: registered for relation "
                f"{relation!r} but missing from its predicates table"
            )
    for relation, state in catalog.relations.items():
        problems.extend(audit_relation(catalog, relation, state, tree_factory))
    return problems


def audit_relation(
    catalog: ClauseCatalog,
    relation: str,
    state: RelationState,
    tree_factory: Callable[[], Any],
) -> List[str]:
    """Audit one relation's registries and trees."""
    problems: List[str] = []
    for ident in state.predicates:
        if catalog.relation_of.get(ident) != relation:
            problems.append(
                f"{relation}: predicate {ident!r} missing from the "
                f"relation-of registry"
            )
    for ident in state.non_indexable:
        if ident not in state.predicates:
            problems.append(
                f"{relation}: stale non-indexable entry {ident!r}"
            )
    for ident, attributes in state.indexed_under.items():
        if ident not in state.predicates:
            problems.append(
                f"{relation}: stale indexed-under entry {ident!r}"
            )
        for attribute in attributes:
            tree = state.trees.get(attribute)
            if tree is None or ident not in tree:
                problems.append(
                    f"{relation}.{attribute}: predicate {ident!r} "
                    f"indexed under the attribute but absent from its tree"
                )
    for attribute, tree in state.trees.items():
        for ident in tree:
            if attribute not in state.indexed_under.get(ident, ()):
                problems.append(
                    f"{relation}.{attribute}: stray tree entry {ident!r}"
                )
        for problem in _tree_problems(tree):
            problems.append(f"{relation}.{attribute}: {problem}")
        for problem in _tree_divergence(tree, tree_factory):
            problems.append(f"{relation}.{attribute}: {problem}")
    return problems


def _tree_problems(tree: Any) -> List[str]:
    """The tree's own invariant report (tolerant of foreign backends)."""
    auditor = getattr(tree, "audit", None)
    if auditor is not None:
        return list(auditor())
    validator = getattr(tree, "validate", None)
    if validator is None:
        return []
    try:
        validator()
    except Exception as exc:
        return [f"{type(exc).__name__}: {exc}"]
    return []


def _tree_divergence(tree: Any, tree_factory: Callable[[], Any]) -> List[str]:
    """Differentially probe *tree* against a freshly built reference.

    Probes are the finite endpoints of every indexed interval: any
    lost (or phantom) marker changes the stab answer at one of them
    for the interval's own clauses.  Structure may legally differ
    between the two trees — only the answers are compared.
    """
    items = getattr(tree, "items", None)
    if items is None:
        return []  # foreign backend without introspection: skip
    reference = tree_factory()
    entries = list(items())
    loader = getattr(reference, "bulk_load", None)
    if loader is not None:
        loader((interval, ident) for ident, interval in entries)
    else:
        for ident, interval in entries:
            reference.insert(interval, ident)
    probes: Set[Any] = set()
    for _, interval in entries:
        for value in (interval.low, interval.high):
            if not is_infinite(value):
                try:
                    probes.add(value)
                except TypeError:
                    pass  # unhashable endpoint: skip the probe
    problems: List[str] = []
    for value in probes:
        try:
            expected = reference.stab(value)
            got = tree.stab(value)
        except TypeError:
            continue  # mixed domains: nothing to compare at this probe
        if got != expected:
            missing = expected - got
            extra = got - expected
            detail = []
            if missing:
                detail.append(f"missing {sorted(map(repr, missing))}")
            if extra:
                detail.append(f"extra {sorted(map(repr, extra))}")
            problems.append(
                f"stab({value!r}) diverges from rebuilt reference "
                f"({', '.join(detail)})"
            )
    return problems


def verify_and_rebuild(
    catalog: ClauseCatalog, store: TreeStore, tree_factory: Callable[[], Any]
) -> Dict[str, Any]:
    """Detect index corruption and repair it in place.

    Audits every relation; for each one reporting problems, drops its
    per-attribute trees and rebuilds them from the PREDICATES table —
    the durable source of truth — preserving identifiers and
    entry-clause choices, then re-audits (including the differential
    probe check) to prove the repair took.  Orphaned routing entries
    with no backing predicate are pruned.

    Returns a report ``{"healthy": bool, "problems": [...], "rebuilt":
    [relation, ...]}`` where ``healthy`` reflects the state *before*
    repair.  Raises :class:`~repro.errors.TreeInvariantError` only if
    a rebuilt relation still fails its audit (the predicates table
    itself is damaged beyond repair).
    """
    problems: List[str] = []
    rebuilt: List[str] = []
    for ident, relation in list(catalog.relation_of.items()):
        state = catalog.relations.get(relation)
        if state is None or ident not in state.predicates:
            problems.append(
                f"orphaned ident {ident!r} for relation {relation!r}: pruned"
            )
            del catalog.relation_of[ident]
    for relation, state in list(catalog.relations.items()):
        relation_problems = audit_relation(catalog, relation, state, tree_factory)
        if not relation_problems:
            continue
        problems.extend(relation_problems)
        catalog.rebuild_relation(store, relation, state)
        rebuilt.append(relation)
        remaining = audit_relation(catalog, relation, state, tree_factory)
        if remaining:
            raise TreeInvariantError(
                f"relation {relation!r} still corrupt after rebuild: "
                + "; ".join(remaining)
            )
    return {"healthy": not problems, "problems": problems, "rebuilt": rebuilt}
