"""Match-stage observation: counters and the observer seam.

Every stage of the :class:`~repro.match.pipeline.MatchPipeline` reports
what it did through a narrow :class:`MatchObserver` interface — one
call per stage boundary, not one per candidate — so instrumentation
(statistics, tracing, future observability exporters) plugs in without
touching the hot loops.  The default observer,
:class:`StatsObserver`, maintains the :class:`MatchStatistics`
counters that feed the paper's Section 5.2 cost model.

Counter semantics
-----------------

The counters split into two groups:

**logical** — describe the matching *problem*, so a per-tuple run and
a batched run over the same workload report identical values (the
symmetry tests assert exactly that):

* ``tuples_matched`` — tuples routed through the index;
* ``probes`` — per-tuple per-attribute index probes attempted (the
  tuple carried a non-NULL value for an indexed attribute);
* ``partial_matches`` — candidates admitted by the index probes and
  sent to the residual test;
* ``non_indexable_tested`` — brute-force tests of predicates with no
  indexable clause (one per such predicate per tuple);
* ``full_matches`` — candidates whose full conjunction matched.

**physical** — describe the *work actually done*, which the batched
and cached paths deliberately reduce:

* ``trees_searched`` — actual tree descents (a batch answers many
  probes with one grouped descent; a stab-cache hit answers one with
  none);
* ``stab_cache_hits`` — probes answered from the epoch-keyed stab
  cache;
* ``batches_matched`` — :meth:`match_batch` invocations;
* ``residual_memo_hits`` — residual verdicts reused from the
  per-batch memo;
* ``clause_migrations`` — adaptive entry-clause migrations performed;
* ``backend_migrations`` — auto-selected tree-backend migrations
  performed (see :mod:`repro.match.autoselect`);
* ``maintenance_runs`` / ``maintenance_failures`` — scheduled
  maintenance-task executions and how many of them failed (see
  :mod:`repro.maintenance`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence

__all__ = [
    "MatchStatistics",
    "MatchObserver",
    "StatsObserver",
    "CompositeObserver",
]


class MatchStatistics:
    """Counters describing the work done by the match pipeline.

    These feed the cost model of the paper's Section 5.2 (hash probes,
    per-attribute tree searches, partial matches requiring a residual
    test, and non-indexable predicates tested by brute force).  See the
    module docstring for the logical/physical split; the
    :data:`LOGICAL_COUNTERS` subset is path-independent.
    """

    __slots__ = (
        "tuples_matched",
        "probes",
        "trees_searched",
        "partial_matches",
        "non_indexable_tested",
        "full_matches",
        "batches_matched",
        "residual_memo_hits",
        "stab_cache_hits",
        "clause_migrations",
        "backend_migrations",
        "maintenance_runs",
        "maintenance_failures",
    )

    #: Counters whose value depends only on the workload, never on the
    #: execution path (per-tuple loop vs batch vs snapshot merge).
    LOGICAL_COUNTERS = (
        "tuples_matched",
        "probes",
        "partial_matches",
        "non_indexable_tested",
        "full_matches",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters."""
        self.tuples_matched = 0
        self.probes = 0
        self.trees_searched = 0
        self.partial_matches = 0
        self.non_indexable_tested = 0
        self.full_matches = 0
        self.batches_matched = 0
        self.residual_memo_hits = 0
        self.stab_cache_hits = 0
        self.clause_migrations = 0
        self.backend_migrations = 0
        self.maintenance_runs = 0
        self.maintenance_failures = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def logical_counts(self) -> Dict[str, int]:
        """The path-independent counters only (for symmetry checks)."""
        return {name: getattr(self, name) for name in self.LOGICAL_COUNTERS}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<MatchStatistics {body}>"


class MatchObserver:
    """Stage-boundary hooks for the match pipeline.

    The pipeline batches its bookkeeping and calls each hook **once per
    stage per tuple or batch** with aggregated counts — implementations
    must be cheap, but they are not on the per-candidate fast path.
    The default implementation of every hook is a no-op, so observers
    override only the boundaries they care about.
    """

    __slots__ = ()

    #: Set True by observers that need :meth:`on_attribute_stabs`.
    #: The per-attribute breakdown costs the batched stab stage an
    #: extra counting pass, so the pipeline checks this flag once per
    #: call and skips the bookkeeping entirely for observers (the
    #: default) that never read it.
    wants_attribute_stabs = False

    def on_route(self, relation: str, count: int, batched: bool) -> None:
        """*count* tuples of *relation* entered the pipeline.

        ``batched`` is True when they arrived as one ``match_batch``
        call (fired once per batch), False for the per-tuple path.
        """

    def on_stab(
        self, relation: str, probes: int, descents: int, cache_hits: int
    ) -> None:
        """The stab stage ran: *probes* logical attribute probes were
        answered by *descents* actual tree descents plus *cache_hits*
        stab-cache hits."""

    def on_attribute_stabs(self, relation: str, counts: Dict[str, int]) -> None:
        """Per-attribute breakdown of the stab stage's logical probes.

        *counts* maps attribute name to the number of logical probes
        its tree absorbed (path-independent: batch and per-tuple runs
        report the same totals).  Fired only when
        :attr:`wants_attribute_stabs` is True; the dict is owned by the
        pipeline and must be copied if retained.
        """

    def on_candidates(
        self, relation: str, partial: int, non_indexable: int
    ) -> None:
        """The candidate stage admitted *partial* index candidates and
        scheduled *non_indexable* brute-force residual tests."""

    def on_residual(self, relation: str, full: int, memo_hits: int) -> None:
        """The residual stage confirmed *full* complete matches;
        *memo_hits* verdicts came from the per-batch memo."""

    def on_migration(
        self,
        relation: str,
        ident: Hashable,
        old_attribute: Optional[str],
        new_attribute: Optional[str],
    ) -> None:
        """An adaptive pass migrated *ident*'s entry clause between
        attribute trees."""

    def on_backend_migration(
        self,
        relation: str,
        attribute: str,
        old_backend: Optional[str],
        new_backend: str,
    ) -> None:
        """An auto-selection pass rebuilt *attribute*'s tree on a new
        backend (see :mod:`repro.match.autoselect`)."""

    def on_maintenance(self, task: str, ok: bool, spent_ops: int) -> None:
        """The maintenance scheduler ran *task*: ``ok`` says whether it
        completed, *spent_ops* is the work it charged to its budget
        (see :mod:`repro.maintenance`)."""


class StatsObserver(MatchObserver):
    """The default observer: maintains a :class:`MatchStatistics`."""

    __slots__ = ("stats",)

    def __init__(self, stats: Optional[MatchStatistics] = None) -> None:
        self.stats = stats if stats is not None else MatchStatistics()

    def on_route(self, relation: str, count: int, batched: bool) -> None:
        stats = self.stats
        stats.tuples_matched += count
        if batched:
            stats.batches_matched += 1

    def on_stab(
        self, relation: str, probes: int, descents: int, cache_hits: int
    ) -> None:
        stats = self.stats
        stats.probes += probes
        stats.trees_searched += descents
        stats.stab_cache_hits += cache_hits

    def on_candidates(
        self, relation: str, partial: int, non_indexable: int
    ) -> None:
        stats = self.stats
        stats.partial_matches += partial
        stats.non_indexable_tested += non_indexable

    def on_residual(self, relation: str, full: int, memo_hits: int) -> None:
        stats = self.stats
        stats.full_matches += full
        stats.residual_memo_hits += memo_hits

    def on_migration(
        self,
        relation: str,
        ident: Hashable,
        old_attribute: Optional[str],
        new_attribute: Optional[str],
    ) -> None:
        self.stats.clause_migrations += 1

    def on_backend_migration(
        self,
        relation: str,
        attribute: str,
        old_backend: Optional[str],
        new_backend: str,
    ) -> None:
        self.stats.backend_migrations += 1

    def on_maintenance(self, task: str, ok: bool, spent_ops: int) -> None:
        stats = self.stats
        stats.maintenance_runs += 1
        if not ok:
            stats.maintenance_failures += 1


class CompositeObserver(MatchObserver):
    """Fan one stream of stage events out to several observers."""

    __slots__ = ("observers", "wants_attribute_stabs")

    def __init__(self, observers: Sequence[MatchObserver]) -> None:
        self.observers = tuple(observers)
        self.wants_attribute_stabs = any(
            observer.wants_attribute_stabs for observer in self.observers
        )

    def on_route(self, relation: str, count: int, batched: bool) -> None:
        for observer in self.observers:
            observer.on_route(relation, count, batched)

    def on_stab(
        self, relation: str, probes: int, descents: int, cache_hits: int
    ) -> None:
        for observer in self.observers:
            observer.on_stab(relation, probes, descents, cache_hits)

    def on_attribute_stabs(self, relation: str, counts: Dict[str, int]) -> None:
        for observer in self.observers:
            if observer.wants_attribute_stabs:
                observer.on_attribute_stabs(relation, counts)

    def on_candidates(
        self, relation: str, partial: int, non_indexable: int
    ) -> None:
        for observer in self.observers:
            observer.on_candidates(relation, partial, non_indexable)

    def on_residual(self, relation: str, full: int, memo_hits: int) -> None:
        for observer in self.observers:
            observer.on_residual(relation, full, memo_hits)

    def on_migration(
        self,
        relation: str,
        ident: Hashable,
        old_attribute: Optional[str],
        new_attribute: Optional[str],
    ) -> None:
        for observer in self.observers:
            observer.on_migration(relation, ident, old_attribute, new_attribute)

    def on_backend_migration(
        self,
        relation: str,
        attribute: str,
        old_backend: Optional[str],
        new_backend: str,
    ) -> None:
        for observer in self.observers:
            observer.on_backend_migration(
                relation, attribute, old_backend, new_backend
            )

    def on_maintenance(self, task: str, ok: bool, spent_ops: int) -> None:
        for observer in self.observers:
            observer.on_maintenance(task, ok, spent_ops)
