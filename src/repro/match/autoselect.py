"""Online cost-driven per-attribute backend auto-selection.

This module closes the self-tuning loop the repo already had three
thirds of: :class:`~repro.match.observer.StatsObserver` measures
logical work, :mod:`repro.bench.cost_model` prices tree backends, and
the registry exposes ten of them — but nothing connected the three, so
every attribute ran whatever backend the caller hard-coded.  The
:class:`AutoSelector` here

1. **accumulates evidence**: per-(relation, attribute) stab counts flow
   from the pipeline's ``on_attribute_stabs`` hook into an
   :class:`~repro.db.statistics.IndexWorkloadEvidence` window, and the
   facades report interval inserts/deletes as predicates come and go;
2. **prices backends**: each candidate backend's calibrated
   :class:`~repro.bench.cost_model.BackendCostModel` is evaluated
   against the observed stab/insert/delete mix at the attribute's
   current tree size.  The *current* backend is priced from a **live
   micro-probe** of the actual tree whenever possible — a degenerate
   tree (adversarial insertion order) costs what it costs, not what a
   healthy bulk-loaded specimen of its class would cost — so the
   selector can escape pathological shapes the static table would
   never reveal;
3. **migrates transactionally**: under the same evidence-floor /
   hysteresis / quarantine discipline ``retune()`` uses for entry
   clauses, the attribute's intervals are re-loaded into the predicted
   cheapest backend via ``bulk_load`` (O(N log N)), the replacement is
   fully built and sanity-checked *before* the old tree is unhooked,
   and the commit bumps the epoch floor, clears the stab cache and the
   relation version so every epoch-keyed cache stays coherent.

Decisions are surfaced through the
``MatchObserver.on_backend_migration`` hook and recorded for the
``tuning_report()`` introspection APIs on both facades.

Safety in the concurrent facade: the selector itself never mutates a
published frozen base — the facade records the winning plan and
publishes it by building a *fresh* base (a compaction), exactly like
every other structural change there.
"""

from __future__ import annotations

import time
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..core.intervals import is_infinite
from ..errors import PredicateError
from ..predicates.clauses import IntervalClause
from ..testing.faults import fault_point
from .catalog import ClauseCatalog, RelationState
from .observer import MatchObserver
from .store import TreeStore

__all__ = [
    "DEFAULT_CANDIDATES",
    "EvidenceObserver",
    "AttributeProfile",
    "BackendDecision",
    "AutoSelector",
    "migrate_attribute_tree",
    "attribute_pairs",
]

#: Backends the selector migrates between by default: the four
#: IBS-tree variants.  All of them expose ``items()`` (so a later pass
#: can migrate *away* again), ``bulk_load``, and the full dynamic
#: capability set.  The sequential baseline is deliberately absent —
#: it cannot enumerate its own pairs, so picking it would be a one-way
#: door.
DEFAULT_CANDIDATES: Tuple[str, ...] = ("ibs", "avl", "rb", "flat")


class EvidenceObserver(MatchObserver):
    """Routes ``on_attribute_stabs`` events into an evidence window.

    Composed next to the facade's :class:`StatsObserver` via
    :class:`CompositeObserver`; its ``wants_attribute_stabs`` flag is
    what switches the pipeline's per-attribute counting on.
    """

    __slots__ = ("evidence",)

    wants_attribute_stabs = True

    def __init__(self, evidence: Any) -> None:
        self.evidence = evidence

    def on_attribute_stabs(self, relation: str, counts: Dict[str, int]) -> None:
        self.evidence.observe_stabs(relation, counts)


class AttributeProfile:
    """Everything :meth:`AutoSelector.decide` needs about one attribute.

    ``tree`` may be ``None`` (pure table-driven decision, used by the
    deterministic unit tests and the CLI's what-if mode); when present
    it enables the live micro-probe pricing of the current backend.
    """

    __slots__ = (
        "relation",
        "attribute",
        "size",
        "current_backend",
        "usage",
        "tree",
    )

    def __init__(
        self,
        relation: str,
        attribute: str,
        size: int,
        current_backend: Optional[str],
        usage: Any,
        tree: Any = None,
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        self.size = size
        self.current_backend = current_backend
        self.usage = usage
        self.tree = tree


class BackendDecision:
    """One pricing verdict for one (relation, attribute)."""

    __slots__ = (
        "relation",
        "attribute",
        "current_backend",
        "chosen_backend",
        "costs_ms",
        "current_cost_ms",
        "evidence_ops",
        "size",
        "migrate",
        "reason",
        "migrated",
        "error",
    )

    def __init__(
        self,
        relation: str,
        attribute: str,
        current_backend: Optional[str],
        chosen_backend: str,
        costs_ms: Dict[str, float],
        current_cost_ms: float,
        evidence_ops: int,
        size: int,
        migrate: bool,
        reason: str,
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        self.current_backend = current_backend
        self.chosen_backend = chosen_backend
        #: candidate backend -> predicted window cost, milliseconds
        self.costs_ms = costs_ms
        self.current_cost_ms = current_cost_ms
        self.evidence_ops = evidence_ops
        self.size = size
        #: whether the hysteresis test warranted a migration
        self.migrate = migrate
        self.reason = reason
        #: set by :meth:`AutoSelector.commit`
        self.migrated = False
        self.error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "relation": self.relation,
            "attribute": self.attribute,
            "current_backend": self.current_backend,
            "chosen_backend": self.chosen_backend,
            "costs_ms": dict(self.costs_ms),
            "current_cost_ms": self.current_cost_ms,
            "evidence_ops": self.evidence_ops,
            "size": self.size,
            "migrate": self.migrate,
            "migrated": self.migrated,
            "reason": self.reason,
            "error": self.error,
        }

    def __repr__(self) -> str:
        return (
            f"<BackendDecision {self.relation}.{self.attribute}: "
            f"{self.current_backend} -> {self.chosen_backend} "
            f"({self.reason})>"
        )


class AutoSelector:
    """Evidence-driven backend selection with retune()'s discipline.

    Parameters
    ----------
    candidates:
        Backend names eligible as migration targets; all must be
        registered tree backends with ``items()``/``bulk_load``.
    cost_table:
        A calibrated
        :class:`~repro.bench.cost_model.BackendCostTable`; measured
        lazily via ``default_backend_cost_table()`` when omitted.
    min_evidence_ops:
        Evidence floor: no decision before this many logical
        operations (stabs + inserts + deletes) have been observed for
        the attribute — mirroring ``EntryClauseFeedback.min_samples``.
    migration_ratio:
        Hysteresis: migrate only when the best candidate prices below
        ``current_cost * migration_ratio``.  At the default 0.8 a
        candidate must predict a ≥20 % win, which absorbs micro-probe
        noise and prevents flapping.
    quarantine_passes:
        A (relation, attribute, backend) whose migration *failed* is
        barred from being chosen again for this many passes.
    probe_samples:
        Stabs per live micro-probe of the current tree.
    trial_candidates:
        When the current tree was live-probed, this many of the
        table's top-ranked candidates are *trial-built* (``bulk_load``
        of the live entries) and probed on the same samples — two
        probes of the same data at the same moment cancel the machine
        noise a statically calibrated table cannot, so close calls are
        settled by measurement instead of extrapolation.  ``0``
        disables trials (pure table ranking).
    registry:
        Backend registry for resolving candidate factories; defaults
        to the process-wide ``DEFAULT_REGISTRY``.
    timer:
        Injectable clock for the live micro-probe (tests).
    """

    def __init__(
        self,
        candidates: Iterable[str] = DEFAULT_CANDIDATES,
        cost_table: Any = None,
        min_evidence_ops: int = 512,
        migration_ratio: float = 0.8,
        quarantine_passes: int = 3,
        probe_samples: int = 128,
        trial_candidates: int = 3,
        default_backend: Optional[str] = "ibs",
        registry: Any = None,
        timer: Callable[[], float] = time.perf_counter,
    ) -> None:
        from ..db.statistics import IndexWorkloadEvidence

        self.candidates = tuple(candidates)
        if not self.candidates:
            raise PredicateError("auto-selection needs at least one candidate backend")
        self._cost_table = cost_table
        self._registry = registry
        #: candidate name -> why it was capability-gated out of the
        #: pool (never trial-built, never migrated to); surfaced in
        #: :meth:`report` so an operator can see the whole story.
        self.excluded_candidates: Dict[str, str] = {}
        eligible = []
        for name in self.candidates:
            reason = self._capability_gate(name)
            if reason is not None:
                self.excluded_candidates[name] = reason
            else:
                eligible.append(name)
        if not eligible:
            gated = ", ".join(
                f"{name} ({reason})"
                for name, reason in self.excluded_candidates.items()
            )
            raise PredicateError(
                f"every auto-selection candidate was capability-gated: {gated}"
            )
        self.candidates = tuple(eligible)
        self.min_evidence_ops = int(min_evidence_ops)
        self.migration_ratio = float(migration_ratio)
        self.quarantine_passes = int(quarantine_passes)
        self.probe_samples = int(probe_samples)
        self.trial_candidates = int(trial_candidates)
        self.default_backend = default_backend
        self._timer = timer
        self.evidence = IndexWorkloadEvidence(min_ops=self.min_evidence_ops)
        self.observer = EvidenceObserver(self.evidence)
        #: (relation, attribute, backend) -> passes left in quarantine
        self._quarantine: Dict[Tuple[str, str, str], int] = {}
        #: most recent decision per (relation, attribute)
        self._last: Dict[Tuple[str, str], BackendDecision] = {}
        #: committed migrations, oldest first (bounded)
        self.history: List[BackendDecision] = []
        self.passes = 0

    # -- collaborator access --------------------------------------------

    @property
    def cost_table(self) -> Any:
        if self._cost_table is None:
            from ..bench.cost_model import default_backend_cost_table

            self._cost_table = default_backend_cost_table()
        return self._cost_table

    @property
    def registry(self) -> Any:
        if self._registry is None:
            from .registry import DEFAULT_REGISTRY

            self._registry = DEFAULT_REGISTRY
        return self._registry

    def factory_for(self, backend: str) -> Callable[[], Any]:
        return self.registry.tree_factory(backend)

    def _capability_gate(self, backend: str) -> Optional[str]:
        """Why *backend* cannot be a migration target, or ``None``.

        A migrated tree must keep absorbing the live write stream, so
        static structures (``segment``, ``static-interval``) that
        declare ``supports_dynamic_insert/delete = False`` are never
        trial-built; the ``disk`` backend is likewise excluded — its
        trees belong to a :class:`~repro.disk.store.DiskTreeStore`
        with segment-file lifecycle the in-memory migration path does
        not manage.  Names the registry cannot describe pass through
        un-gated and fail (loudly, then quarantined) at trial-build
        time, exactly as before gating existed.
        """
        try:
            card = self.registry.describe_backend(backend)
        except Exception:  # noqa: BLE001 - unknown names keep legacy path
            return None
        reasons = []
        if not card.get("supports_dynamic_insert", True):
            reasons.append("no dynamic insert")
        if not card.get("supports_dynamic_delete", True):
            reasons.append("no dynamic delete")
        if card.get("disk_backed", False):
            reasons.append("disk-backed tree store")
        if not reasons:
            return None
        return ", ".join(reasons)

    # -- the decision procedure -----------------------------------------

    def begin_pass(self) -> None:
        """Start a pass: age the quarantine window."""
        self.passes += 1
        expired = []
        for key, remaining in self._quarantine.items():
            if remaining <= 1:
                expired.append(key)
            else:
                self._quarantine[key] = remaining - 1
        for key in expired:
            del self._quarantine[key]

    def decide(self, profile: AttributeProfile) -> Optional[BackendDecision]:
        """Price every candidate against the observed window.

        Returns ``None`` below the evidence floor; otherwise a
        :class:`BackendDecision` whose ``migrate`` flag says whether
        the hysteresis test warranted moving.  Pure with respect to
        index state — nothing is mutated here — so it is directly
        unit-testable with a fake cost table and ``tree=None``.
        """
        usage = profile.usage
        ops = usage.total
        if ops < self.min_evidence_ops:
            return None
        size = max(profile.size, 1)
        stabs = usage.stabs
        writes = usage.inserts + usage.deletes
        table = self.cost_table
        costs: Dict[str, float] = {}
        for backend in self.candidates:
            if backend not in table:
                continue
            costs[backend] = stabs * table.stab_ms(backend, size) + writes * (
                table.insert_ms(backend, size)
            )
        if not costs:
            return None
        current = profile.current_backend
        current_cost = costs.get(current) if current is not None else None
        if current_cost is None and current is not None and current in table:
            current_cost = stabs * table.stab_ms(current, size) + writes * (
                table.insert_ms(current, size)
            )
        probed = False
        if profile.tree is not None and stabs:
            # Live micro-probe: the table prices a *healthy* specimen of
            # the current backend; the actual tree may be degenerate
            # (adversarial insertion order), and only measuring it
            # directly lets the selector escape such shapes.
            probe_ms = self._probe_stab_ms(profile.tree)
            if probe_ms is not None:
                write_ms = (
                    table.insert_ms(current, size)
                    if current is not None and current in table
                    else min(table.insert_ms(b, size) for b in costs)
                )
                current_cost = stabs * probe_ms + writes * write_ms
                probed = True
        if current_cost is None:
            # unknown, unpriceable current backend and no live tree to
            # probe: assume parity with the best candidate (no migration)
            current_cost = min(costs.values())
        eligible = {
            backend: cost
            for backend, cost in costs.items()
            if (profile.relation, profile.attribute, backend)
            not in self._quarantine
        }
        if not eligible:
            return None
        trialed: Dict[str, float] = {}
        if probed and self.trial_candidates > 0:
            # The incumbent was measured, so measure the challengers
            # too: trial-build the table's top-ranked candidates on the
            # live entries and probe them on the same samples.  The
            # table still does the ranking (trials stay O(K·N log N),
            # not O(|candidates|·N log N)); the trials settle the close
            # calls the table's extrapolated constants cannot.
            ranked = sorted(eligible, key=lambda b: eligible[b])
            for backend in ranked[: self.trial_candidates]:
                trial_ms = self._trial_stab_ms(backend, profile.tree)
                if trial_ms is None:
                    continue
                write_ms = (
                    table.insert_ms(backend, size) if backend in table else 0.0
                )
                trialed[backend] = stabs * trial_ms + writes * write_ms
                eligible[backend] = trialed[backend]
                costs[backend] = trialed[backend]
        best_backend = min(eligible, key=lambda b: eligible[b])
        best_cost = eligible[best_backend]
        # Same-backend "migration" is a rebuild: without a probe the
        # current cost IS the table's price for that backend, so the
        # hysteresis test can only pass when the live probe showed the
        # actual tree degenerated (adversarial insertion order) — and
        # a bulk_load onto the same backend restores its healthy shape.
        migrate = best_cost < current_cost * self.migration_ratio
        if migrate:
            action = "rebuild on" if best_backend == current else "migrate to"
            basis = "trial-probed" if best_backend in trialed else "predicts"
            reason = (
                f"{action} {best_backend}: {basis} {best_cost:.4f}ms vs "
                f"{'probed' if probed else 'modeled'} "
                f"{current_cost:.4f}ms over {ops} ops"
            )
            chosen = best_backend
        else:
            reason = "kept: no candidate beats the hysteresis margin"
            chosen = current if current is not None else best_backend
        decision = BackendDecision(
            relation=profile.relation,
            attribute=profile.attribute,
            current_backend=current,
            chosen_backend=chosen,
            costs_ms=costs,
            current_cost_ms=current_cost,
            evidence_ops=ops,
            size=size,
            migrate=migrate,
            reason=reason,
        )
        self._last[(profile.relation, profile.attribute)] = decision
        return decision

    def commit(
        self,
        decision: BackendDecision,
        migrated: bool,
        error: Optional[str] = None,
    ) -> None:
        """Record a migration attempt's outcome.

        Success resets the attribute's evidence window (the next
        decision must rest on evidence gathered *on the new backend*);
        failure quarantines the (relation, attribute, backend) triple
        for :attr:`quarantine_passes` passes.
        """
        decision.migrated = migrated
        decision.error = error
        if migrated:
            self.evidence.reset_attribute(decision.relation, decision.attribute)
            self.history.append(decision)
            if len(self.history) > 256:
                del self.history[:-256]
        elif error is not None:
            self._quarantine[
                (decision.relation, decision.attribute, decision.chosen_backend)
            ] = self.quarantine_passes

    def _probe_stab_ms(self, tree: Any) -> Optional[float]:
        """Measure the live tree's amortised stab cost, or ``None``.

        Probe values are drawn deterministically from the tree's own
        finite interval endpoints, so the probe exercises the populated
        part of the domain without consuming any random state.
        """
        from ..bench.cost_model import MIN_MEASURED_MS

        items = getattr(tree, "items", None)
        if items is None:
            return None
        values: List[Any] = []
        for _ident, interval in items():
            if not is_infinite(interval.low):
                values.append(interval.low)
            elif not is_infinite(interval.high):
                values.append(interval.high)
            if len(values) >= self.probe_samples:
                break
        if not values:
            return None
        samples = self.probe_samples
        probes = [values[i % len(values)] for i in range(samples)]
        timer = self._timer
        stab = tree.stab
        best = float("inf")
        for _round in range(3):  # best-of-3 absorbs scheduler hiccups
            start = timer()
            for value in probes:
                stab(value)
            elapsed = timer() - start
            if elapsed < best:
                best = elapsed
        return max(best / samples * 1e3, MIN_MEASURED_MS)

    def _trial_stab_ms(self, backend: str, tree: Any) -> Optional[float]:
        """Bulk-load *tree*'s entries onto a trial *backend* and probe it.

        Returns ``None`` when the live tree cannot enumerate itself or
        the trial build fails — the caller then falls back to the
        table's price for that candidate.
        """
        items = getattr(tree, "items", None)
        if items is None:
            return None
        try:
            trial = self.factory_for(backend)()
            pairs = [(interval, ident) for ident, interval in items()]
            loader = getattr(trial, "bulk_load", None)
            if loader is not None:
                loader(pairs)
            else:
                for interval, ident in pairs:
                    trial.insert(interval, ident)
        except Exception:  # noqa: BLE001 - a broken trial is not a decision
            return None
        return self._probe_stab_ms(trial)

    # -- the serial-facade pass -----------------------------------------

    def run_pass(
        self,
        catalog: ClauseCatalog,
        store: TreeStore,
        observer: MatchObserver,
        relation: Optional[str] = None,
    ) -> List[BackendDecision]:
        """One full decide-and-migrate pass over a mutable catalog.

        Returns every decision that cleared the evidence floor (so
        callers can inspect the kept ones too); migrations that fail
        are quarantined and the pass continues — one bad backend never
        aborts tuning for the rest of the index.
        """
        self.begin_pass()
        decisions: List[BackendDecision] = []
        targets = [relation] if relation is not None else list(catalog.relations)
        for rel in targets:
            state = catalog.relations.get(rel)
            if state is None:
                continue
            for attribute in list(state.trees):
                tree = state.trees[attribute]
                override = state.tree_backends.get(attribute)
                current = override[0] if override else self.default_backend
                profile = AttributeProfile(
                    relation=rel,
                    attribute=attribute,
                    size=len(tree) if hasattr(tree, "__len__") else 0,
                    current_backend=current,
                    usage=self.evidence.usage(rel, attribute),
                    tree=tree,
                )
                decision = self.decide(profile)
                if decision is None:
                    continue
                decisions.append(decision)
                if not decision.migrate:
                    continue
                try:
                    migrate_attribute_tree(
                        catalog,
                        store,
                        rel,
                        state,
                        attribute,
                        decision.chosen_backend,
                        self.factory_for(decision.chosen_backend),
                        observer,
                    )
                except Exception as exc:  # noqa: BLE001 - quarantine & continue
                    self.commit(decision, False, error=str(exc))
                else:
                    self.commit(decision, True)
        return decisions

    # -- introspection ---------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """The ``tuning_report()`` payload: evidence, picks, history."""
        return {
            "candidates": list(self.candidates),
            "excluded_candidates": dict(self.excluded_candidates),
            "min_evidence_ops": self.min_evidence_ops,
            "migration_ratio": self.migration_ratio,
            "passes": self.passes,
            "evidence": self.evidence.as_dict(),
            "decisions": {
                f"{relation}.{attribute}": decision.as_dict()
                for (relation, attribute), decision in self._last.items()
            },
            "migrations": [decision.as_dict() for decision in self.history],
            "quarantine": {
                f"{relation}.{attribute}:{backend}": remaining
                for (relation, attribute, backend), remaining in (
                    self._quarantine.items()
                )
            },
        }


def attribute_pairs(
    state: RelationState, attribute: str
) -> List[Tuple[Any, Hashable]]:
    """``(interval, ident)`` pairs of *attribute*'s tree.

    Prefers the tree's own ``items()``; reconstructs from the catalog
    (the predicates' entry clauses on *attribute*) for foreign backends
    that cannot enumerate themselves.  Both give the same multiset —
    the tree holds exactly the entry clauses ``indexed_under`` says it
    holds.
    """
    tree = state.trees[attribute]
    items = getattr(tree, "items", None)
    if items is not None:
        return [(interval, ident) for ident, interval in items()]
    pairs: List[Tuple[Any, Hashable]] = []
    for ident, attributes in state.indexed_under.items():
        if attribute not in attributes:
            continue
        predicate = state.predicates[ident]
        for clause in predicate.indexable_clauses():
            if isinstance(clause, IntervalClause) and clause.attribute == attribute:
                pairs.append((clause.interval, ident))
                break
    return pairs


def migrate_attribute_tree(
    catalog: ClauseCatalog,
    store: TreeStore,
    relation: str,
    state: RelationState,
    attribute: str,
    backend: str,
    factory: Callable[[], Any],
    observer: MatchObserver,
) -> Any:
    """Rebuild *attribute*'s tree on *backend*, transactionally.

    The replacement is fully constructed, loaded (``bulk_load`` when
    the backend has one — the O(N log N) path — incremental inserts
    otherwise) and size-checked **before** any shared state changes;
    a failure at any point before the commit leaves the old tree
    untouched and live.  The commit then performs the epoch dance that
    keeps every derived structure coherent:

    * the replacement's epoch starts past the old tree's (and the
      relation floor), and ``retire_tree`` raises the floor past the
      old epoch — so ``(attribute, tree_epoch)`` stab-cache keys can
      never alias across the swap;
    * the stab cache is cleared (uniform policy for tree-map shape
      changes) and ``state.version`` bumps, invalidating the columnar
      plane by version mismatch;
    * the pick is recorded in ``state.tree_backends`` *and* the
      catalog's durable ``backend_plan``, so rebuilds, rollbacks and
      snapshot compactions re-create the attribute on the chosen
      backend.
    """
    old_tree = state.trees[attribute]
    old_override = state.tree_backends.get(attribute)
    old_backend = old_override[0] if old_override else None
    pairs = attribute_pairs(state, attribute)
    replacement = factory()
    if hasattr(replacement, "epoch"):
        replacement.epoch = max(
            state.epoch_floor, getattr(old_tree, "epoch", 0) + 1
        )
    loader = getattr(replacement, "bulk_load", None)
    if loader is not None:
        loader(pairs)
    else:
        for interval, ident in pairs:
            replacement.insert(interval, ident)
    if hasattr(replacement, "__len__") and len(replacement) != len(pairs):
        raise PredicateError(
            f"backend {backend!r} dropped entries during migration of "
            f"{relation}.{attribute}: {len(replacement)} != {len(pairs)}"
        )
    # a maintenance tick interrupting the migration right here (the
    # ``maint.tick_during_migration`` drill) aborts before the commit:
    # the replacement is garbage-collected and the old tree stays live
    fault_point("maint.tick_during_migration")
    # ---- commit point: nothing above mutated shared state ----
    state.trees[attribute] = replacement
    store.retire_tree(state, old_tree)
    state.stab_cache.clear()
    state.version += 1
    state.tree_backends[attribute] = (backend, factory)
    catalog.backend_plan.setdefault(relation, {})[attribute] = (backend, factory)
    observer.on_backend_migration(relation, attribute, old_backend, backend)
    return replacement
