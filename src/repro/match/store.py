"""Tree lifecycle and cache policy: the backend-facing layer.

:class:`TreeStore` is the one place that constructs, retires, freezes
and bulk-loads the per-attribute interval indexes.  It is stateless
with respect to relations — the per-relation records
(:class:`~repro.match.catalog.RelationState`) are owned by the
catalog and passed in — but it owns the three policies every tree
shares:

* **epoch continuity**: fresh trees are seeded with the relation's
  ``epoch_floor`` and dropped trees raise it, so ``(attribute,
  tree_epoch)`` pairs are never reused across tree generations;
* **bulk construction**: a backend's ``bulk_load`` is used when
  available, incremental inserts otherwise (foreign backends);
* **freeze demotion**: freezing swaps the LRU stab cache for a plain
  append-only ``dict`` and freezes every tree, which is what makes the
  frozen index safe for lock-free concurrent readers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Tuple

from .catalog import RelationState

__all__ = ["TreeStore", "TreeFactory"]

#: Constructor for a per-attribute interval index backend.
TreeFactory = Callable[[], Any]


class TreeStore:
    """Owns interval-index construction, retirement, and cache policy.

    Parameters
    ----------
    tree_factory:
        Constructor for the per-attribute interval index (any object
        with the ``IntervalIndex`` interface: ``insert/delete/stab``
        at minimum; ``stab_into/stab_many/bulk_load/freeze/epoch`` are
        used when present).
    stab_cache_size:
        Capacity of each relation's LRU stab cache; ``0`` disables
        caching entirely.
    """

    __slots__ = ("tree_factory", "stab_cache_size", "cache_lru")

    def __init__(self, tree_factory: TreeFactory, stab_cache_size: int = 0) -> None:
        self.tree_factory = tree_factory
        self.stab_cache_size = int(stab_cache_size)
        #: LRU maintenance on the stab caches (move-to-end on hit,
        #: evict on overflow).  :meth:`freeze_state` turns it off: a
        #: frozen index is read by many threads at once, and the only
        #: GIL-safe cache discipline is append-only — plain ``dict``
        #: get/set with no reordering and no eviction (a concurrent
        #: ``move_to_end`` / ``popitem`` pair can raise ``KeyError``
        #: mid-read).
        self.cache_lru = True

    # -- tree lifecycle -------------------------------------------------

    def new_tree(
        self, state: RelationState, attribute: Optional[str] = None
    ) -> Any:
        """Create a tree whose epochs continue from the relation's floor.

        Fresh backends start at epoch 0; without the floor a tree
        dropped at epoch 40 and recreated one mutation later would
        reissue epochs 1, 2, 3 … and an ``(attribute, tree_epoch)``
        cache key (or an epoch-snapshot reader) could silently confuse
        the two generations.

        When *attribute* is given and the relation carries a
        per-attribute backend override (``state.tree_backends``, written
        by the auto-selector), that backend's factory is used instead of
        the store-wide default — this is what makes an auto-selected
        pick survive rebuilds, rollbacks and snapshot compactions.
        """
        tree = self._resolve_factory(state, attribute)()
        self.seed_epoch(state, tree)
        return tree

    def _resolve_factory(
        self, state: RelationState, attribute: Optional[str]
    ) -> TreeFactory:
        """The factory for *attribute*: per-attribute override or default.

        Subclasses that pin their own backend (the disk store must —
        an auto-selected RAM structure cannot be sealed to a segment
        file) override this instead of re-implementing ``new_tree``.
        """
        if attribute is not None and state.tree_backends:
            override = state.tree_backends.get(attribute)
            if override is not None:
                return override[1]
        return self.tree_factory

    @staticmethod
    def seed_epoch(state: RelationState, tree: Any) -> Any:
        """Continue *tree*'s epochs from the relation's floor (see above)."""
        floor = state.epoch_floor
        if floor and hasattr(tree, "epoch"):
            tree.epoch = floor
        return tree

    @staticmethod
    def retire_tree(state: RelationState, tree: Any) -> None:
        """Record a dropped tree's last epoch in the relation's floor."""
        epoch = getattr(tree, "epoch", None)
        if epoch is not None:
            state.epoch_floor = max(state.epoch_floor, epoch + 1)

    def drop_tree(self, state: RelationState, attribute: str) -> None:
        """Retire and remove *attribute*'s tree; invalidate the cache.

        The stab cache is cleared because the tree map changed shape:
        a future tree for the same attribute restarts its epochs (from
        the raised floor), and cached keys for *other* attributes
        remain correct but the cheap uniform policy is to clear.
        """
        tree = state.trees.pop(attribute, None)
        if tree is None:
            return
        self.retire_tree(state, tree)
        state.stab_cache.clear()

    def build_tree(
        self,
        state: RelationState,
        pairs: Iterable[Tuple[Any, Hashable]],
        attribute: Optional[str] = None,
    ) -> Any:
        """A fresh tree over ``(interval, ident)`` *pairs*.

        Uses the backend's ``bulk_load`` when it has one — sorted
        endpoints, balanced structure, no per-insert rotations — and
        falls back to incremental construction for foreign backends.
        *attribute* routes through the same per-attribute backend
        override as :meth:`new_tree`.
        """
        tree = self.new_tree(state, attribute)
        loader = getattr(tree, "bulk_load", None)
        if loader is not None:
            loader(pairs)
        else:  # foreign backend: incremental construction
            for interval, ident in pairs:
                tree.insert(interval, ident)
        return tree

    # -- snapshot support -----------------------------------------------

    def freeze_state(self, state: RelationState) -> None:
        """Freeze one relation's trees and demote its cache.

        The LRU odict becomes a plain dict: frozen-mode readers do bare
        get/set with no lock, and only plain-dict ops are single
        GIL-atomic operations — ``OrderedDict.__setitem__`` also
        appends to a C-level linked list (with Python-level key hashing
        possibly interleaving), so concurrent inserts could corrupt it.
        Backends without a ``freeze`` method are skipped.
        """
        state.stab_cache = dict(state.stab_cache)
        for tree in state.trees.values():
            freezer = getattr(tree, "freeze", None)
            if freezer is not None:
                freezer()

    @staticmethod
    def tree_epochs(state: RelationState) -> Dict[str, int]:
        """Current ``attribute -> tree epoch`` map for one relation.

        Publication hook for the epoch-snapshot layer and its checker:
        thanks to the per-relation epoch floor the values are monotone
        over the index's whole life, even across tree drop/recreate
        and rebuilds.
        """
        return {
            attribute: getattr(tree, "epoch", 0)
            for attribute, tree in state.trees.items()
        }
