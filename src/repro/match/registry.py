"""The backend registry: every pluggable index and matcher, by name.

Two string-keyed namespaces:

**tree backends** (:meth:`BackendRegistry.register_backend`) —
zero-argument factories producing a per-attribute interval index
satisfying the :class:`~repro.baselines.base.IntervalIndex` contract.
The four IBS-tree variants and the Section 4.1/6 alternatives register
here, so ``PredicateIndex(tree_factory="avl")`` and the bench runner's
backend selection resolve through one table instead of ad-hoc imports.

**matchers** (:meth:`BackendRegistry.register_matcher`) — builders
producing a complete :class:`~repro.baselines.base.PredicateMatcher`.
The rule engine's ``matcher="ibs-concurrent"`` strings, the database's
``Database(matcher=...)`` option, and the end-to-end benchmarks all
resolve here.

A process-wide :data:`DEFAULT_REGISTRY` is pre-populated with every
built-in backend; tests and extensions may register additional entries
(or build private registries) without touching the core.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from ..baselines.interval_tree import StaticIntervalTree
from ..baselines.priority_search_tree import PrioritySearchTree
from ..baselines.rplus_tree import RPlusTree1D
from ..baselines.rtree import RTree1D
from ..baselines.segment_tree import SegmentTree
from ..baselines.sequential import IntervalList
from ..core.avl_ibs_tree import AVLIBSTree
from ..core.flat_ibs_tree import FlatIBSTree
from ..core.ibs_tree import IBSTree
from ..core.rb_ibs_tree import RBIBSTree
from ..errors import RegistryError

__all__ = [
    "BackendRegistry",
    "DEFAULT_REGISTRY",
    "register_backend",
    "register_matcher",
]

#: Zero-argument constructor for an interval-index backend.
TreeFactory = Callable[[], Any]
#: Keyword-options builder for a complete predicate matcher.  Builders
#: receive every option the caller passed (``estimator``, ``workers``,
#: …) and use the ones that apply to their backend.
MatcherBuilder = Callable[..., Any]

#: Capability flags declared by :class:`~repro.baselines.base.IntervalIndex`
#: implementations (absent flags default to True).
_CAPABILITY_FLAGS = (
    "supports_dynamic_insert",
    "supports_dynamic_delete",
    "supports_open_bounds",
    "supports_unbounded",
)

#: Flags that default to *False* when a backend doesn't declare them —
#: opting in is the exception (e.g. ``disk_backed`` on the disk tier's
#: segment-file tree), so absence must not read as capability.
_OPT_IN_FLAGS = ("disk_backed",)


class BackendRegistry:
    """String-keyed registry of interval-index backends and matchers."""

    def __init__(self) -> None:
        self._tree_backends: Dict[str, Dict[str, Any]] = {}
        self._matchers: Dict[str, Dict[str, Any]] = {}

    # -- registration ---------------------------------------------------

    def register_backend(
        self,
        name: str,
        factory: TreeFactory,
        description: str = "",
        replace: bool = False,
    ) -> None:
        """Register a tree backend under *name*.

        *factory* must be callable with no arguments and produce an
        object satisfying the ``IntervalIndex`` contract.  Re-using a
        name raises unless ``replace`` is set.
        """
        if name in self._tree_backends and not replace:
            raise RegistryError(f"tree backend {name!r} already registered")
        self._tree_backends[name] = {
            "factory": factory,
            "description": description,
        }

    def register_matcher(
        self,
        name: str,
        builder: MatcherBuilder,
        description: str = "",
        replace: bool = False,
        capabilities: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Register a matcher builder under *name*.

        *builder* is called with the caller's keyword options (e.g.
        ``estimator``) and must return a ``PredicateMatcher``; builders
        ignore options that do not apply to their backend.

        *capabilities* is a free-form flag mapping surfaced by
        :meth:`describe_matcher` and the ``backends`` CLI — e.g.
        ``{"requires_numpy": True}`` for strategies whose fast path
        depends on an optional extra.  The flags are declarative: a
        strategy whose optional dependency is absent must still build
        and answer correctly through its fallback path.
        """
        if name in self._matchers and not replace:
            raise RegistryError(f"matcher {name!r} already registered")
        self._matchers[name] = {
            "builder": builder,
            "description": description,
            "capabilities": dict(capabilities or {}),
        }

    # -- resolution -----------------------------------------------------

    def tree_backends(self) -> List[str]:
        """Registered tree-backend names, in registration order."""
        return list(self._tree_backends)

    def matchers(self) -> List[str]:
        """Registered matcher names, in registration order."""
        return list(self._matchers)

    def tree_factory(self, name: str) -> TreeFactory:
        """The factory registered under *name*; raises on unknown names."""
        try:
            return self._tree_backends[name]["factory"]
        except KeyError:
            raise RegistryError(
                f"unknown tree backend {name!r}; registered: "
                f"{', '.join(self._tree_backends) or '(none)'}"
            ) from None

    def resolve_tree_factory(
        self,
        spec: Union[str, TreeFactory, None],
        default: Optional[TreeFactory] = None,
    ) -> TreeFactory:
        """Resolve *spec* to a tree factory.

        Accepts a registered backend name, an explicit factory
        callable (returned as-is), or ``None`` for *default* (the
        paper's unbalanced IBS-tree when no default is given).
        """
        if spec is None:
            return default if default is not None else IBSTree
        if isinstance(spec, str):
            return self.tree_factory(spec)
        return spec

    def create_matcher(self, spec: Union[str, Any], **options: Any) -> Any:
        """Build the matcher registered under *spec*.

        A non-string *spec* is assumed to already be a matcher instance
        and is returned unchanged, so call sites accept "name or
        instance" uniformly.
        """
        if not isinstance(spec, str):
            return spec
        try:
            entry = self._matchers[spec]
        except KeyError:
            raise RegistryError(
                f"unknown matcher {spec!r}; registered: "
                f"{', '.join(self._matchers) or '(none)'}"
            ) from None
        return entry["builder"](**options)

    # -- introspection --------------------------------------------------

    def describe_backend(self, name: str) -> Dict[str, Any]:
        """Metadata for one tree backend: factory, description, flags."""
        factory = self.tree_factory(name)
        info: Dict[str, Any] = {
            "name": name,
            "factory": getattr(factory, "__name__", repr(factory)),
            "description": self._tree_backends[name]["description"],
        }
        for flag in _CAPABILITY_FLAGS:
            info[flag] = bool(getattr(factory, flag, True))
        for flag in _OPT_IN_FLAGS:
            info[flag] = bool(getattr(factory, flag, False))
        return info

    def describe_matcher(self, name: str) -> Dict[str, Any]:
        """Metadata for one matcher: builder and description."""
        try:
            entry = self._matchers[name]
        except KeyError:
            raise RegistryError(
                f"unknown matcher {name!r}; registered: "
                f"{', '.join(self._matchers) or '(none)'}"
            ) from None
        builder = entry["builder"]
        return {
            "name": name,
            "builder": getattr(builder, "__name__", repr(builder)),
            "description": entry["description"],
            "capabilities": dict(entry["capabilities"]),
        }

    def __contains__(self, name: str) -> bool:
        return name in self._tree_backends or name in self._matchers

    def __repr__(self) -> str:
        return (
            f"<BackendRegistry {len(self._tree_backends)} tree backends, "
            f"{len(self._matchers)} matchers>"
        )


# ----------------------------------------------------------------------
# built-in matcher builders
# ----------------------------------------------------------------------
#
# PredicateIndex and ConcurrentPredicateIndex are imported inside the
# builders: this module is imported while ``repro.core.predicate_index``
# is still initialising (it re-exports the match layer), so a
# module-level import would see a half-built module.
#
# Callers pass one uniform option set (``estimator``, ``workers``, …);
# each builder keeps only the options its backend understands, so e.g.
# the rule engine can hand its estimator to every strategy and the
# baselines simply don't use it.

#: Options the PredicateIndex-based builders forward.
_IBS_OPTIONS = (
    "tree_factory",
    "estimator",
    "multi_clause",
    "stab_cache_size",
    "adaptive",
    "min_feedback_tuples",
    "migration_ratio",
    "auto_retune_interval",
    "columnar",
    "auto_backend",
    "autoselect_interval",
    "auto_candidates",
    "auto_cost_table",
    "min_evidence_ops",
    "auto_migration_ratio",
    "storage",
    "data_dir",
    "memory_budget",
    "maintenance",
)

#: Options the concurrent facade builder forwards.
_CONCURRENT_OPTIONS = (
    "tree_factory",
    "estimator",
    "multi_clause",
    "workers",
    "compaction_threshold",
    "min_chunk",
    "snapshot_cache_size",
    "columnar",
    "pool",
    "auto_backend",
    "auto_candidates",
    "auto_cost_table",
    "min_evidence_ops",
    "storage",
    "data_dir",
    "memory_budget",
    "maintenance",
)


def _accept(options: Dict[str, Any], names: tuple) -> Dict[str, Any]:
    return {name: options[name] for name in names if name in options}


def _build_ibs(**options: Any) -> Any:
    from ..core.predicate_index import PredicateIndex

    return PredicateIndex(**_accept(options, _IBS_OPTIONS))


def _build_ibs_avl(**options: Any) -> Any:
    from ..core.predicate_index import PredicateIndex

    kwargs = _accept(options, _IBS_OPTIONS)
    kwargs.setdefault("tree_factory", AVLIBSTree)
    return PredicateIndex(**kwargs)


def _build_ibs_rb(**options: Any) -> Any:
    from ..core.predicate_index import PredicateIndex

    kwargs = _accept(options, _IBS_OPTIONS)
    kwargs.setdefault("tree_factory", RBIBSTree)
    return PredicateIndex(**kwargs)


def _build_ibs_flat(**options: Any) -> Any:
    from ..core.predicate_index import PredicateIndex

    kwargs = _accept(options, _IBS_OPTIONS)
    kwargs.setdefault("tree_factory", FlatIBSTree)
    return PredicateIndex(**kwargs)


def _build_columnar(**options: Any) -> Any:
    from ..core.predicate_index import PredicateIndex

    kwargs = _accept(options, _IBS_OPTIONS)
    kwargs.setdefault("tree_factory", FlatIBSTree)
    kwargs.setdefault("columnar", True)
    return PredicateIndex(**kwargs)


def _build_auto(**options: Any) -> Any:
    from ..core.predicate_index import PredicateIndex

    kwargs = _accept(options, _IBS_OPTIONS)
    kwargs.setdefault("auto_backend", True)
    return PredicateIndex(**kwargs)


def _disk_tree() -> Any:
    """Zero-argument factory for the disk tier's segment-backed tree.

    Imported lazily: the registry is populated while the core package
    is still initialising, and the disk tier pulls in the match-layer
    store.  A bare ``DiskIBSTree()`` writes its segments to a private
    temporary directory; managed placement comes from
    ``PredicateIndex(storage="disk", data_dir=...)``.
    """
    from ..disk.tree import DiskIBSTree

    return DiskIBSTree()


# declarative mirror of DiskIBSTree's flags, so `describe_backend` can
# answer without importing the disk tier
_disk_tree.supports_dynamic_insert = True  # type: ignore[attr-defined]
_disk_tree.supports_dynamic_delete = True  # type: ignore[attr-defined]
_disk_tree.supports_open_bounds = True  # type: ignore[attr-defined]
_disk_tree.supports_unbounded = True  # type: ignore[attr-defined]
_disk_tree.disk_backed = True  # type: ignore[attr-defined]
_disk_tree.__name__ = "DiskIBSTree"


def _build_disk(**options: Any) -> Any:
    from ..core.predicate_index import PredicateIndex

    kwargs = _accept(options, _IBS_OPTIONS)
    kwargs["storage"] = "disk"
    return PredicateIndex(**kwargs)


def _build_disk_concurrent(**options: Any) -> Any:
    from ..concurrency import ConcurrentPredicateIndex

    kwargs = _accept(options, _CONCURRENT_OPTIONS)
    kwargs["storage"] = "disk"
    return ConcurrentPredicateIndex(**kwargs)


def _build_ibs_concurrent(**options: Any) -> Any:
    # Imported here: building the concurrent matcher must not drag the
    # concurrency layer (and its pool) in for the common
    # single-threaded strategies.
    from ..concurrency import ConcurrentPredicateIndex

    return ConcurrentPredicateIndex(**_accept(options, _CONCURRENT_OPTIONS))


def _build_sequential(**options: Any) -> Any:
    from ..baselines.sequential import SequentialMatcher

    return SequentialMatcher()


def _build_hash(**options: Any) -> Any:
    from ..baselines.hash_sequential import HashSequentialMatcher

    return HashSequentialMatcher()


def _build_locking(**options: Any) -> Any:
    from ..baselines.physical_locking import PhysicalLockingMatcher

    # ``estimator`` is deliberately not forwarded: the simulated
    # optimizer's lock choices use the scheme's own default constants,
    # matching the paper's description of existing systems.
    return PhysicalLockingMatcher(
        indexed_attributes=options.get("indexed_attributes")
    )


def _build_rtree(**options: Any) -> Any:
    from ..baselines.rtree import RTreeMatcher

    return RTreeMatcher()


#: The process-wide registry, pre-populated with every built-in
#: backend.  ``PredicateIndex(tree_factory="avl")``, the rule engine's
#: matcher strings, and the bench runner all resolve through it.
DEFAULT_REGISTRY = BackendRegistry()

DEFAULT_REGISTRY.register_backend(
    "ibs", IBSTree, "unbalanced IBS-tree (Section 4.2, the paper's measurements)"
)
DEFAULT_REGISTRY.register_backend(
    "avl", AVLIBSTree, "AVL-balanced IBS-tree (Section 4.3 marker rewrites)"
)
DEFAULT_REGISTRY.register_backend(
    "rb", RBIBSTree, "red-black-balanced IBS-tree"
)
DEFAULT_REGISTRY.register_backend(
    "flat", FlatIBSTree, "array-backed IBS-tree (cache-friendly layout)"
)
DEFAULT_REGISTRY.register_backend(
    "interval-list", IntervalList, "linear-scan interval list (Figure 9 baseline)"
)
DEFAULT_REGISTRY.register_backend(
    "rtree-1d", RTree1D, "1-D R-tree (Section 2.4; closed bounds only)"
)
DEFAULT_REGISTRY.register_backend(
    "pst", PrioritySearchTree, "priority search tree (closed bounds only)"
)
DEFAULT_REGISTRY.register_backend(
    "segment", SegmentTree, "static segment tree (rebuilt on change)"
)
DEFAULT_REGISTRY.register_backend(
    "static-interval", StaticIntervalTree, "static interval tree (rebuilt on change)"
)
DEFAULT_REGISTRY.register_backend(
    "rplus", RPlusTree1D, "1-D R+-tree (non-overlapping leaf regions)"
)
DEFAULT_REGISTRY.register_backend(
    "disk",
    _disk_tree,
    "disk-backed IBS-tree: RAM staging tree sealed into mmap'd segment files",
)

DEFAULT_REGISTRY.register_matcher(
    "ibs", _build_ibs, "the paper's two-level predicate index"
)
DEFAULT_REGISTRY.register_matcher(
    "ibs-avl", _build_ibs_avl, "predicate index over AVL-balanced trees"
)
DEFAULT_REGISTRY.register_matcher(
    "ibs-rb", _build_ibs_rb, "predicate index over red-black trees"
)
DEFAULT_REGISTRY.register_matcher(
    "ibs-flat", _build_ibs_flat, "predicate index over flat array trees"
)
DEFAULT_REGISTRY.register_matcher(
    "columnar",
    _build_columnar,
    "predicate index with a vectorized columnar batch plane over flat trees",
    capabilities={"requires_numpy": True, "vectorized_batch": True},
)
DEFAULT_REGISTRY.register_matcher(
    "auto",
    _build_auto,
    "self-tuning predicate index: per-attribute backend auto-selection "
    "driven by observed workload evidence and a calibrated cost model",
    capabilities={"auto_backend": True, "self_tuning": True},
)
DEFAULT_REGISTRY.register_matcher(
    "ibs-concurrent",
    _build_ibs_concurrent,
    "sharded epoch-snapshot concurrent predicate index",
    capabilities={"process_parallel": True},
)
DEFAULT_REGISTRY.register_matcher(
    "disk",
    _build_disk,
    "disk-tier predicate index: mmap'd segment bases with bounded "
    "resident memory and cold-start from segment files",
    capabilities={"disk_backed": True},
)
DEFAULT_REGISTRY.register_matcher(
    "disk-concurrent",
    _build_disk_concurrent,
    "concurrent disk-tier index: compaction publishes mmap'd bases, "
    "checkpoints are incremental per shard",
    capabilities={"disk_backed": True, "process_parallel": True},
)
DEFAULT_REGISTRY.register_matcher(
    "sequential", _build_sequential, "Section 2.1: one flat predicate list"
)
DEFAULT_REGISTRY.register_matcher(
    "hash", _build_hash, "Section 2.2: hash on relation + per-relation list"
)
DEFAULT_REGISTRY.register_matcher(
    "locking", _build_locking, "Section 2.3: POSTGRES-style predicate locks"
)
DEFAULT_REGISTRY.register_matcher(
    "rtree", _build_rtree, "Section 2.4: predicates as k-d boxes"
)


def register_backend(
    name: str,
    factory: TreeFactory,
    description: str = "",
    replace: bool = False,
) -> None:
    """Register a tree backend in the :data:`DEFAULT_REGISTRY`."""
    DEFAULT_REGISTRY.register_backend(
        name, factory, description=description, replace=replace
    )


def register_matcher(
    name: str,
    builder: MatcherBuilder,
    description: str = "",
    replace: bool = False,
    capabilities: Optional[Dict[str, Any]] = None,
) -> None:
    """Register a matcher builder in the :data:`DEFAULT_REGISTRY`."""
    DEFAULT_REGISTRY.register_matcher(
        name,
        builder,
        description=description,
        replace=replace,
        capabilities=capabilities,
    )
