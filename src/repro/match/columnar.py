"""The vectorized columnar batch plane (NumPy ``searchsorted`` stabs).

A frozen (or momentarily unchanging) relation's matching problem can be
answered column-at-a-time instead of tuple-at-a-time.  The key fact is
that a stab descent over a fixed search tree has only ``2n + 1``
distinct outcomes (one per node value, one per gap between consecutive
values), so :meth:`~repro.core.flat_ibs_tree.FlatIBSTree.export_stab_plane`
can enumerate them once and a whole batch of values is stabbed with a
single ``np.searchsorted`` plus one row gather from a packed outcome
bitmatrix — the Section 4.2 semantics, precomputed.

:func:`build_relation_plane` compiles one
:class:`~repro.match.catalog.RelationState` into a
:class:`ColumnarRelationPlane` holding three kinds of vectorized
evaluators:

* **entry planes** — one :class:`ColumnarIBSIndex` per indexed
  attribute, exported from the relation's live tree; their stab rows
  OR into a packed candidates-per-tuple bitmatrix (the paper's
  partial matches);
* **residual planes** — one :class:`ColumnarIBSIndex` per attribute
  carrying residual interval clauses, built from a private bulk-loaded
  :class:`~repro.core.flat_ibs_tree.FlatIBSTree` over those clauses:
  interval containment *is* a stabbing query, so the residual
  conjunction is evaluated by the same searchsorted-plus-gather kernel
  instead of per-candidate Python;
* **function groups** — clauses sharing ``(function, attribute,
  negated)`` are evaluated once per batch into a verdict vector over
  the *original* tuple values (functions must never see the float64
  projection), then AND-ed into every owning predicate's column.

Every outcome row is pre-baked at the **full relation width** (one bit
per registered predicate, packed little-endian into bytes).  Entry rows
carry only the bits their tree owns, so composing attributes is a plain
byte-wise OR of row gathers; residual rows carry ones on every *foreign*
bit, so composing them is a byte-wise AND that cannot disturb other
predicates' verdicts.  That trades plane memory (each row spans the
relation) for a kernel with no per-column scatter — the batch loop is
gathers, ORs and ANDs over contiguous bytes, unpacked exactly once at
emit time.

Predicates whose residual :func:`~repro.match.catalog.vector_residual_spec`
cannot express (unknown clause subclasses, bounds outside the exact
float64 domain) fall back to per-candidate ``predicate.matches`` at
emit time — the same seam the scalar batch path's OPAQUE entries use —
so the plane never guesses.

Correctness boundaries, all enforced here:

* **numeric domain** — plane values and batch values must be exactly
  representable as float64 (bool / int within ±2**53 / finite-or-NaN
  float, by exact type).  A batch carrying anything else makes
  :meth:`ColumnarRelationPlane.match_batch` return ``None`` and the
  caller falls back to the scalar pipeline: foreign comparable types
  (``Decimal``, strings, big ints) may legitimately match in the
  scalar trees, so treating them as non-matching would diverge.
* **NaN** — a NaN stab descends rightward at every finite node (all
  ``<`` comparisons are False) and lands in the top gap, which is
  exactly where ``searchsorted`` places it; for *residual* intervals
  the per-tuple oracle (``Interval.contains``, rejection-style)
  accepts NaN, so residual stab rows are overridden to the all-ones
  outcome for NaN values.
* **None / missing attributes** — both project to the same "absent"
  lane: no entry probe, the absent outcome row (no candidate on entry
  planes, every owned bit cleared on residual planes), mirroring the
  scalar paths' ``tup.get(attr) is None`` convention.
* **function clauses** — evaluated column-wise, so a function is
  called once per tuple per ``(function, attribute, negated)`` group
  rather than once per candidate, and may be called on tuples a
  short-circuiting per-tuple evaluation would have skipped.  Any
  exception from such a call abandons the plane for the batch
  (``None`` return): the scalar pipeline then re-runs the batch and
  raises exactly where the per-tuple semantics say an exception is
  reachable.

The module imports cleanly without NumPy (:data:`HAVE_NUMPY` is False
and :func:`build_relation_plane` is never called) — NumPy is the
optional ``[columnar]`` extra, not a dependency.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.flat_ibs_tree import FlatIBSTree
from ..core.intervals import MINUS_INF, PLUS_INF, Interval
from ..predicates.predicate import Predicate
from .catalog import (
    RelationState,
    _vectorizable_bound,
    vector_residual_spec,
)
from .observer import MatchObserver

try:  # pragma: no cover - exercised via the no-NumPy CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "ColumnarIBSIndex",
    "ColumnarRelationPlane",
    "build_relation_plane",
]

_MAX_EXACT = float(2 ** 53)

#: Bits-set-per-byte lookup, for counting partial matches without
#: unpacking the candidate matrix.
_POPCOUNT = (
    np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)
    if HAVE_NUMPY
    else None
)

#: Row ``v`` lists the set-bit offsets of byte value ``v`` in ascending
#: order (little-endian bit numbering), zero-padded to 8; together with
#: :data:`_POPCOUNT` it expands non-zero bytes to bit positions with
#: pure arithmetic (no ``np.nonzero`` scan over the unpacked matrix).
_BITPOS = (
    np.array(
        [
            ([bit for bit in range(8) if value >> bit & 1] + [0] * 8)[:8]
            for value in range(256)
        ],
        dtype=np.uint8,
    ).reshape(-1)
    if HAVE_NUMPY
    else None
)


class _OutOfDomain(Exception):
    """Internal: a batch value falls outside the plane's float64 domain."""


class ColumnarIBSIndex:
    """One attribute's stab outcomes as sorted arrays plus packed rows.

    ``values`` is the tree's finite node values as an ascending float64
    array; ``packed`` holds every distinct stab outcome as a
    little-endian packed bit row (``uint8``) spanning the full relation
    width, laid out as::

        row i          (0 <= i <= n)   gap outcome strictly below
                                       values[i] (row n: above all)
        row n + 1 + i  (0 <= i <  n)   exact hit on values[i]
        row 2n + 1                     absent value (None / missing)
        row 2n + 2                     all-one (NaN on residual planes)

    so :meth:`stab_rows` is one ``searchsorted`` plus one equality mask
    over the whole batch, and :meth:`gather` yields the batch's packed
    verdict rows ready for byte-wise OR (entry planes: foreign bits are
    zero) or AND (residual planes: foreign bits are one).
    """

    __slots__ = ("values", "packed", "n")

    def __init__(self, values: Any, packed: Any) -> None:
        self.values = values
        self.packed = packed
        self.n = int(values.shape[0])

    def stab_rows(self, column: Any, isnone: Any, nan_passes: bool) -> Any:
        """Outcome-row index per batch value (one vectorized stab).

        ``nan_passes`` selects the residual-plane NaN semantics (the
        rejection-style oracle accepts NaN, so NaN rows map to the
        all-ones outcome); entry planes leave NaN in the top gap, which
        is where a scalar descent lands it.
        """
        n = self.n
        idx = np.searchsorted(self.values, column, side="left")
        if n:
            eq = np.zeros(column.shape[0], dtype=bool)
            in_bounds = idx < n
            eq[in_bounds] = self.values[idx[in_bounds]] == column[in_bounds]
            rows = np.where(eq, idx + n + 1, idx)
        else:
            rows = idx
        rows[isnone] = 2 * n + 1
        if nan_passes:
            rows[column != column] = 2 * n + 2
        return rows

    def gather(self, column: Any, isnone: Any, nan_passes: bool) -> Any:
        """The batch's packed verdict rows (batch × relation bytes)."""
        return self.packed[self.stab_rows(column, isnone, nan_passes)]


def _byte_mask(cols: List[int], n_bytes: int) -> Any:
    """A full-width packed mask with the given column bits set."""
    bits = np.zeros(n_bytes * 8, dtype=bool)
    bits[cols] = True
    return np.packbits(bits, bitorder="little")


def _plane_from_export(
    export: Tuple[List[Any], List[int], List[int], List[Optional[Hashable]]],
    perm: List[int],
    n_cols: int,
    n_bytes: int,
    residual: bool,
) -> Optional[ColumnarIBSIndex]:
    """Build a :class:`ColumnarIBSIndex` from a tree's exported outcomes.

    ``perm[k]`` maps tree-local bit *k* to its global predicate column;
    entries at or beyond ``n_cols`` (freed bits, unknown idents) are
    dropped.  ``residual`` selects the AND-composable row layout:
    foreign bits one, absent row clears only owned bits, plus the
    all-ones NaN row.

    Returns ``None`` when any node value falls outside the exact
    float64 domain — the relation then cannot be vectorized, because
    ``searchsorted`` over inexact values would disagree with the
    tree's total order.
    """
    values, eq_masks, gap_masks, _ = export
    for value in values:
        if not _vectorizable_bound(value):
            return None
    nbits = len(perm)
    n_rows = len(gap_masks) + len(eq_masks)  # 2n + 1
    tree_nbytes = max(1, (nbits + 7) // 8)
    buf = bytearray()
    for mask in gap_masks:
        buf += mask.to_bytes(tree_nbytes, "little")
    for mask in eq_masks:
        buf += mask.to_bytes(tree_nbytes, "little")
    tree_rows = np.frombuffer(bytes(buf), dtype=np.uint8).reshape(
        n_rows, tree_nbytes
    )
    tree_bits = np.unpackbits(
        tree_rows, axis=1, count=nbits, bitorder="little"
    ).astype(bool)
    perm_array = np.asarray(perm, dtype=np.intp).reshape(nbits)
    valid = (perm_array >= 0) & (perm_array < n_cols)
    full = np.zeros((n_rows + 2, n_bytes * 8), dtype=bool)
    full[:n_rows, perm_array[valid]] = tree_bits[:, valid]
    if residual:
        owned = np.zeros(n_bytes * 8, dtype=bool)
        owned[perm_array[valid]] = True
        foreign = ~owned
        full[:n_rows] |= foreign
        full[n_rows] = foreign  # absent: owned bits fail, rest untouched
        full[n_rows + 1] = True  # NaN: rejection-style oracle accepts it
    packed = np.packbits(full, axis=1, bitorder="little")
    return ColumnarIBSIndex(np.asarray(values, dtype=np.float64), packed)


class ColumnarRelationPlane:
    """Everything needed to answer ``match_batch`` for one relation.

    Built by :func:`build_relation_plane` against one mutation version
    of the relation's state and cached there; immutable afterwards, so
    concurrent readers of a frozen index share it freely.
    """

    __slots__ = (
        "preds_by_col",
        "pred_array",
        "n_cols",
        "n_bytes",
        "entry_planes",
        "residual_planes",
        "function_groups",
        "ni_mask",
        "fallback_mask",
        "fallback_inv",
        "ni_fallback_preds",
        "float_attrs",
        "ni_count",
    )

    def __init__(
        self,
        preds_by_col: List[Predicate],
        entry_planes: List[Tuple[str, ColumnarIBSIndex]],
        residual_planes: List[Tuple[str, ColumnarIBSIndex]],
        function_groups: List[Tuple[str, Callable[[Any], Any], bool, Any]],
        ni_mask: Optional[Any],
        fallback_mask: Optional[Any],
        ni_fallback_preds: List[Predicate],
        ni_count: int,
    ) -> None:
        self.preds_by_col = preds_by_col
        self.n_cols = len(preds_by_col)
        self.n_bytes = max(1, (self.n_cols + 7) // 8)
        # object-dtype copy for C-level gathers at emit time
        self.pred_array = np.empty(self.n_cols, dtype=object)
        self.pred_array[:] = preds_by_col
        self.entry_planes = entry_planes
        self.residual_planes = residual_planes
        #: per-group (attribute, function, negated, inverse byte mask);
        #: rows whose verdict is false AND with the inverse mask
        self.function_groups = function_groups
        #: non-indexable predicates whose whole conjunction vectorized:
        #: their candidate bit is forced on (they are always tested)
        self.ni_mask = ni_mask
        #: indexed predicates the spec compiler bailed on: candidate
        #: bits survive to emit, verdicts come from predicate.matches
        self.fallback_mask = fallback_mask
        self.fallback_inv = (
            np.bitwise_not(fallback_mask) if fallback_mask is not None else None
        )
        #: non-indexable predicates the compiler bailed on: tested
        #: against every tuple by predicate.matches, like the scalar NI loop
        self.ni_fallback_preds = ni_fallback_preds
        self.float_attrs = sorted(
            {attr for attr, _ in entry_planes}
            | {attr for attr, _ in residual_planes}
        )
        self.ni_count = ni_count

    # -- batch evaluation ----------------------------------------------

    def _columns(
        self, tuples: List[Mapping[str, Any]]
    ) -> Dict[str, Tuple[Any, Any]]:
        """Extract ``(float64 column, isnone mask)`` per needed attribute.

        Raises :class:`_OutOfDomain` on any value the float64
        projection cannot represent exactly — the caller then falls
        back to the scalar pipeline for the whole batch.
        """
        size = len(tuples)
        out: Dict[str, Tuple[Any, Any]] = {}
        for attr in self.float_attrs:
            column = np.zeros(size, dtype=np.float64)
            isnone = np.zeros(size, dtype=bool)
            for i, tup in enumerate(tuples):
                value = tup.get(attr)
                kind = type(value)
                if value is None:
                    isnone[i] = True
                elif kind is float or kind is bool:
                    column[i] = value
                elif kind is int:
                    if not -_MAX_EXACT < value < _MAX_EXACT:
                        raise _OutOfDomain(attr)
                    column[i] = value
                else:
                    raise _OutOfDomain(attr)
            out[attr] = (column, isnone)
        return out

    def _function_vectors(
        self, tuples: List[Mapping[str, Any]]
    ) -> Optional[List[Tuple[Any, Any]]]:
        """One verdict vector per ``(function, attribute, negated)`` group.

        Functions see the original tuple values.  ``None`` on any
        exception: the scalar pipeline re-runs the batch and raises
        exactly where per-tuple short-circuit semantics reach the
        failing call.
        """
        vectors: List[Tuple[Any, Any]] = []
        for attr, function, negated, inv_mask in self.function_groups:
            verdicts = np.zeros(len(tuples), dtype=bool)
            try:
                for i, tup in enumerate(tuples):
                    value = tup.get(attr)
                    if value is None:
                        continue  # None never matches a clause
                    if bool(function(value)) != negated:
                        verdicts[i] = True
            except Exception:
                return None
            vectors.append((inv_mask, verdicts))
        return vectors

    def match_batch(
        self,
        tuples: List[Mapping[str, Any]],
        observer: MatchObserver,
        relation: str,
    ) -> Optional[List[List[Predicate]]]:
        """Vectorized route→stab→intersect→residual→emit over the batch.

        Returns ``None`` (before any observer event fires) when the
        batch leaves the plane's domain; otherwise the same rows — and
        the same logical observer counts — as the scalar pipeline.
        """
        try:
            columns = self._columns(tuples)
        except _OutOfDomain:
            return None
        function_vectors = self._function_vectors(tuples)
        if function_vectors is None:
            return None
        size = len(tuples)
        n_cols = self.n_cols
        # -- stab: one searchsorted + row gather per indexed attribute,
        #    OR-composed (entry rows carry only their own tree's bits) -
        matrix: Optional[Any] = None
        probes = 0
        for attr, plane in self.entry_planes:
            column, isnone = columns[attr]
            probes += size - int(isnone.sum())
            gathered = plane.gather(column, isnone, False)
            if matrix is None:
                matrix = gathered  # fancy gather: already a fresh array
            else:
                np.bitwise_or(matrix, gathered, out=matrix)
        if matrix is None:
            matrix = np.zeros((size, self.n_bytes), dtype=np.uint8)
        partial = int(_POPCOUNT[matrix].sum())
        # -- residual: stab planes over residual intervals, function
        #    verdict vectors, both AND-ed into the candidate matrix ----
        if self.ni_mask is not None:
            np.bitwise_or(matrix, self.ni_mask, out=matrix)
        fallback_hits: Optional[Tuple[Any, Any]] = None
        if self.fallback_mask is not None:
            candidates = np.unpackbits(
                matrix & self.fallback_mask,
                axis=1,
                count=n_cols,
                bitorder="little",
            )
            fallback_hits = np.nonzero(candidates)
            np.bitwise_and(matrix, self.fallback_inv, out=matrix)
        for attr, plane in self.residual_planes:
            column, isnone = columns[attr]
            np.bitwise_and(
                matrix, plane.gather(column, isnone, True), out=matrix
            )
        for inv_mask, verdicts in function_vectors:
            failed = np.flatnonzero(~verdicts)
            if failed.shape[0]:
                matrix[failed] &= inv_mask
        # -- emit: decode the verdict matrix into per-tuple rows.
        #    Matches are sparse, so scan the packed bytes (n_cols/8 per
        #    tuple) and expand only the non-zero ones; padding bits can
        #    never be set (entry rows leave them zero and everything
        #    after only ANDs or ORs real columns).
        n_bytes = self.n_bytes
        flat_bytes = matrix.reshape(-1)
        hit_bytes = np.flatnonzero(flat_bytes)
        values = flat_bytes[hit_bytes].astype(np.intp)
        counts = _POPCOUNT[values].astype(np.intp)
        total = int(counts.sum())
        which_byte = np.repeat(hit_bytes, counts)
        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.intp) - np.repeat(starts, counts)
        bit_offs = _BITPOS[np.repeat(values, counts) * 8 + within]
        hit_rows = which_byte // n_bytes
        hit_cols = (which_byte - hit_rows * n_bytes) * 8 + bit_offs
        flat = self.pred_array[hit_cols].tolist()
        splits = np.cumsum(np.bincount(hit_rows, minlength=size)).tolist()
        results: List[List[Predicate]] = []
        start = 0
        for end in splits:
            results.append(flat[start:end])
            start = end
        full = len(flat)
        if fallback_hits is not None:
            preds_by_col = self.preds_by_col
            for row, col in zip(
                fallback_hits[0].tolist(), fallback_hits[1].tolist()
            ):
                predicate = preds_by_col[col]
                if predicate.matches(tuples[row]):
                    results[row].append(predicate)
                    full += 1
        if self.ni_fallback_preds:
            for row, tup in enumerate(tuples):
                append = results[row].append
                for predicate in self.ni_fallback_preds:
                    if predicate.matches(tup):
                        append(predicate)
                        full += 1
        observer.on_route(relation, size, True)
        observer.on_stab(relation, probes, 0, 0)
        observer.on_candidates(relation, partial, self.ni_count * size)
        observer.on_residual(relation, full, 0)
        return results


def build_relation_plane(
    state: RelationState,
) -> Optional[ColumnarRelationPlane]:
    """Compile *state* into a :class:`ColumnarRelationPlane`, or ``None``.

    ``None`` means the relation's *shape* cannot be vectorized — a tree
    backend without :meth:`export_stab_plane`, or node values outside
    the exact float64 domain.  Individual predicates whose residuals
    the spec compiler rejects do not disqualify the relation; they ride
    along on the per-candidate fallback seam.
    """
    if not HAVE_NUMPY:
        return None
    idents = list(state.predicates)
    col_of = {ident: col for col, ident in enumerate(idents)}
    preds_by_col = [state.predicates[ident] for ident in idents]
    n_cols = len(preds_by_col)
    n_bytes = max(1, (n_cols + 7) // 8)
    entry_planes: List[Tuple[str, ColumnarIBSIndex]] = []
    for attr, tree in state.trees.items():
        export_fn = getattr(tree, "export_stab_plane", None)
        if export_fn is None:
            return None
        export = export_fn()
        perm = [
            col_of.get(ident, n_cols) if ident is not None else n_cols
            for ident in export[3]
        ]
        plane = _plane_from_export(export, perm, n_cols, n_bytes, False)
        if plane is None:
            return None
        entry_planes.append((attr, plane))
    residual_items: Dict[str, List[Tuple[Interval, int]]] = {}
    function_cols: Dict[Tuple[Any, str, bool], List[int]] = {}
    trivial_ni_cols: List[int] = []
    fallback_cols: List[int] = []
    ni_fallback_preds: List[Predicate] = []
    non_indexable = state.non_indexable
    indexed_under = state.indexed_under
    for ident, predicate in state.predicates.items():
        col = col_of[ident]
        spec = vector_residual_spec(predicate, indexed_under.get(ident, ()))
        if spec is None:
            if ident in non_indexable:
                ni_fallback_preds.append(predicate)
            else:
                fallback_cols.append(col)
            continue
        if ident in non_indexable:
            trivial_ni_cols.append(col)
        for row in spec:
            if row[0] == "interval":
                _, attr, low, high, low_inc, high_inc = row
                interval = Interval(
                    MINUS_INF if low is None else low,
                    PLUS_INF if high is None else high,
                    low_inc,
                    high_inc,
                )
                residual_items.setdefault(attr, []).append((interval, col))
            else:
                _, attr, function, negated = row
                function_cols.setdefault((function, attr, negated), []).append(
                    col
                )
    residual_planes: List[Tuple[str, ColumnarIBSIndex]] = []
    for attr, pairs in residual_items.items():
        tree = FlatIBSTree()
        tree.bulk_load(pairs)
        export = tree.export_stab_plane()
        perm = [n_cols if ident is None else int(ident) for ident in export[3]]
        plane = _plane_from_export(export, perm, n_cols, n_bytes, True)
        if plane is None:  # pragma: no cover - bounds pre-checked by spec
            return None
        residual_planes.append((attr, plane))
    function_groups = [
        (
            attr,
            function,
            negated,
            np.bitwise_not(_byte_mask(cols, n_bytes)),
        )
        for (function, attr, negated), cols in function_cols.items()
    ]
    return ColumnarRelationPlane(
        preds_by_col,
        entry_planes,
        residual_planes,
        function_groups,
        _byte_mask(trivial_ni_cols, n_bytes) if trivial_ni_cols else None,
        _byte_mask(fallback_cols, n_bytes) if fallback_cols else None,
        ni_fallback_preds,
        len(non_indexable),
    )
