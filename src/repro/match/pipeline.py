"""The staged match pipeline: route → stab → candidates → residual → emit.

One implementation of the paper's matching procedure (module docstring
of :mod:`repro.core.predicate_index`, steps 1–4) serves every read
path:

* the per-tuple generator (:meth:`MatchPipeline.match_with_candidates`)
  behind ``match`` / ``match_idents``;
* the batched path (:meth:`MatchPipeline.match_batch`) with grouped
  stab descents, compiled residuals, and the per-batch memo;
* the concurrency layer's epoch-snapshot reads, via the module-level
  :func:`snapshot_match` / :func:`snapshot_match_idents` /
  :func:`snapshot_match_batch` merge functions (base results filtered
  through tombstones, overlay results appended in insertion order).

Every stage reports what it did through a
:class:`~repro.match.observer.MatchObserver` — the pipeline itself
keeps no counters — so statistics, tracing, and future observability
hang off one seam instead of scattered increments.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..core.intervals import MINUS_INF, PLUS_INF
from ..predicates.predicate import Predicate
from .catalog import CLOSED, MULTI, SINGLE, TRIVIAL, ClauseCatalog, RelationState
from .observer import MatchObserver
from .store import TreeStore

__all__ = [
    "MatchPipeline",
    "snapshot_match",
    "snapshot_match_idents",
    "snapshot_match_batch",
]


class MatchPipeline:
    """Runs tuples through the staged match against catalog state.

    Parameters
    ----------
    catalog:
        The :class:`~repro.match.catalog.ClauseCatalog` holding the
        per-relation state (trees, predicates, residual cache).
    store:
        The :class:`~repro.match.store.TreeStore` whose cache policy
        (``stab_cache_size``, ``cache_lru``) governs the stab stage.
    observer:
        Stage-boundary sink; swap it to change what is recorded
        without touching the pipeline.
    feedback:
        Entry-clause feedback counters
        (:class:`~repro.db.statistics.EntryClauseFeedback`); consulted
        only when ``adaptive``.
    adaptive:
        Record observed entry-clause selectivities on the match path
        (never safe on a frozen index read concurrently).
    columnar:
        Try the vectorized columnar plane
        (:mod:`repro.match.columnar`) first on every
        :meth:`match_batch` call.  The plane is built lazily per
        relation, cached on the relation's mutation version, and
        silently skipped whenever NumPy is missing, the relation's
        shape is not vectorizable, or the batch carries values outside
        the plane's numeric domain — the scalar stages below remain
        the semantics of record.  Ignored under ``adaptive`` (the
        feedback counters need the scalar path's per-candidate
        bookkeeping) and under multi-clause indexing.
    """

    __slots__ = ("catalog", "store", "observer", "feedback", "adaptive", "columnar")

    def __init__(
        self,
        catalog: ClauseCatalog,
        store: TreeStore,
        observer: MatchObserver,
        feedback: Any = None,
        adaptive: bool = False,
        columnar: bool = False,
    ) -> None:
        self.catalog = catalog
        self.store = store
        self.observer = observer
        self.feedback = feedback
        self.adaptive = bool(adaptive)
        self.columnar = bool(columnar)

    # -- per-tuple path -------------------------------------------------

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        """All predicates of *relation* that fully match the tuple."""
        return [
            pred
            for pred, _ in self.match_with_candidates(relation, tup)
            if pred is not None
        ]

    def match_idents(self, relation: str, tup: Mapping[str, Any]) -> Set[Hashable]:
        """Identifiers of all fully matching predicates."""
        return {
            pred.ident
            for pred, _ in self.match_with_candidates(relation, tup)
            if pred is not None
        }

    def match_with_candidates(
        self, relation: str, tup: Mapping[str, Any]
    ) -> Iterator[Tuple[Optional[Predicate], Hashable]]:
        """Yield ``(predicate_or_None, ident)`` for each candidate.

        A candidate whose residual test fails yields ``(None, ident)``;
        a full match yields the predicate.  Exposed so benchmarks can
        count partial matches exactly as the cost model does.
        """
        observer = self.observer
        observer.on_route(relation, 1, False)
        state = self.catalog.relations.get(relation)
        if state is None:
            return
        if self.catalog.multi_clause:
            candidates = self._intersect_candidates(relation, state, tup)
        else:
            candidates = set()
            probes = descents = cache_hits = 0
            track = observer.wants_attribute_stabs
            attr_counts: Optional[Dict[str, int]] = {} if track else None
            cache_size = self.store.stab_cache_size
            cache: Any = state.stab_cache
            lru = self.store.cache_lru
            for attribute, tree in state.trees.items():
                value = tup.get(attribute)
                if value is None:
                    continue  # NULL matches no clause: no tree entry applies
                probes += 1
                if attr_counts is not None:
                    attr_counts[attribute] = attr_counts.get(attribute, 0) + 1
                key = None
                if cache_size:
                    epoch = getattr(tree, "epoch", None)
                    if epoch is not None:
                        try:
                            key = (attribute, epoch, value)
                            cached = cache.get(key)
                        except TypeError:
                            key = None  # unhashable value: uncacheable
                        else:
                            if cached is not None:
                                if lru:
                                    cache.move_to_end(key)
                                cache_hits += 1
                                candidates |= cached
                                continue
                descents += 1
                try:
                    if key is None:
                        tree.stab_into(value, candidates)
                    else:
                        stabbed = frozenset(tree.stab(value))
                        candidates |= stabbed
                        if lru:
                            cache[key] = stabbed
                            if len(cache) > cache_size:
                                cache.popitem(last=False)
                        elif len(cache) < cache_size:
                            # frozen: append-only, never evict
                            cache[key] = stabbed
                except TypeError:
                    # the value's type is incomparable with this
                    # attribute's indexed bounds (mixed-domain data): no
                    # interval clause on this attribute can match it
                    continue
            observer.on_stab(relation, probes, descents, cache_hits)
            if attr_counts:
                observer.on_attribute_stabs(relation, attr_counts)
            if self.adaptive:
                self.feedback.observe_tuples(relation, 1)
                if candidates:
                    self.feedback.observe_candidates(candidates)
        observer.on_candidates(relation, len(candidates), len(state.non_indexable))
        candidates |= state.non_indexable
        for ident in candidates:
            predicate = state.predicates[ident]
            if predicate.matches(tup):
                observer.on_residual(relation, 1, 0)
                yield predicate, ident
            else:
                yield None, ident

    def _intersect_candidates(
        self, relation: str, state: RelationState, tup: Mapping[str, Any]
    ) -> Set[Hashable]:
        """Multi-clause candidates: hit in *every* indexed attribute.

        An ident is a candidate only if every tree it is indexed under
        was probed and reported it — a NULL or incomparable value in
        any indexed attribute disqualifies the predicate outright
        (that clause cannot match).
        """
        hits: Dict[Hashable, int] = {}
        probed: Set[str] = set()
        probes = descents = 0
        track = self.observer.wants_attribute_stabs
        attr_counts: Optional[Dict[str, int]] = {} if track else None
        for attribute, tree in state.trees.items():
            value = tup.get(attribute)
            if value is None:
                continue
            probes += 1
            if attr_counts is not None:
                attr_counts[attribute] = attr_counts.get(attribute, 0) + 1
            descents += 1
            try:
                stabbed = tree.stab(value)
            except TypeError:
                continue
            probed.add(attribute)
            for ident in stabbed:
                hits[ident] = hits.get(ident, 0) + 1
        self.observer.on_stab(relation, probes, descents, 0)
        if attr_counts:
            self.observer.on_attribute_stabs(relation, attr_counts)
        candidates: Set[Hashable] = set()
        for ident, count in hits.items():
            attributes = state.indexed_under[ident]
            if count == len(attributes) and all(a in probed for a in attributes):
                candidates.add(ident)
        return candidates

    # -- batched path ---------------------------------------------------

    def match_batch(
        self, relation: str, tuples: Iterable[Mapping[str, Any]]
    ) -> List[List[Predicate]]:
        """Match a batch of tuples; returns one result list per tuple.

        Semantically identical to ``[self.match(relation, t) for t in
        tuples]`` (the differential tests assert exactly that), but the
        work is restructured around the batch:

        1. the batch's values are grouped per indexed attribute,
           deduplicated and sorted, and each attribute tree is stabbed
           **once per distinct value** via ``stab_many`` (sorted order
           keeps the grouped descent's sibling partitions adjacent and
           shares search-path prefixes);
        2. the stab results are fanned back out per tuple (in the
           paper's single-clause scheme the per-attribute stabbed sets
           are disjoint, so no per-tuple union is built);
        3. residual tests run through **compiled evaluators** that
           skip the clauses already *proven* by the index probe — a
           stabbed candidate's entry clause is known to match, so only
           the remaining clauses are tested — and interval-only
           residuals are **memoized** per batch on ``(ident,
           restricted-tuple-projection)`` whenever the batch shows
           enough value repetition for the memo to pay off.

        Function clauses are always (re-)evaluated per tuple, exactly
        as the per-tuple path does: memoizing them on ``==``-collapsed
        keys would be unsound for type-sensitive functions (``2`` and
        ``2.0`` share a key), and the paper assumes nothing about them
        "except that it returns true or false".

        Tuples the batch stages cannot handle — an unhashable or
        infinity-sentinel value in an indexed attribute — are routed
        through the per-tuple path *individually* while the rest of the
        batch stays batched (one adversarial tuple no longer degrades
        the whole batch); the columnar plane falls back through this
        same seam when it bails out.  ``None``-valued and missing
        attributes are equivalent everywhere (the NULL rule: NULL
        matches no clause) and never force a fallback.
        """
        tuples = list(tuples)
        if not tuples:
            return []
        observer = self.observer
        state = self.catalog.relations.get(relation)
        if state is None:
            observer.on_route(relation, len(tuples), True)
            return [[] for _ in tuples]
        if self.columnar and not self.adaptive and not self.catalog.multi_clause:
            rows = self._columnar_match_batch(relation, state, tuples)
            if rows is not None:
                return rows
        stab_tables, memo_on, probes, descents, cache_hits, fallback, attr_counts = (
            self._batch_stab_tables(state, tuples)
        )
        if len(fallback) == len(tuples):
            # nothing batchable: a pure per-tuple run, no batch events
            return [self.match(relation, tup) for tup in tuples]
        fallback_set = frozenset(fallback)
        observer.on_route(relation, len(tuples) - len(fallback_set), True)
        observer.on_stab(relation, probes, descents, cache_hits)
        if attr_counts:
            observer.on_attribute_stabs(relation, attr_counts)
        if self.catalog.multi_clause:
            per_tuple = self._batch_intersect(
                state, tuples, stab_tables, fallback_set
            )
        else:
            per_tuple = None
        non_indexable = state.non_indexable
        predicates = state.predicates
        residuals = self.catalog.ensure_residuals(state)
        # Non-indexable predicates are tested against *every* tuple:
        # resolve their entries once per batch into homogeneous
        # per-kind lists so the tuple loop runs without per-candidate
        # dict lookups or kind dispatch.
        ni_trivial: List[Predicate] = []
        ni_closed: List[Tuple[Any, ...]] = []
        ni_single: List[Tuple[Hashable, Tuple[Any, ...]]] = []
        ni_multi: List[Tuple[Hashable, Tuple[Any, ...]]] = []
        ni_opaque: List[Predicate] = []
        for ident in non_indexable:
            entry = residuals[ident]
            kind = entry[0]
            if kind == MULTI:
                ni_multi.append((ident, entry))
            elif kind == SINGLE:
                ni_single.append((ident, entry))
            elif kind == CLOSED:
                ni_closed.append(entry)
            elif kind == TRIVIAL:
                ni_trivial.append(entry[1])
            else:
                ni_opaque.append(entry[1])
        # With the memo disabled (the common case for low-repetition
        # batches) the non-indexable loops reduce to bare
        # ``check(value)`` calls over pre-extracted pairs.
        ni_single_fast = [(e[1], e[2], e[3]) for _, e in ni_single]
        ni_multi_fast = [(e[1], e[3]) for _, e in ni_multi]
        stab_items = list(stab_tables.items())
        memo: Dict[Tuple[Hashable, Any], bool] = {}
        memo_get = memo.get
        partial = full = memo_hits = 0
        results: List[List[Predicate]] = []
        for position, tup in enumerate(tuples):
            if position in fallback_set:
                # unbatchable value: the per-tuple path reports its own
                # route/stab/candidate/residual events for this tuple
                results.append(self.match(relation, tup))
                continue
            tup_get = tup.get
            row: List[Predicate] = []
            append = row.append
            # In the paper's single-clause scheme every predicate is
            # indexed under exactly one attribute, so the per-attribute
            # stabbed sets are disjoint: iterate them directly instead
            # of unioning into a per-tuple candidate set.
            if per_tuple is None:
                groups: List[Iterable[Hashable]] = []
                for attribute, table in stab_items:
                    value = tup_get(attribute)
                    if value is None:
                        continue
                    stabbed = table.get(value)
                    if stabbed:
                        partial += len(stabbed)
                        groups.append(stabbed)
            else:
                candidates = per_tuple[position]
                partial += len(candidates)
                groups = [candidates] if candidates else []
            for group in groups:
                for ident in group:
                    entry = residuals[ident]
                    kind = entry[0]
                    if kind == CLOSED:
                        # (kind, pred, attr, low, high): the dominant
                        # shape, inlined — a closure call per candidate
                        # would double the cost of this loop.  The test
                        # is rejection-style, like Interval.contains, so
                        # partially-ordered values (NaN) get the same
                        # verdict as on the per-tuple path; sentinels
                        # still fail (one bound comparison proves them
                        # outside any closed interval).
                        v = tup_get(entry[2])
                        try:
                            ok = v is not None and not (
                                v < entry[3] or v > entry[4]
                            )
                        except TypeError:
                            ok = False  # incomparable value
                        if ok:
                            append(entry[1])
                    elif kind == SINGLE:
                        # (kind, pred, attr, check, memo_ok)
                        v = tup_get(entry[2])
                        if memo_on and entry[4]:
                            key = (ident, v)
                            try:
                                verdict = memo_get(key)
                            except TypeError:
                                verdict = entry[3](v)  # unhashable value
                            else:
                                if verdict is None:
                                    verdict = memo[key] = entry[3](v)
                                else:
                                    memo_hits += 1
                            if verdict:
                                append(entry[1])
                        elif entry[3](v):
                            append(entry[1])
                    elif kind == TRIVIAL:
                        # every clause was proven by the index probes
                        append(entry[1])
                    elif kind == MULTI:
                        # (kind, pred, attrs, evaluate, memo_ok);
                        # evaluate fetches its own values, the
                        # projection tuple is built only as a memo key
                        if memo_on and entry[4]:
                            proj = tuple([tup_get(a) for a in entry[2]])
                            key = (ident, proj)
                            try:
                                verdict = memo_get(key)
                            except TypeError:
                                verdict = entry[3](tup_get)
                            else:
                                if verdict is None:
                                    verdict = memo[key] = entry[3](tup_get)
                                else:
                                    memo_hits += 1
                            if verdict:
                                append(entry[1])
                        elif entry[3](tup_get):
                            append(entry[1])
                    else:  # OPAQUE: unknown clause subclass
                        if entry[1].matches(tup):
                            append(entry[1])
            for entry in ni_closed:
                v = tup_get(entry[2])
                try:
                    ok = v is not None and not (v < entry[3] or v > entry[4])
                except TypeError:
                    ok = False
                if ok:
                    append(entry[1])
            if not memo_on:
                for predicate, attribute, check in ni_single_fast:
                    if check(tup_get(attribute)):
                        append(predicate)
                for predicate, evaluate in ni_multi_fast:
                    if evaluate(tup_get):
                        append(predicate)
            else:
                for ident, entry in ni_single:
                    v = tup_get(entry[2])
                    if entry[4]:
                        key = (ident, v)
                        try:
                            verdict = memo_get(key)
                        except TypeError:
                            verdict = entry[3](v)
                        else:
                            if verdict is None:
                                verdict = memo[key] = entry[3](v)
                            else:
                                memo_hits += 1
                        if verdict:
                            append(entry[1])
                    elif entry[3](v):
                        append(entry[1])
                for ident, entry in ni_multi:
                    if entry[4]:
                        proj = tuple([tup_get(a) for a in entry[2]])
                        key = (ident, proj)
                        try:
                            verdict = memo_get(key)
                        except TypeError:
                            verdict = entry[3](tup_get)
                        else:
                            if verdict is None:
                                verdict = memo[key] = entry[3](tup_get)
                            else:
                                memo_hits += 1
                        if verdict:
                            append(entry[1])
                    elif entry[3](tup_get):
                        append(entry[1])
            for predicate in ni_trivial:
                append(predicate)
            for predicate in ni_opaque:
                if predicate.matches(tup):
                    append(predicate)
            full += len(row)
            results.append(row)
        observer.on_candidates(
            relation, partial, len(non_indexable) * (len(tuples) - len(fallback_set))
        )
        observer.on_residual(relation, full, memo_hits)
        if self.adaptive and not self.catalog.multi_clause:
            feedback = self.feedback
            # fallback tuples already reported through the per-tuple
            # path's own adaptive hooks inside self.match
            feedback.observe_tuples(relation, len(tuples) - len(fallback_set))
            # candidate counts reconstructed from the stab tables: each
            # ident stabbed at a value was a candidate once per tuple
            # carrying that value
            for attribute, table in stab_tables.items():
                counts: Dict[Any, int] = {}
                for position, tup in enumerate(tuples):
                    if position in fallback_set:
                        continue
                    value = tup.get(attribute)
                    if value is not None:
                        counts[value] = counts.get(value, 0) + 1
                for value, stabbed in table.items():
                    if stabbed:
                        feedback.observe_candidates(stabbed, counts.get(value, 1))
        return results

    def _columnar_match_batch(
        self,
        relation: str,
        state: RelationState,
        tuples: List[Mapping[str, Any]],
    ) -> Optional[List[List[Predicate]]]:
        """Try the vectorized columnar plane; ``None`` means "use scalar".

        The plane is cached on ``state.columnar_plane`` keyed by the
        relation's mutation version: a mutable index rebuilds it after
        every catalog change, a frozen index builds it exactly once.
        The cache write is a single attribute assignment and every
        builder computes an equivalent plane, so concurrent readers of
        a frozen index race benignly.  No observer event fires unless
        the plane actually answers the batch — the scalar fallback
        must report a virgin stage sequence.

        Fallbacks chain through one seam: the plane bails (``None``)
        on out-of-domain values, the scalar batch takes over, and the
        scalar batch in turn routes only the individual tuples *it*
        cannot handle (unhashable or sentinel values) through the
        per-tuple path.  ``None``-valued and missing attributes are
        equivalent at every link (the NULL rule) and bail nothing.
        """
        from . import columnar

        if not columnar.HAVE_NUMPY:
            return None
        cached = state.columnar_plane
        if cached is not None and cached[0] == state.version:
            plane = cached[1]
        else:
            plane = columnar.build_relation_plane(state)
            state.columnar_plane = (state.version, plane)
        if plane is None:
            return None
        rows = plane.match_batch(tuples, self.observer, relation)
        if rows is not None and self.observer.wants_attribute_stabs:
            # same logical accounting as the scalar paths: one probe
            # per non-NULL value of an indexed attribute
            attr_counts: Dict[str, int] = {}
            for attribute in state.trees:
                count = sum(
                    1 for tup in tuples if tup.get(attribute) is not None
                )
                if count:
                    attr_counts[attribute] = count
            if attr_counts:
                self.observer.on_attribute_stabs(relation, attr_counts)
        return rows

    def _batch_stab_tables(
        self, state: RelationState, tuples: List[Mapping[str, Any]]
    ) -> Tuple[
        Dict[str, Dict[Any, Optional[Set[Hashable]]]],
        bool,
        int,
        int,
        int,
        List[int],
        Optional[Dict[str, int]],
    ]:
        """Stab each attribute tree once per distinct batch value.

        Returns ``(stab_tables, memo_on, probes, descents, cache_hits,
        fallback, attr_counts)``: per attribute a table ``value ->
        stabbed idents``
        (``None`` for incomparable values); whether the batch shows
        enough value repetition (>= 10% duplicates across indexed
        attributes) for the residual memo to pay for its bookkeeping;
        the stab-stage counts for the observer (*probes* is the logical
        per-tuple per-attribute probe count — identical to what the
        per-tuple path would report — while *descents* counts the
        grouped ``stab_many`` descents actually performed); and
        *fallback* — the positions of tuples the batch stages must not
        touch, in ascending order.

        A tuple lands in *fallback* when an indexed attribute holds an
        unhashable value — the per-value grouping, the stab tables and
        the residual memo all need to hash it — or an infinity
        sentinel, for which skipping the proven entry clause would be
        unsound (``clause.matches`` rejects sentinels that a tree stab
        may admit).  The caller routes those positions through the
        per-tuple path, which needs neither hashing nor the
        proven-entry shortcut; fallback tuples contribute nothing to
        the returned tables or counts.  ``None``-valued and *missing*
        attributes are **not** fallback cases: both mean "no probe" —
        the NULL rule, NULL matches no clause — on the per-tuple, the
        batched, and the columnar path alike, so such tuples stay
        batchable.  *attr_counts* is the per-attribute split of
        *probes* (the ``on_attribute_stabs`` payload), or ``None``
        when the observer does not want it.
        """
        trees = state.trees
        stab_tables: Dict[str, Dict[Any, Optional[Set[Hashable]]]] = {}
        track = self.observer.wants_attribute_stabs
        attr_counts: Optional[Dict[str, int]] = {} if track else None
        if not trees:
            return stab_tables, False, 0, 0, 0, [], attr_counts
        attributes = list(trees)
        by_attribute: Dict[str, Set[Any]] = {a: set() for a in attributes}
        fallback: List[int] = []
        total = distinct = 0
        for position, tup in enumerate(tuples):
            tup_get = tup.get
            staged: List[Tuple[str, Any]] = []
            batchable = True
            for attribute in attributes:
                value = tup_get(attribute)
                if value is None:
                    continue  # NULL rule: no probe, as on the per-tuple path
                if value is MINUS_INF or value is PLUS_INF:
                    batchable = False
                    break
                try:
                    hash(value)
                except TypeError:
                    batchable = False
                    break
                staged.append((attribute, value))
            if not batchable:
                fallback.append(position)
                continue
            total += len(staged)
            for attribute, value in staged:
                by_attribute[attribute].add(value)
                if attr_counts is not None:
                    attr_counts[attribute] = attr_counts.get(attribute, 0) + 1
        plans: List[Tuple[str, List[Any]]] = []
        for attribute in attributes:
            values = by_attribute[attribute]
            distinct += len(values)
            if not values:
                stab_tables[attribute] = {}
                continue
            try:
                ordered: List[Any] = sorted(values)
            except TypeError:
                ordered = list(values)  # mixed domains: order is just locality
            plans.append((attribute, ordered))
        cache_size = self.store.stab_cache_size
        cache: Any = state.stab_cache
        lru = self.store.cache_lru
        descents = cache_hits = 0
        for attribute, ordered in plans:
            tree = trees[attribute]
            epoch = getattr(tree, "epoch", None) if cache_size else None
            if epoch is None:
                # one grouped descent per tree per batch
                descents += 1
                stab_tables[attribute] = tree.stab_many(ordered)
                continue
            # answer cached values without touching the tree; stab the
            # misses in one grouped descent and remember them
            table: Dict[Any, Optional[Set[Hashable]]] = {}
            misses: List[Any] = []
            for value in ordered:
                key = (attribute, epoch, value)
                cached = cache.get(key)
                if cached is None:
                    misses.append(value)
                else:
                    if lru:
                        cache.move_to_end(key)
                    cache_hits += 1
                    table[value] = cached
            if misses:
                descents += 1
                for value, stabbed in tree.stab_many(misses).items():
                    table[value] = stabbed
                    if stabbed is not None:
                        if lru:
                            cache[(attribute, epoch, value)] = frozenset(stabbed)
                            if len(cache) > cache_size:
                                cache.popitem(last=False)
                        elif len(cache) < cache_size:
                            # frozen: append-only, never evict
                            cache[(attribute, epoch, value)] = frozenset(stabbed)
            stab_tables[attribute] = table
        memo_on = total > 0 and (total - distinct) * 10 >= total
        return stab_tables, memo_on, total, descents, cache_hits, fallback, attr_counts

    def _batch_intersect(
        self,
        state: RelationState,
        tuples: List[Mapping[str, Any]],
        stab_tables: Dict[str, Dict[Any, Optional[Set[Hashable]]]],
        fallback_set: "frozenset[int]",
    ) -> List[Set[Hashable]]:
        """Multi-clause fan-out: candidates hit in *every* indexed tree.

        Positions in *fallback_set* get an empty placeholder — the emit
        loop matches those tuples per-tuple and never reads the entry
        (their values may be unhashable, so the tables cannot answer
        them).
        """
        indexed_under = state.indexed_under
        out: List[Set[Hashable]] = []
        for position, tup in enumerate(tuples):
            if position in fallback_set:
                out.append(set())
                continue
            hits: Dict[Hashable, int] = {}
            probed: Set[str] = set()
            for attribute, table in stab_tables.items():
                value = tup.get(attribute)
                if value is None:
                    continue
                stabbed = table.get(value)
                if stabbed is None:
                    continue  # incomparable value: attribute not probed
                probed.add(attribute)
                for ident in stabbed:
                    hits[ident] = hits.get(ident, 0) + 1
            candidates: Set[Hashable] = set()
            for ident, count in hits.items():
                attributes = indexed_under[ident]
                if count == len(attributes) and all(a in probed for a in attributes):
                    candidates.add(ident)
            out.append(candidates)
        return out


# ----------------------------------------------------------------------
# epoch-snapshot merge (the concurrency read path)
# ----------------------------------------------------------------------
#
# A published EpochSnapshot is (base, overlay, removed, overlay_preds):
# a big frozen index, a small frozen index over the writes since the
# last compaction, the tombstoned idents, and the overlay's predicates
# in insertion order.  Matching against a snapshot is base results
# filtered through the tombstones, then overlay results appended in
# insertion order — a fixed order per snapshot, so concurrent and
# repeated calls agree exactly.  These functions are the single
# implementation of that merge; ``EpochSnapshot`` delegates to them, so
# the snapshot read path runs the same pipeline code as everything else
# (each frozen index's own match methods route through its
# MatchPipeline).


def snapshot_match(snapshot: Any, tup: Mapping[str, Any]) -> List[Predicate]:
    """All live predicates matching *tup*, deterministically ordered.

    Base matches come first (in the base index's order), overlay
    matches after (in insertion order).
    """
    removed = snapshot.removed
    results = [
        pred
        for pred in snapshot.base.match(snapshot.relation, tup)
        if pred.ident not in removed
    ]
    if snapshot.overlay is not None:
        overlay_hits = {
            pred.ident for pred in snapshot.overlay.match(snapshot.relation, tup)
        }
        results.extend(
            pred for pred in snapshot.overlay_preds if pred.ident in overlay_hits
        )
    return results


def snapshot_match_idents(snapshot: Any, tup: Mapping[str, Any]) -> Set[Hashable]:
    """Identifiers of all live predicates matching *tup*."""
    idents = {
        ident
        for ident in snapshot.base.match_idents(snapshot.relation, tup)
        if ident not in snapshot.removed
    }
    if snapshot.overlay is not None:
        idents.update(snapshot.overlay.match_idents(snapshot.relation, tup))
    return idents


def snapshot_match_batch(
    snapshot: Any,
    tuples: Iterable[Mapping[str, Any]],
    overlay_scan_limit: int = 8,
) -> List[List[Predicate]]:
    """Match several tuples against one epoch.

    Uses the underlying batched fast path on the base.  An overlay of
    at most *overlay_scan_limit* predicates is evaluated by a direct
    per-tuple scan instead — running the full batched pipeline (stab
    tables plus per-tuple assembly) over a second index costs more than
    testing a handful of predicates outright.  Results are per-tuple
    lists in the same deterministic order as :func:`snapshot_match`.
    """
    tuple_list = list(tuples)
    removed = snapshot.removed
    base_rows = snapshot.base.match_batch(snapshot.relation, tuple_list)
    if removed:
        rows: List[List[Predicate]] = [
            [pred for pred in row if pred.ident not in removed]
            for row in base_rows
        ]
    else:
        rows = [list(row) for row in base_rows]
    if snapshot.overlay is not None and snapshot.overlay_preds:
        if len(snapshot.overlay_preds) <= overlay_scan_limit:
            overlay_preds = snapshot.overlay_preds
            for tup, row in zip(tuple_list, rows):
                for pred in overlay_preds:
                    if pred.matches(tup):
                        row.append(pred)
        else:
            overlay_rows = snapshot.overlay.match_batch(
                snapshot.relation, tuple_list
            )
            for row, overlay_row in zip(rows, overlay_rows):
                if not overlay_row:
                    continue
                hits = {pred.ident for pred in overlay_row}
                row.extend(
                    pred
                    for pred in snapshot.overlay_preds
                    if pred.ident in hits
                )
    return rows
