"""Seeded scenario families for the backend auto-selection sweep.

:mod:`repro.workloads.generator` reproduces the paper's Section 5.2
micro-workload; this module synthesizes the *shapes* the paper's fixed
workload never exercises — the shapes that make per-attribute backend
choice matter:

``uniform-stabs``
    The paper's baseline: uniform predicates, uniform query points.
    A control row — every reasonable backend should price similarly.
``zipf-stabs``
    Query values drawn Zipf-fashion from a small hot set, so the stab
    cache and repeated-descent costs dominate.
``hot-attribute``
    Predicates spread over three attributes but ~85 % of stabs hit one
    of them — the case for *per-attribute* (not per-index) choice.
``churn-heavy``
    Adds and removes dominate reads; cheap insertion wins over
    balanced lookup.
``interval-dense``
    Long, heavily overlapping intervals: every stab traverses many
    containing intervals, stressing result collection.
``adversarial-unbalanced``
    Interval endpoints inserted in ascending order — the degeneration
    case of Section 4.2's unbalanced IBS-tree, where incremental
    insertion builds a linked list and only a balanced (or rebuilt)
    backend restores O(log N) stabs.  The showcase row for the
    auto-selector's live micro-probe.

Every family draws from its own ``random.Random(f"{family}:{seed}")``
instance — scenario generation never reads or perturbs the ambient
``random`` module state, and two scenarios with the same family and
seed are identical across processes and platforms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..core.intervals import Interval
from ..errors import WorkloadError
from ..predicates.clauses import EqualityClause, IntervalClause
from ..predicates.predicate import Predicate

__all__ = [
    "ScenarioSpec",
    "SyntheticScenario",
    "SCENARIO_FAMILIES",
    "scenario_names",
    "synthesize",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Size and shape knobs of one synthesized scenario.

    ``scaled`` produces a smaller or larger copy of the same scenario
    (used by the sweep's ``--quick`` mode); the family and seed — and
    therefore the workload's *shape* — are unchanged.
    """

    family: str
    seed: int = 0
    relation: str = "r"
    attributes: Tuple[str, ...] = ("a",)
    predicates: int = 400
    batches: int = 24
    batch_size: int = 64
    churn_ops: int = 0
    value_low: int = 1
    value_high: int = 10_000

    def scaled(self, factor: float) -> "ScenarioSpec":
        """The same scenario at *factor* times the size."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            predicates=max(8, round(self.predicates * factor)),
            batches=max(2, round(self.batches * factor)),
            churn_ops=round(self.churn_ops * factor),
        )


class SyntheticScenario:
    """One fully materialized scenario: predicates, batches, churn.

    Everything is generated eagerly in the constructor from a private
    ``random.Random`` seeded with ``f"{family}:{seed}"``, so instances
    are immutable-in-practice and deterministic.

    * :meth:`predicates` — the initial predicate set, idents ``0..n-1``;
    * :meth:`batches` — tuple batches for the read phase;
    * :meth:`churn` — ``("add", Predicate)`` / ``("remove", ident)``
      events applied between read batches (empty for read-only
      families).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        predicates: List[Predicate],
        batches: List[List[Dict[str, Any]]],
        churn: List[Tuple[str, Any]],
    ) -> None:
        self.spec = spec
        self._predicates = predicates
        self._batches = batches
        self._churn = churn

    @property
    def name(self) -> str:
        return self.spec.family

    def predicates(self) -> List[Predicate]:
        return list(self._predicates)

    def batches(self) -> List[List[Dict[str, Any]]]:
        return [list(batch) for batch in self._batches]

    def churn(self) -> List[Tuple[str, Any]]:
        return list(self._churn)

    def total_stabs(self) -> int:
        """Logical read volume: tuples across every batch."""
        return sum(len(batch) for batch in self._batches)

    def __repr__(self) -> str:
        return (
            f"<SyntheticScenario {self.name!r}: "
            f"{len(self._predicates)} predicates, "
            f"{len(self._batches)}x{self.spec.batch_size} batches, "
            f"{len(self._churn)} churn ops>"
        )


# ----------------------------------------------------------------------
# shared building blocks
# ----------------------------------------------------------------------


def _interval_predicate(
    spec: ScenarioSpec,
    rng: random.Random,
    ident: Hashable,
    attribute: str,
    point_fraction: float = 0.5,
    length_low: int = 1,
    length_high: int = 1_000,
) -> Predicate:
    start = rng.randint(spec.value_low, spec.value_high)
    if rng.random() < point_fraction:
        clause: Any = EqualityClause(attribute, start)
    else:
        length = rng.randint(length_low, length_high)
        clause = IntervalClause(attribute, Interval.closed(start, start + length))
    return Predicate(spec.relation, [clause], ident=ident)


def _uniform_batches(
    spec: ScenarioSpec,
    rng: random.Random,
    attributes: Optional[Tuple[str, ...]] = None,
) -> List[List[Dict[str, Any]]]:
    attrs = attributes if attributes is not None else spec.attributes
    return [
        [
            {attr: rng.randint(spec.value_low, spec.value_high) for attr in attrs}
            for _ in range(spec.batch_size)
        ]
        for _ in range(spec.batches)
    ]


def _zipf_values(
    rng: random.Random, spec: ScenarioSpec, hot: int = 64
) -> Tuple[List[int], List[float]]:
    """A hot value set with 1/rank weights (classic Zipf, s = 1)."""
    population = [
        rng.randint(spec.value_low, spec.value_high) for _ in range(hot)
    ]
    weights = [1.0 / rank for rank in range(1, hot + 1)]
    return population, weights


# ----------------------------------------------------------------------
# the families
# ----------------------------------------------------------------------


def _build_uniform(spec: ScenarioSpec) -> SyntheticScenario:
    rng = random.Random(f"{spec.family}:{spec.seed}")
    attr = spec.attributes[0]
    predicates = [
        _interval_predicate(spec, rng, i, attr) for i in range(spec.predicates)
    ]
    return SyntheticScenario(spec, predicates, _uniform_batches(spec, rng), [])


def _build_zipf(spec: ScenarioSpec) -> SyntheticScenario:
    rng = random.Random(f"{spec.family}:{spec.seed}")
    attr = spec.attributes[0]
    predicates = [
        _interval_predicate(spec, rng, i, attr) for i in range(spec.predicates)
    ]
    population, weights = _zipf_values(rng, spec)
    batches = [
        [
            {attr: value}
            for value in rng.choices(population, weights, k=spec.batch_size)
        ]
        for _ in range(spec.batches)
    ]
    return SyntheticScenario(spec, predicates, batches, [])


def _build_hot_attribute(spec: ScenarioSpec) -> SyntheticScenario:
    rng = random.Random(f"{spec.family}:{spec.seed}")
    attrs = spec.attributes
    predicates = [
        _interval_predicate(spec, rng, i, attrs[i % len(attrs)])
        for i in range(spec.predicates)
    ]
    hot = attrs[0]
    batches: List[List[Dict[str, Any]]] = []
    for _ in range(spec.batches):
        batch: List[Dict[str, Any]] = []
        for _ in range(spec.batch_size):
            if rng.random() < 0.85:
                batch.append({hot: rng.randint(spec.value_low, spec.value_high)})
            else:
                batch.append(
                    {
                        attr: rng.randint(spec.value_low, spec.value_high)
                        for attr in attrs[1:]
                    }
                )
        batches.append(batch)
    return SyntheticScenario(spec, predicates, batches, [])


def _build_churn(spec: ScenarioSpec) -> SyntheticScenario:
    rng = random.Random(f"{spec.family}:{spec.seed}")
    attr = spec.attributes[0]
    predicates = [
        _interval_predicate(spec, rng, i, attr) for i in range(spec.predicates)
    ]
    churn: List[Tuple[str, Any]] = []
    next_ident = spec.predicates
    live = list(range(spec.predicates))
    for _ in range(spec.churn_ops):
        if live and rng.random() < 0.5:
            victim = live.pop(rng.randrange(len(live)))
            churn.append(("remove", victim))
        else:
            churn.append(
                ("add", _interval_predicate(spec, rng, next_ident, attr))
            )
            live.append(next_ident)
            next_ident += 1
    return SyntheticScenario(spec, predicates, _uniform_batches(spec, rng), churn)


def _build_interval_dense(spec: ScenarioSpec) -> SyntheticScenario:
    rng = random.Random(f"{spec.family}:{spec.seed}")
    attr = spec.attributes[0]
    predicates = [
        _interval_predicate(
            spec,
            rng,
            i,
            attr,
            point_fraction=0.0,
            length_low=max(1, (spec.value_high - spec.value_low) // 20),
            length_high=max(2, (spec.value_high - spec.value_low) // 4),
        )
        for i in range(spec.predicates)
    ]
    return SyntheticScenario(spec, predicates, _uniform_batches(spec, rng), [])


def _build_adversarial(spec: ScenarioSpec) -> SyntheticScenario:
    rng = random.Random(f"{spec.family}:{spec.seed}")
    attr = spec.attributes[0]
    # strictly ascending endpoints, inserted in order: incremental
    # insertion into the paper's unbalanced IBS-tree builds a path
    step = 7
    predicates = [
        Predicate(
            spec.relation,
            [
                IntervalClause(
                    attr,
                    Interval.closed(
                        spec.value_low + i * step,
                        spec.value_low + i * step + rng.randint(1, step - 2),
                    ),
                )
            ],
            ident=i,
        )
        for i in range(spec.predicates)
    ]
    high = spec.value_low + spec.predicates * step
    batches = [
        [
            {attr: rng.randint(spec.value_low, high)}
            for _ in range(spec.batch_size)
        ]
        for _ in range(spec.batches)
    ]
    return SyntheticScenario(spec, predicates, batches, [])


#: family name -> (builder, default spec overrides)
SCENARIO_FAMILIES: Dict[
    str, Tuple[Callable[[ScenarioSpec], SyntheticScenario], Dict[str, Any]]
] = {
    "uniform-stabs": (_build_uniform, {}),
    "zipf-stabs": (_build_zipf, {}),
    "hot-attribute": (_build_hot_attribute, {"attributes": ("a", "b", "c")}),
    "churn-heavy": (_build_churn, {"churn_ops": 400, "batches": 8}),
    "interval-dense": (_build_interval_dense, {"predicates": 300}),
    "adversarial-unbalanced": (_build_adversarial, {"predicates": 600}),
}


def scenario_names() -> List[str]:
    """Registered family names, in registration order."""
    return list(SCENARIO_FAMILIES)


def synthesize(
    family: str,
    seed: int = 0,
    scale: float = 1.0,
    **overrides: Any,
) -> SyntheticScenario:
    """Build the *family* scenario at *seed*, optionally rescaled.

    *overrides* replace :class:`ScenarioSpec` fields (e.g.
    ``predicates=2_000``) after the family's own defaults are applied;
    unknown fields raise.  The same ``(family, seed, scale,
    overrides)`` always yields an identical scenario.
    """
    try:
        builder, defaults = SCENARIO_FAMILIES[family]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario family {family!r}; registered: "
            f"{', '.join(SCENARIO_FAMILIES)}"
        ) from None
    fields: Dict[str, Any] = {"family": family, "seed": seed}
    fields.update(defaults)
    fields.update(overrides)
    try:
        spec = ScenarioSpec(**fields)
    except TypeError as exc:
        raise WorkloadError(f"bad scenario override: {exc}") from None
    if scale != 1.0:
        spec = spec.scaled(scale)
    return builder(spec)
