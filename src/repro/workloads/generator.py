"""Workload generators reproducing the paper's experimental setup.

Section 5.2 of the paper describes the micro-benchmark workload::

    A series of IBS trees were created which contained N predicates for
    N between 0 and 1,000.  A fraction a of predicates were simple
    points of the form attribute = constant, and the remaining fraction
    1 - a were closed intervals.  The points and interval boundaries
    were drawn randomly from a uniform distribution of integers between
    1 and 10,000.  The length of the intervals was drawn randomly from
    a uniform distribution of integers between 1 and 1,000.

:class:`IntervalWorkload` generates exactly that, plus the query points
(uniform over the same domain).  :class:`ScenarioWorkload` generates
the full-index scenario of the Section 5.2 cost analysis: relations
with 15 attributes, a third of them carrying predicate clauses, 90 %
indexable predicates, two clauses per predicate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.intervals import Interval
from ..errors import WorkloadError
from ..predicates.clauses import (
    EqualityClause,
    FunctionClause,
    IntervalClause,
)
from ..predicates.predicate import Predicate

__all__ = [
    "IntervalWorkload",
    "ScenarioConfig",
    "ScenarioWorkload",
    "non_indexable_probe",
]


def non_indexable_probe(value: Any) -> bool:
    """The opaque function used for generated non-indexable clauses.

    Mirrors the paper's ``IsOdd`` example: cheap, deterministic, and
    opaque to the indexing layer.
    """
    return value % 2 == 1


class IntervalWorkload:
    """The Figures 7–9 micro-workload: points and closed intervals.

    Parameters mirror the paper: *point_fraction* is the ``a``
    parameter; values are uniform integers on
    ``[value_low, value_high]`` and interval lengths uniform integers
    on ``[length_low, length_high]``.
    """

    def __init__(
        self,
        point_fraction: float = 0.5,
        value_low: int = 1,
        value_high: int = 10_000,
        length_low: int = 1,
        length_high: int = 1_000,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= point_fraction <= 1.0:
            raise WorkloadError(f"point_fraction must be in [0, 1], got {point_fraction}")
        if value_low > value_high:
            raise WorkloadError("value_low exceeds value_high")
        if length_low > length_high:
            raise WorkloadError("length_low exceeds length_high")
        self.point_fraction = point_fraction
        self.value_low = value_low
        self.value_high = value_high
        self.length_low = length_low
        self.length_high = length_high
        self._rng = random.Random(seed)

    def interval(self) -> Interval:
        """One random predicate interval (point with probability ``a``)."""
        rng = self._rng
        start = rng.randint(self.value_low, self.value_high)
        if rng.random() < self.point_fraction:
            return Interval.point(start)
        length = rng.randint(self.length_low, self.length_high)
        return Interval.closed(start, start + length)

    def intervals(self, n: int) -> List[Interval]:
        """A list of *n* random intervals."""
        return [self.interval() for _ in range(n)]

    def disjoint_intervals(self, n: int, gap: int = 2) -> List[Interval]:
        """*n* pairwise-disjoint closed intervals (for the SPACE experiment).

        Lengths follow the configured distribution; consecutive
        intervals are separated by at least *gap*.  The returned list
        is shuffled so inserting it in order keeps an unbalanced tree
        balanced (sorted insertion would degenerate it to a path —
        that adversarial case is exercised separately by ABL2).
        """
        rng = self._rng
        intervals: List[Interval] = []
        cursor = self.value_low
        for _ in range(n):
            length = rng.randint(self.length_low, self.length_high)
            intervals.append(Interval.closed(cursor, cursor + length))
            cursor += length + gap
        rng.shuffle(intervals)
        return intervals

    def query_point(self) -> int:
        """One random query value, uniform over the value domain."""
        return self._rng.randint(self.value_low, self.value_high)

    def query_points(self, n: int) -> List[int]:
        """A list of *n* random query values."""
        return [self.query_point() for _ in range(n)]

    def predicates(
        self, n: int, relation: str = "r", attribute: str = "attr"
    ) -> List[Predicate]:
        """The same workload wrapped as single-clause predicates."""
        result: List[Predicate] = []
        for interval in self.intervals(n):
            if interval.is_point:
                clause = EqualityClause(attribute, interval.low)
            else:
                clause = IntervalClause(attribute, interval)
            result.append(Predicate(relation, [clause]))
        return result


@dataclass
class ScenarioConfig:
    """Parameters of the Section 5.2 full-index scenario.

    Defaults are the paper's stated assumptions:

    * 15 attributes per relation;
    * one third of the attributes carry one or more predicate clauses;
    * 90 % of predicates are indexable;
    * 2 clauses per predicate;
    * 200 predicates per relation;
    * clause selectivity around 0.1 (each clause matches ~10 % of the
      value domain).
    """

    relations: int = 1
    attributes_per_relation: int = 15
    predicate_attr_fraction: float = 1.0 / 3.0
    predicates_per_relation: int = 200
    clauses_per_predicate: int = 2
    indexable_fraction: float = 0.9
    clause_selectivity: float = 0.1
    value_low: int = 1
    value_high: int = 10_000
    tuple_null_fraction: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.relations < 1:
            raise WorkloadError("need at least one relation")
        if not 0 < self.predicate_attr_fraction <= 1:
            raise WorkloadError("predicate_attr_fraction must be in (0, 1]")
        if not 0 <= self.indexable_fraction <= 1:
            raise WorkloadError("indexable_fraction must be in [0, 1]")
        if self.clauses_per_predicate < 1:
            raise WorkloadError("need at least one clause per predicate")
        if not 0 < self.clause_selectivity <= 1:
            raise WorkloadError("clause_selectivity must be in (0, 1]")


class ScenarioWorkload:
    """End-to-end workload: relations, predicates, and tuple streams.

    Used by the COST and E2E experiments.  Relations are named
    ``r0 .. r<k>``; attributes ``a0 .. a14``.  Predicates restrict
    attributes drawn from the designated "predicate attributes" of
    their relation, with interval widths set so each clause matches
    about ``clause_selectivity`` of the uniform value domain.
    """

    def __init__(self, config: Optional[ScenarioConfig] = None):
        self.config = config or ScenarioConfig()
        self._rng = random.Random(self.config.seed)
        cfg = self.config
        self.relation_names = [f"r{k}" for k in range(cfg.relations)]
        self.attribute_names = [f"a{k}" for k in range(cfg.attributes_per_relation)]
        n_predicate_attrs = max(
            1, round(cfg.attributes_per_relation * cfg.predicate_attr_fraction)
        )
        self.predicate_attributes = self.attribute_names[:n_predicate_attrs]

    # -- predicates ------------------------------------------------------

    def predicate(self, relation: str) -> Predicate:
        """One random conjunctive predicate for *relation*."""
        cfg = self.config
        rng = self._rng
        indexable = rng.random() < cfg.indexable_fraction
        attrs = rng.sample(
            self.predicate_attributes,
            k=min(cfg.clauses_per_predicate, len(self.predicate_attributes)),
        )
        clauses = []
        for position, attr in enumerate(attrs):
            if not indexable:
                clauses.append(
                    FunctionClause(attr, non_indexable_probe, name="is_odd")
                )
                continue
            clauses.append(self._interval_clause(attr))
        return Predicate(relation, clauses)

    def _interval_clause(self, attr: str) -> IntervalClause:
        cfg = self.config
        rng = self._rng
        domain_span = cfg.value_high - cfg.value_low + 1
        width = max(1, round(domain_span * cfg.clause_selectivity))
        if width == 1:
            return EqualityClause(attr, rng.randint(cfg.value_low, cfg.value_high))
        start = rng.randint(cfg.value_low, cfg.value_high)
        return IntervalClause(attr, Interval.closed(start, start + width - 1))

    def predicates(self) -> Dict[str, List[Predicate]]:
        """All predicates, keyed by relation."""
        return {
            relation: [
                self.predicate(relation)
                for _ in range(self.config.predicates_per_relation)
            ]
            for relation in self.relation_names
        }

    # -- tuples ------------------------------------------------------------

    def tuple(self) -> Dict[str, Any]:
        """One random tuple over the attribute schema."""
        cfg = self.config
        rng = self._rng
        tup: Dict[str, Any] = {}
        for attr in self.attribute_names:
            if cfg.tuple_null_fraction and rng.random() < cfg.tuple_null_fraction:
                tup[attr] = None
            else:
                tup[attr] = rng.randint(cfg.value_low, cfg.value_high)
        return tup

    def tuples(self, n: int) -> List[Dict[str, Any]]:
        """A list of *n* random tuples."""
        return [self.tuple() for _ in range(n)]

    def events(self, n: int) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """A stream of ``(relation, tuple)`` insert events."""
        rng = self._rng
        for _ in range(n):
            yield rng.choice(self.relation_names), self.tuple()
