"""Example schemas drawn from the paper's running examples.

* :func:`emp_schema` — the ``EMP(name, age, salary, dept)`` relation of
  the paper's Section 1 examples;
* :func:`grocery_schema` — the grocery-store stock-reorder application
  of Section 3, used to demonstrate the "few rules + data table"
  design the paper recommends over one-rule-per-item;
* :func:`wide_schema` — an n-attribute relation matching the paper's
  observation that real relations commonly have 5–25 attributes.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional

from ..db.database import Database
from ..db.types import INTEGER, NUMBER, STRING

__all__ = [
    "emp_schema",
    "grocery_schema",
    "wide_schema",
    "random_emp",
    "random_item",
    "DEPARTMENTS",
    "JOBS",
]

DEPARTMENTS = ["Shoe", "Toy", "Grocery", "Hardware", "Pharmacy", "Garden"]
JOBS = ["Salesperson", "Manager", "Cashier", "Stocker", "Buyer"]

_FIRST_NAMES = [
    "Alex", "Brook", "Casey", "Drew", "Emery", "Flynn", "Gray", "Harper",
    "Indra", "Jules", "Kiran", "Lee", "Morgan", "Noor", "Oak", "Parker",
]


def emp_schema(db: Database) -> None:
    """Create the paper's EMP relation (plus a job attribute used in
    the Section 1 examples)."""
    db.create_relation(
        "emp",
        [
            ("name", STRING),
            ("age", INTEGER),
            ("salary", NUMBER),
            ("dept", STRING),
            ("job", STRING),
        ],
    )


def grocery_schema(db: Database) -> None:
    """Create the Section 3 grocery relations: items and reorder log.

    ``items`` carries the per-item re-order threshold as *data* — the
    paper's recommended design, where a single rule compares
    ``stock`` to ``reorder_level`` instead of one rule per item.
    """
    db.create_relation(
        "items",
        [
            ("item", STRING),
            ("stock", INTEGER),
            ("reorder_level", INTEGER),
            ("reorder_qty", INTEGER),
            ("price", NUMBER),
        ],
    )
    db.create_relation(
        "orders",
        [
            ("item", STRING),
            ("qty", INTEGER),
            ("status", STRING),
        ],
    )


def wide_schema(db: Database, name: str = "wide", attributes: int = 15) -> None:
    """Create an n-attribute integer relation (default: the paper's 15)."""
    db.create_relation(name, [(f"a{k}", INTEGER) for k in range(attributes)])


def random_emp(rng: random.Random) -> Dict[str, Any]:
    """One random EMP tuple."""
    return {
        "name": f"{rng.choice(_FIRST_NAMES)}-{rng.randint(1, 9999)}",
        "age": rng.randint(18, 70),
        "salary": rng.randint(8_000, 90_000),
        "dept": rng.choice(DEPARTMENTS),
        "job": rng.choice(JOBS),
    }


def random_item(rng: random.Random, item_id: int) -> Dict[str, Any]:
    """One random grocery item tuple."""
    reorder = rng.randint(5, 50)
    return {
        "item": f"sku-{item_id:05d}",
        "stock": rng.randint(0, 200),
        "reorder_level": reorder,
        "reorder_qty": reorder * rng.randint(2, 5),
        "price": round(rng.uniform(0.5, 40.0), 2),
    }
