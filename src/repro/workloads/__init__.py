"""Workload generators for experiments and examples."""

from .generator import (
    IntervalWorkload,
    ScenarioConfig,
    ScenarioWorkload,
    non_indexable_probe,
)
from .scenarios import (
    SCENARIO_FAMILIES,
    ScenarioSpec,
    SyntheticScenario,
    scenario_names,
    synthesize,
)
from .schemas import (
    DEPARTMENTS,
    JOBS,
    emp_schema,
    grocery_schema,
    random_emp,
    random_item,
    wide_schema,
)

__all__ = [
    "IntervalWorkload",
    "ScenarioConfig",
    "ScenarioWorkload",
    "non_indexable_probe",
    "ScenarioSpec",
    "SyntheticScenario",
    "SCENARIO_FAMILIES",
    "scenario_names",
    "synthesize",
    "emp_schema",
    "grocery_schema",
    "wide_schema",
    "random_emp",
    "random_item",
    "DEPARTMENTS",
    "JOBS",
]
