"""``python -m repro`` — package info and a 30-second demo.

Subcommands::

    python -m repro                   # version, inventory, pointers
    python -m repro demo              # run the quickstart demo inline
    python -m repro bench             # run every paper experiment (slow)
    python -m repro backends          # list registered backends and matchers
    python -m repro describe NAME     # capability card for one backend/matcher
    python -m repro tune              # calibrated cost table + per-scenario
                                      # auto-selection picks (--quick, --seed N)
    python -m repro segments DIR      # list a disk tier's segment files,
                                      # verifying every checksum
    python -m repro maintenance       # play a scenario through the unified
                                      # maintenance scheduler and print its
                                      # task table (--quick, --seed N)
"""

from __future__ import annotations

import sys

from . import __version__


def _info() -> None:
    from . import __all__ as exported

    print(f"repro {__version__}")
    print(
        "Reproduction of Hanson et al., 'A Predicate Matching Algorithm "
        "for Database Rule Systems' (SIGMOD 1990)."
    )
    print(f"public API: {len(exported)} names (see `import repro; help(repro)`)")
    print()
    print("try:")
    print("  python -m repro demo        # quick inline demo")
    print("  python -m repro bench       # regenerate every paper experiment")
    print("  python examples/quickstart.py")
    print("  pytest tests/  |  pytest benchmarks/ --benchmark-only")


def _demo() -> None:
    from .core import IBSTree, Interval
    from .db import Database
    from .rules import RuleEngine

    print("IBS-tree stabbing queries:")
    tree = IBSTree()
    tree.insert(Interval.closed(9, 19), "A")
    tree.insert(Interval.closed_open(2, 7), "B")
    tree.insert(Interval.at_most(17), "G")
    for x in (5, 12, 18):
        print(f"  stab({x}) = {sorted(tree.stab(x))}")

    print("\nrule engine:")
    db = Database()
    db.create_relation("emp", ["name", "salary"])
    engine = RuleEngine(db)
    engine.create_rule(
        "well_paid",
        on="emp",
        condition="20000 <= salary <= 30000",
        action=lambda ctx: print(f"  fired for {ctx.tuple['name']}"),
    )
    db.insert("emp", {"name": "Lee", "salary": 25000})
    db.insert("emp", {"name": "Kim", "salary": 5000})
    print(f"  explain: {engine.explain('emp', {'name': 'X', 'salary': 25000})}")


def _backends() -> None:
    from .match.registry import DEFAULT_REGISTRY

    names = DEFAULT_REGISTRY.tree_backends()
    width = max(len(name) for name in names)
    print(f"tree backends ({len(names)}):")
    for name in names:
        info = DEFAULT_REGISTRY.describe_backend(name)
        print(f"  {name:<{width}}  {info['description']}")
    matchers = DEFAULT_REGISTRY.matchers()
    width = max(len(name) for name in matchers)
    print(f"\nmatchers ({len(matchers)}):")
    for name in matchers:
        info = DEFAULT_REGISTRY.describe_matcher(name)
        flags = "".join(
            f" [{flag}]" for flag, value in info["capabilities"].items() if value
        )
        print(f"  {name:<{width}}  {info['description']}{flags}")
    print("\nuse `python -m repro describe NAME` for capability details")


def _describe(name: str) -> int:
    from .errors import RegistryError
    from .match.registry import DEFAULT_REGISTRY

    found = False
    try:
        info = DEFAULT_REGISTRY.describe_backend(name)
    except RegistryError:
        pass
    else:
        found = True
        print(f"tree backend {name!r}")
        print(f"  factory:     {info['factory']}")
        print(f"  description: {info['description']}")
        print("  capabilities:")
        for key, value in info.items():
            if key.startswith("supports_"):
                print(f"    {key:<24} {'yes' if value else 'no'}")
    try:
        info = DEFAULT_REGISTRY.describe_matcher(name)
    except RegistryError:
        pass
    else:
        if found:
            print()
        found = True
        print(f"matcher {name!r}")
        print(f"  builder:     {info['builder']}")
        print(f"  description: {info['description']}")
        if info["capabilities"]:
            print("  capabilities:")
            for key, value in sorted(info["capabilities"].items()):
                print(f"    {key:<24} {value}")
        if info["capabilities"].get("requires_numpy"):
            from .match.columnar import HAVE_NUMPY

            if HAVE_NUMPY:
                print("  numpy:       available (vectorized path active)")
            else:
                print(
                    "  numpy:       NOT INSTALLED — the matcher still works,\n"
                    "               but batch matching falls back to the scalar\n"
                    "               pipeline; install the [columnar] extra to\n"
                    "               enable the vectorized path"
                )
    if not found:
        print(
            f"unknown backend or matcher {name!r}; "
            "run `python -m repro backends` for the list",
            file=sys.stderr,
        )
        return 2
    return 0


def _tune(arguments: list) -> int:
    """Calibrate the cost model and show the selector's would-be picks.

    Nothing outside this process is modified: each scenario is played
    against a throwaway ``PredicateIndex(auto_backend=True)`` and the
    selector's decisions (including "kept" verdicts) are printed with
    their pricing rationale.
    """
    quick = "--quick" in arguments
    seed = 42
    if "--seed" in arguments:
        try:
            seed = int(arguments[arguments.index("--seed") + 1])
        except (IndexError, ValueError):
            print(
                "usage: python -m repro tune [--quick] [--seed N]",
                file=sys.stderr,
            )
            return 2
    from .bench.cost_model import calibrate_backends
    from .core.predicate_index import PredicateIndex
    from .workloads.scenarios import scenario_names, synthesize

    if quick:
        table = calibrate_backends(seed=seed, samples=60, sizes=(16, 128))
    else:
        table = calibrate_backends(seed=seed)
    print("calibrated backend costs (ms; cost(n) = base + log * log2(n)):")
    width = max(len(name) for name in table.backends())
    for backend in table.backends():
        model = table.model(backend)
        print(
            f"  {backend:<{width}}  "
            f"stab {model.stab_base_ms:.6f} + {model.stab_log_ms:.6f}*log2(n)"
            f"   insert {model.insert_base_ms:.6f} + "
            f"{model.insert_log_ms:.6f}*log2(n)"
            f"   stab@1000 {table.stab_ms(backend, 1000) * 1e3:.2f}us"
        )
    print()
    scale = 0.25 if quick else 1.0
    print(
        f"per-attribute picks on the synthesized scenarios "
        f"(seed {seed}, scale {scale:g}):"
    )
    for family in scenario_names():
        scenario = synthesize(family, seed=seed, scale=scale)
        relation = scenario.spec.relation
        index = PredicateIndex(
            auto_backend=True, auto_cost_table=table, min_evidence_ops=32
        )
        for predicate in scenario.predicates():
            index.add(predicate)
        for op, payload in scenario.churn():
            if op == "add":
                index.add(payload)
            else:
                index.remove(payload)
        for batch in scenario.batches():
            index.match_batch(relation, batch)
        decisions = index.autoselect()
        print(f"  {family}:")
        for decision in decisions:
            print(
                f"    {decision.relation}.{decision.attribute}: "
                f"{decision.current_backend} -> {decision.chosen_backend}"
                f"  ({decision.reason})"
            )
        if not decisions:
            print("    (no attribute cleared the evidence floor)")
        print(f"    live backends: {index.attribute_backends(relation)}")
    return 0


def _maintenance(arguments: list) -> int:
    """Drive the unified maintenance scheduler over a synthetic workload.

    Builds one adaptive, auto-selecting ``PredicateIndex`` per scenario
    family with a :class:`~repro.maintenance.MaintenancePolicy`, plays
    the family's churn and batches (every write and matched tuple ticks
    the clock), then prints the scheduler's task table — runs, failures,
    next-due op — and the dead-letter queue, mirroring
    ``maintenance_report()``.
    """
    quick = "--quick" in arguments
    seed = 42
    if "--seed" in arguments:
        try:
            seed = int(arguments[arguments.index("--seed") + 1])
        except (IndexError, ValueError):
            print(
                "usage: python -m repro maintenance [--quick] [--seed N]",
                file=sys.stderr,
            )
            return 2
    from .core.predicate_index import PredicateIndex
    from .maintenance import MaintenancePolicy
    from .workloads.scenarios import scenario_names, synthesize

    scale = 0.25 if quick else 1.0
    policy = MaintenancePolicy(
        retune_interval=64,
        autoselect_interval=256,
        quarantine_failures=3,
    )
    print(
        f"unified maintenance plane over the synthesized scenarios "
        f"(seed {seed}, scale {scale:g}):"
    )
    print(f"  policy: {policy.as_dict()}")
    for family in scenario_names():
        scenario = synthesize(family, seed=seed, scale=scale)
        relation = scenario.spec.relation
        index = PredicateIndex(
            adaptive=True,
            min_feedback_tuples=16,
            auto_backend=True,
            min_evidence_ops=32,
            maintenance=policy,
        )
        for predicate in scenario.predicates():
            index.add(predicate)
        for op, payload in scenario.churn():
            if op == "add":
                index.add(payload)
            else:
                index.remove(payload)
        for batch in scenario.batches():
            index.match_batch(relation, batch)
        report = index.maintenance_report()
        print(f"  {family}: clock_ops={report['clock_ops']}")
        for name, state in sorted(report["tasks"].items()):
            line = (
                f"    {name:<12} runs={state['runs']}"
                f" failures={state['failures']}"
                f" next_due_ops={state['next_due_ops']}"
            )
            if state["quarantined"]:
                line += "  QUARANTINED"
            print(line)
        for failure in report["failures"]:
            print(f"    dead-letter: {failure}")
    return 0


def _segments(data_dir: str) -> int:
    """List every segment file under *data_dir* with checksum verification.

    Walks ``data_dir`` for ``*.seg`` files, opens each with a full
    payload-CRC verify, and prints one line per segment.  Exit status:
    0 when every segment verifies, 1 when any is corrupt or unreadable.
    """
    import os

    from .disk.segment import SEGMENT_SUFFIX, SegmentReader
    from .errors import CorruptSegmentError

    if not os.path.isdir(data_dir):
        print(f"not a directory: {data_dir}", file=sys.stderr)
        return 2
    paths = []
    for root, _dirs, files in os.walk(data_dir):
        for name in sorted(files):
            if name.endswith(SEGMENT_SUFFIX):
                paths.append(os.path.join(root, name))
    paths.sort()
    if not paths:
        print(f"no segment files under {data_dir}")
        return 0
    bad = 0
    for path in paths:
        rel = os.path.relpath(path, data_dir)
        try:
            reader = SegmentReader(path)
            try:
                reader.verify()
                print(
                    f"  ok       {rel}  {reader.relation}.{reader.attribute}"
                    f"  epoch={reader.epoch} intervals={reader.count}"
                    f" crc={reader.payload_crc:08x}"
                )
            finally:
                reader.close()
        except (CorruptSegmentError, OSError) as exc:
            bad += 1
            print(f"  CORRUPT  {rel}  {exc}")
    print(f"{len(paths)} segment(s), {bad} corrupt")
    return 1 if bad else 0


def main(argv: list) -> int:
    command = argv[1] if len(argv) > 1 else "info"
    if command == "info":
        _info()
    elif command == "demo":
        _demo()
    elif command == "bench":
        from .bench.runner import main as bench_main

        bench_main()
    elif command == "backends":
        _backends()
    elif command == "describe":
        if len(argv) < 3:
            print("usage: python -m repro describe NAME", file=sys.stderr)
            return 2
        return _describe(argv[2])
    elif command == "tune":
        return _tune(argv[2:])
    elif command == "segments":
        if len(argv) < 3:
            print("usage: python -m repro segments DATA_DIR", file=sys.stderr)
            return 2
        return _segments(argv[2])
    elif command == "maintenance":
        return _maintenance(argv[2:])
    else:
        print(
            f"unknown command {command!r}; "
            "use: info | demo | bench | backends | describe | tune | "
            "segments | maintenance",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
