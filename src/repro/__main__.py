"""``python -m repro`` — package info and a 30-second demo.

Subcommands::

    python -m repro            # version, inventory, pointers
    python -m repro demo       # run the quickstart demo inline
    python -m repro bench      # run every paper experiment (slow)
"""

from __future__ import annotations

import sys

from . import __version__


def _info() -> None:
    from . import __all__ as exported

    print(f"repro {__version__}")
    print(
        "Reproduction of Hanson et al., 'A Predicate Matching Algorithm "
        "for Database Rule Systems' (SIGMOD 1990)."
    )
    print(f"public API: {len(exported)} names (see `import repro; help(repro)`)")
    print()
    print("try:")
    print("  python -m repro demo        # quick inline demo")
    print("  python -m repro bench       # regenerate every paper experiment")
    print("  python examples/quickstart.py")
    print("  pytest tests/  |  pytest benchmarks/ --benchmark-only")


def _demo() -> None:
    from .core import IBSTree, Interval
    from .db import Database
    from .rules import RuleEngine

    print("IBS-tree stabbing queries:")
    tree = IBSTree()
    tree.insert(Interval.closed(9, 19), "A")
    tree.insert(Interval.closed_open(2, 7), "B")
    tree.insert(Interval.at_most(17), "G")
    for x in (5, 12, 18):
        print(f"  stab({x}) = {sorted(tree.stab(x))}")

    print("\nrule engine:")
    db = Database()
    db.create_relation("emp", ["name", "salary"])
    engine = RuleEngine(db)
    engine.create_rule(
        "well_paid",
        on="emp",
        condition="20000 <= salary <= 30000",
        action=lambda ctx: print(f"  fired for {ctx.tuple['name']}"),
    )
    db.insert("emp", {"name": "Lee", "salary": 25000})
    db.insert("emp", {"name": "Kim", "salary": 5000})
    print(f"  explain: {engine.explain('emp', {'name': 'X', 'salary': 25000})}")


def main(argv: list) -> int:
    command = argv[1] if len(argv) > 1 else "info"
    if command == "info":
        _info()
    elif command == "demo":
        _demo()
    elif command == "bench":
        from .bench.runner import main as bench_main

        bench_main()
    else:
        print(f"unknown command {command!r}; use: info | demo | bench", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
