"""Compile condition ASTs into predicate groups.

The paper assumes "any predicate containing a disjunction is broken up
into two or more predicates that do not have disjunction, and these
predicates are treated separately".  This module performs that
normalization:

1. **lowering** — comparison chains become conjunctions of binary
   constraints; ``<>`` and negation expand into complementary ranges;
   opaque functions resolve against a caller-supplied registry;
2. **DNF conversion** — ``and`` distributes over ``or``;
3. **clause extraction** — each DNF conjunct becomes one
   :class:`~repro.predicates.Predicate`, with same-attribute interval
   clauses intersected and contradictory conjuncts dropped.

The result is a :class:`~repro.predicates.PredicateGroup`: the original
condition matches a tuple iff any member predicate does.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ParseError
from ..core.intervals import Interval
from ..predicates.clauses import (
    Clause,
    EqualityClause,
    FunctionClause,
    IntervalClause,
)
from ..predicates.predicate import Predicate, PredicateGroup, _Contradiction, normalize_clauses
from .ast_nodes import (
    AndNode,
    ComparisonNode,
    FunctionNode,
    LikeNode,
    LiteralNode,
    Node,
    NotNode,
    OrNode,
)
from .parser import parse_condition

__all__ = [
    "compile_condition",
    "compile_ast",
    "CompiledCondition",
    "MAX_DNF_CONJUNCTS",
]

#: Safety valve: conditions whose DNF exceeds this many conjuncts are
#: rejected rather than silently exploding memory.
MAX_DNF_CONJUNCTS = 4096

FunctionRegistry = Mapping[str, Callable[[Any], bool]]


class CompiledCondition:
    """The result of compiling a condition string.

    Attributes
    ----------
    group:
        The :class:`~repro.predicates.PredicateGroup` implementing the
        condition (empty when the condition is unsatisfiable).
    always_true:
        True when the condition matches every tuple of the relation
        (e.g. the literal ``true``); the group then holds one
        clause-free predicate.
    source:
        The original condition text.
    """

    __slots__ = ("group", "always_true", "source")

    def __init__(self, group: PredicateGroup, always_true: bool, source: str):
        self.group = group
        self.always_true = always_true
        self.source = source

    def matches(self, tup: Mapping[str, Any]) -> bool:
        """Evaluate the compiled condition against a tuple."""
        return self.group.matches(tup)

    def __repr__(self) -> str:
        return f"<CompiledCondition {self.source!r} -> {self.group}>"


def compile_condition(
    relation: str,
    text: str,
    functions: Optional[FunctionRegistry] = None,
) -> CompiledCondition:
    """Compile a single-relation selection condition.

    Parameters
    ----------
    relation:
        The relation the condition applies to.  Qualified attribute
        references (``emp.salary``) must use this relation name.
    text:
        The condition source, e.g.
        ``'salary < 20000 and age > 50'``.
    functions:
        Registry of opaque boolean functions by (case-insensitive)
        name, e.g. ``{"isodd": lambda x: x % 2 == 1}``.

    Raises :class:`~repro.errors.ParseError` on malformed input,
    unknown functions, attribute-to-attribute comparisons, or a DNF
    explosion beyond :data:`MAX_DNF_CONJUNCTS`.
    """
    return compile_ast(relation, parse_condition(text), functions, source=text)


def compile_ast(
    relation: str,
    ast: Node,
    functions: Optional[FunctionRegistry] = None,
    source: str = "",
) -> CompiledCondition:
    """Compile an already-parsed condition AST (see :func:`compile_condition`).

    Used directly by the join layer, which parses a two-relation
    condition once and compiles each relation's selection part
    separately.
    """
    text = source or str(ast)
    registry = {name.lower(): fn for name, fn in (functions or {}).items()}
    lowered = _lower(ast, relation, registry, negate=False)
    conjuncts = _to_dnf(lowered)
    predicates: List[Predicate] = []
    seen: set = set()
    always_true = False
    for conjunct in conjuncts:
        clauses = _conjunct_clauses(conjunct)
        if clauses is None:
            continue  # contains a false literal
        try:
            merged = normalize_clauses(clauses)
        except _Contradiction:
            continue  # unsatisfiable conjunct, e.g. x < 1 and x > 2
        key = _conjunct_key(merged)
        if key in seen:
            continue
        seen.add(key)
        if not merged:
            always_true = True
            predicates = [Predicate(relation, (), source=text)]
            break
        predicates.append(Predicate(relation, merged, source=text))
    group = PredicateGroup(relation, predicates, source=text)
    return CompiledCondition(group, always_true, text)


# ----------------------------------------------------------------------
# lowering: AST -> {And, Or, atoms}
# ----------------------------------------------------------------------


class _ClauseAtom(Node):
    """A ready-made clause used as an AST leaf during normalization."""

    __slots__ = ("clause",)

    def __init__(self, clause: Clause):
        self.clause = clause

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.clause}>"


class _BoolAtom(Node):
    """A constant truth value used as an AST leaf during normalization."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value


_NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_FLIPPED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _lower(
    node: Node,
    relation: str,
    functions: Dict[str, Callable[[Any], bool]],
    negate: bool,
) -> Node:
    """Lower *node* to an AST of And/Or over clause atoms, in NNF."""
    if isinstance(node, NotNode):
        return _lower(node.child, relation, functions, not negate)
    if isinstance(node, AndNode):
        children = tuple(_lower(c, relation, functions, negate) for c in node.children)
        return OrNode(children) if negate else AndNode(children)
    if isinstance(node, OrNode):
        children = tuple(_lower(c, relation, functions, negate) for c in node.children)
        return AndNode(children) if negate else OrNode(children)
    if isinstance(node, LiteralNode):
        return _BoolAtom(node.value != negate)
    if isinstance(node, FunctionNode):
        name = node.name.lower()
        try:
            fn = functions[name]
        except KeyError:
            known = ", ".join(sorted(functions)) or "(none registered)"
            raise ParseError(
                f"unknown function {node.name!r}; known functions: {known}"
            ) from None
        attribute = _resolve_attribute(node.attribute, relation)
        return _ClauseAtom(
            FunctionClause(attribute, fn, name=node.name, negated=negate)
        )
    if isinstance(node, ComparisonNode):
        return _lower_comparison(node, relation, negate)
    if isinstance(node, LikeNode):
        return _lower_like(node, relation, negate)
    raise ParseError(f"unsupported AST node {node!r}")


def _lower_like(node: LikeNode, relation: str, negate: bool) -> Node:
    """Lower ``attr LIKE pattern``.

    Pure-prefix patterns (``'Ab%'``) become indexable string ranges
    ``[prefix, next_prefix)`` — the IBS-tree works on any ordered
    domain, strings included; all other patterns become opaque
    function clauses evaluated by regex.
    """
    attribute = _resolve_attribute(node.attribute, relation)
    pattern = node.pattern
    prefix = pattern[:-1]
    is_prefix_pattern = (
        pattern.endswith("%")
        and "%" not in prefix
        and "_" not in prefix
    )
    if is_prefix_pattern and not negate:
        if not prefix:
            # 'x like "%"' matches every string value
            return _ClauseAtom(
                FunctionClause(
                    attribute, _is_string, name="like_any"
                )
            )
        upper = _prefix_upper_bound(prefix)
        if upper is not None:
            return _ClauseAtom(
                IntervalClause(attribute, Interval.closed_open(prefix, upper))
            )
    if is_prefix_pattern and negate and prefix:
        upper = _prefix_upper_bound(prefix)
        if upper is not None:
            return OrNode(
                (
                    _ClauseAtom(
                        IntervalClause(attribute, Interval.less_than(prefix))
                    ),
                    _ClauseAtom(
                        IntervalClause(attribute, Interval.at_least(upper))
                    ),
                )
            )
    matcher = _like_regex(pattern)

    def test(value: Any, _matcher=matcher) -> bool:
        return isinstance(value, str) and _matcher.fullmatch(value) is not None

    return _ClauseAtom(
        FunctionClause(attribute, test, name=f"like_{pattern!r}", negated=negate)
    )


def _is_string(value: Any) -> bool:
    return isinstance(value, str)


def _prefix_upper_bound(prefix: str) -> Optional[str]:
    """The smallest string greater than every string with *prefix*.

    Increment the last character; if it is already the maximum code
    point, no closed-form bound exists and the caller falls back to a
    function clause.
    """
    last = prefix[-1]
    if ord(last) >= 0x10FFFF:
        return None
    return prefix[:-1] + chr(ord(last) + 1)


def _like_regex(pattern: str):
    """Compile a SQL LIKE pattern (% and _) into a regex."""
    import re

    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), re.DOTALL)


def _lower_comparison(node: ComparisonNode, relation: str, negate: bool) -> Node:
    """Turn a comparison chain into And/Or over clause atoms.

    The chain ``o0 op0 o1 op1 o2 ...`` is the conjunction of its
    adjacent binary constraints.  Negation applies De Morgan: the
    negated chain is the disjunction of the negated constraints.
    """
    constraints: List[Node] = []
    attr_positions = set(node.attr_positions)
    for k, op in enumerate(node.operators):
        left, right = node.operands[k], node.operands[k + 1]
        left_attr = k in attr_positions
        right_attr = (k + 1) in attr_positions
        effective_op = _NEGATED_OP[op] if negate else op
        if left_attr and right_attr:
            raise ParseError(
                f"attribute-to-attribute comparison "
                f"{left!r} {op} {right!r} is not a selection clause "
                f"(join conditions belong in the rule's join part)"
            )
        if not left_attr and not right_attr:
            constraints.append(_BoolAtom(_eval_const(left, effective_op, right)))
            continue
        if left_attr:
            attribute, constant, final_op = left, right, effective_op
        else:
            attribute, constant, final_op = right, left, _FLIPPED_OP[effective_op]
        attribute = _resolve_attribute(attribute, relation)
        constraints.append(_binary_constraint(attribute, final_op, constant))
    if len(constraints) == 1:
        return constraints[0]
    return OrNode(tuple(constraints)) if negate else AndNode(tuple(constraints))


def _binary_constraint(attribute: str, op: str, constant: Any) -> Node:
    """One clause atom for ``attribute op constant`` (``<>`` expands)."""
    if op == "=":
        return _ClauseAtom(EqualityClause(attribute, constant))
    if op == "<>":
        return OrNode(
            (
                _ClauseAtom(IntervalClause(attribute, Interval.less_than(constant))),
                _ClauseAtom(IntervalClause(attribute, Interval.greater_than(constant))),
            )
        )
    builders = {
        "<": Interval.less_than,
        "<=": Interval.at_most,
        ">": Interval.greater_than,
        ">=": Interval.at_least,
    }
    return _ClauseAtom(IntervalClause(attribute, builders[op](constant)))


def _eval_const(left: Any, op: str, right: Any) -> bool:
    """Statically evaluate a constant-to-constant comparison."""
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    except TypeError:
        raise ParseError(
            f"cannot compare constants {left!r} and {right!r}"
        ) from None


def _resolve_attribute(reference: str, relation: str) -> str:
    """Strip (and validate) an optional relation qualifier."""
    if "." not in reference:
        return reference
    qualifier, attribute = reference.split(".", 1)
    if qualifier != relation:
        raise ParseError(
            f"attribute {reference!r} is qualified with {qualifier!r} but the "
            f"condition applies to relation {relation!r}"
        )
    return attribute


# ----------------------------------------------------------------------
# DNF conversion
# ----------------------------------------------------------------------


def _to_dnf(node: Node) -> List[List[Node]]:
    """Convert a lowered AST into a list of conjuncts of atoms."""
    if isinstance(node, (_ClauseAtom, _BoolAtom)):
        return [[node]]
    if isinstance(node, OrNode):
        conjuncts: List[List[Node]] = []
        for child in node.children:
            conjuncts.extend(_to_dnf(child))
            _check_dnf_size(len(conjuncts))
        return conjuncts
    if isinstance(node, AndNode):
        product: List[List[Node]] = [[]]
        for child in node.children:
            child_dnf = _to_dnf(child)
            product = [
                existing + extra for existing in product for extra in child_dnf
            ]
            _check_dnf_size(len(product))
        return product
    raise ParseError(f"unexpected node in lowered AST: {node!r}")


def _check_dnf_size(count: int) -> None:
    if count > MAX_DNF_CONJUNCTS:
        raise ParseError(
            f"condition expands to more than {MAX_DNF_CONJUNCTS} disjuncts; "
            "simplify the expression"
        )


def _conjunct_clauses(conjunct: Sequence[Node]) -> Optional[List[Clause]]:
    """Extract clauses from a conjunct; None if it contains ``false``."""
    clauses: List[Clause] = []
    for atom in conjunct:
        if isinstance(atom, _BoolAtom):
            if not atom.value:
                return None
            continue  # a true literal adds no constraint
        assert isinstance(atom, _ClauseAtom)
        clauses.append(atom.clause)
    return clauses


def _conjunct_key(clauses: Tuple[Clause, ...]) -> Tuple:
    """A hashable key identifying a normalized conjunct, for dedup."""
    return tuple(sorted((str(c) for c in clauses)))
