"""Lexer for the rule-condition language.

The language covers the predicate grammar of the paper's Section 1 plus
the convenience forms that compile down to it (``between``, ``in``,
``not``, disjunction).  Example conditions::

    salary < 20000 and age > 50
    20000 <= salary <= 30000
    job = "Salesperson"
    isodd(age) and dept = "Shoe"
    dept in ("Shoe", "Toy") or not (10 <= age <= 20)

Tokens:

* identifiers: ``[A-Za-z_][A-Za-z0-9_]*`` (attribute and function
  names; the keywords ``and or not in between true false`` are
  case-insensitive);
* numbers: integers and floats, with optional sign handled by the
  parser as part of the literal;
* strings: single- or double-quoted, with backslash escapes;
* operators: ``= == != <> < <= > >=``;
* punctuation: ``( ) , .``.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import LexError
from .tokens import Token, TokenType

__all__ = ["tokenize"]

_KEYWORDS = {
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "in": TokenType.IN,
    "between": TokenType.BETWEEN,
    "like": TokenType.LIKE,
}

_BOOLEANS = {"true": True, "false": False}

_TWO_CHAR_OPS = {"==", "!=", "<>", "<=", ">="}
_ONE_CHAR_OPS = {"=", "<", ">"}


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; returns a list ending with an EOF token.

    Raises :class:`~repro.errors.LexError` on unexpected characters or
    unterminated strings.
    """
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in _KEYWORDS:
                yield Token(_KEYWORDS[lowered], lowered, start)
            elif lowered in _BOOLEANS:
                yield Token(TokenType.BOOLEAN, _BOOLEANS[lowered], start)
            else:
                yield Token(TokenType.IDENT, word, start)
            continue
        signed = ch in "+-" and i + 1 < n and (
            text[i + 1].isdigit()
            or (text[i + 1] == "." and i + 2 < n and text[i + 2].isdigit())
        )
        if ch.isdigit() or signed or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            start = i
            if signed:
                i += 1
            seen_dot = False
            seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # A dot not followed by a digit terminates the number
                    # (it could be attribute qualification like r.attr).
                    if i + 1 < n and text[i + 1].isdigit():
                        seen_dot = True
                        i += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    text[i + 1].isdigit()
                    or (text[i + 1] in "+-" and i + 2 < n and text[i + 2].isdigit())
                ):
                    seen_exp = True
                    i += 2 if text[i + 1] in "+-" else 1
                else:
                    break
            literal = text[start:i]
            value = float(literal) if (seen_dot or seen_exp) else int(literal)
            yield Token(TokenType.NUMBER, value, start)
            continue
        if ch in "'\"":
            start = i
            quote = ch
            i += 1
            chars: List[str] = []
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    escape = text[i + 1]
                    chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    i += 2
                else:
                    chars.append(text[i])
                    i += 1
            if i >= n:
                raise LexError("unterminated string literal", start)
            i += 1  # consume closing quote
            yield Token(TokenType.STRING, "".join(chars), start)
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            yield Token(TokenType.OPERATOR, "<>" if two == "!=" else two, i)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield Token(TokenType.OPERATOR, ch, i)
            i += 1
            continue
        if ch == "(":
            yield Token(TokenType.LPAREN, ch, i)
            i += 1
            continue
        if ch == ")":
            yield Token(TokenType.RPAREN, ch, i)
            i += 1
            continue
        if ch == ",":
            yield Token(TokenType.COMMA, ch, i)
            i += 1
            continue
        if ch == ".":
            yield Token(TokenType.DOT, ch, i)
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.EOF, None, n)
