"""Recursive-descent parser for rule-condition expressions.

Grammar (operator precedence low to high: ``or``, ``and``, ``not``)::

    condition   := or_expr EOF
    or_expr     := and_expr ( OR and_expr )*
    and_expr    := unary ( AND unary )*
    unary       := NOT unary | primary
    primary     := '(' or_expr ')'
                 | BOOLEAN
                 | func_call
                 | membership
                 | between
                 | comparison
    func_call   := IDENT '(' attr_ref ')'
    membership  := attr_ref [NOT] IN '(' literal (',' literal)* ')'
    between     := attr_ref [NOT] BETWEEN literal AND literal
    comparison  := operand ( OP operand )+        -- chains allowed
    operand     := attr_ref | literal
    attr_ref    := IDENT | IDENT '.' IDENT        -- optional relation prefix
    literal     := NUMBER | STRING | BOOLEAN

Attribute references may be qualified (``emp.salary``); the qualifier is
validated against the target relation by the compiler.  ``x in (...)``
desugars to a disjunction of equalities and ``between`` to a two-sided
comparison chain, both at parse time.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..errors import ParseError
from .ast_nodes import (
    AndNode,
    ComparisonNode,
    FunctionNode,
    LikeNode,
    LiteralNode,
    Node,
    NotNode,
    OrNode,
)
from .lexer import tokenize
from .tokens import Token, TokenType

__all__ = ["parse_condition"]

_LITERAL_TYPES = (TokenType.NUMBER, TokenType.STRING, TokenType.BOOLEAN)


def parse_condition(text: str) -> Node:
    """Parse a condition string into an AST.

    Raises :class:`~repro.errors.ParseError` (or
    :class:`~repro.errors.LexError`) on malformed input.
    """
    parser = _Parser(tokenize(text))
    node = parser.parse_or()
    parser.expect(TokenType.EOF)
    return node


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def accept(self, token_type: str) -> bool:
        if self.current.type == token_type:
            self.advance()
            return True
        return False

    def expect(self, token_type: str) -> Token:
        if self.current.type != token_type:
            raise ParseError(
                f"expected {token_type}, found {self.current.type}"
                f" {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    # -- grammar productions ---------------------------------------------

    def parse_or(self) -> Node:
        children = [self.parse_and()]
        while self.accept(TokenType.OR):
            children.append(self.parse_and())
        if len(children) == 1:
            return children[0]
        return OrNode(tuple(children))

    def parse_and(self) -> Node:
        children = [self.parse_unary()]
        while self.accept(TokenType.AND):
            children.append(self.parse_unary())
        if len(children) == 1:
            return children[0]
        return AndNode(tuple(children))

    def parse_unary(self) -> Node:
        if self.accept(TokenType.NOT):
            return NotNode(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Node:
        token = self.current
        if token.type == TokenType.LPAREN:
            self.advance()
            node = self.parse_or()
            self.expect(TokenType.RPAREN)
            return node
        if token.type == TokenType.BOOLEAN and not self._looks_like_comparison():
            self.advance()
            return LiteralNode(bool(token.value))
        if token.type == TokenType.IDENT and self.peek().type == TokenType.LPAREN:
            return self.parse_function_call()
        return self.parse_relational()

    def _looks_like_comparison(self) -> bool:
        return self.peek().type == TokenType.OPERATOR

    def parse_function_call(self) -> Node:
        name = self.expect(TokenType.IDENT).value
        self.expect(TokenType.LPAREN)
        attribute = self.parse_attr_ref()
        self.expect(TokenType.RPAREN)
        return FunctionNode(name=name, attribute=attribute)

    def parse_attr_ref(self) -> str:
        first = self.expect(TokenType.IDENT).value
        if self.accept(TokenType.DOT):
            second = self.expect(TokenType.IDENT).value
            return f"{first}.{second}"
        return first

    def parse_relational(self) -> Node:
        """Comparison chain, IN membership, or BETWEEN range."""
        operand, is_attr = self.parse_operand()
        token = self.current

        negated = False
        if token.type == TokenType.NOT and self.peek().type in (
            TokenType.IN,
            TokenType.BETWEEN,
            TokenType.LIKE,
        ):
            self.advance()
            negated = True
            token = self.current

        if token.type == TokenType.IN:
            node = self.parse_membership(operand, is_attr)
            return NotNode(node) if negated else node
        if token.type == TokenType.BETWEEN:
            node = self.parse_between(operand, is_attr)
            return NotNode(node) if negated else node
        if token.type == TokenType.LIKE:
            node = self.parse_like(operand, is_attr)
            return NotNode(node) if negated else node
        if negated:
            raise ParseError("dangling 'not' in expression", token.position)
        return self.parse_comparison_chain(operand, is_attr)

    def parse_like(self, operand: Any, is_attr: bool) -> Node:
        if not is_attr:
            raise ParseError(
                "left side of 'like' must be an attribute", self.current.position
            )
        self.expect(TokenType.LIKE)
        token = self.current
        if token.type != TokenType.STRING:
            raise ParseError(
                f"'like' requires a string pattern, found {token.type}",
                token.position,
            )
        self.advance()
        return LikeNode(attribute=operand, pattern=token.value)

    def parse_operand(self) -> Tuple[Any, bool]:
        """Return (value, is_attribute_reference)."""
        token = self.current
        if token.type == TokenType.IDENT:
            return self.parse_attr_ref(), True
        if token.type in _LITERAL_TYPES:
            self.advance()
            return token.value, False
        raise ParseError(
            f"expected attribute or literal, found {token.type} {token.value!r}",
            token.position,
        )

    def parse_comparison_chain(self, first: Any, first_is_attr: bool) -> Node:
        operands: List[Any] = [first]
        attr_positions: List[int] = [0] if first_is_attr else []
        operators: List[str] = []
        while self.current.type == TokenType.OPERATOR:
            operators.append(self.advance().value)
            operand, is_attr = self.parse_operand()
            if is_attr:
                attr_positions.append(len(operands))
            operands.append(operand)
        if not operators:
            raise ParseError(
                "expected a comparison operator", self.current.position
            )
        # Constant-only chains (no attribute) are allowed: the compiler
        # folds them to a boolean.
        return ComparisonNode(
            operands=tuple(operands),
            operators=tuple(operators),
            attr_positions=tuple(attr_positions),
        )

    def parse_membership(self, operand: Any, is_attr: bool) -> Node:
        if not is_attr:
            raise ParseError(
                "left side of 'in' must be an attribute", self.current.position
            )
        self.expect(TokenType.IN)
        self.expect(TokenType.LPAREN)
        values: List[Any] = [self.parse_literal()]
        while self.accept(TokenType.COMMA):
            values.append(self.parse_literal())
        self.expect(TokenType.RPAREN)
        equalities = tuple(
            ComparisonNode(
                operands=(operand, value),
                operators=("=",),
                attr_positions=(0,),
            )
            for value in values
        )
        if len(equalities) == 1:
            return equalities[0]
        return OrNode(equalities)

    def parse_between(self, operand: Any, is_attr: bool) -> Node:
        if not is_attr:
            raise ParseError(
                "left side of 'between' must be an attribute",
                self.current.position,
            )
        self.expect(TokenType.BETWEEN)
        low = self.parse_literal()
        self.expect(TokenType.AND)
        high = self.parse_literal()
        return ComparisonNode(
            operands=(low, operand, high),
            operators=("<=", "<="),
            attr_positions=(1,),
        )

    def parse_literal(self) -> Any:
        token = self.current
        if token.type not in _LITERAL_TYPES:
            raise ParseError(
                f"expected a literal, found {token.type} {token.value!r}",
                token.position,
            )
        self.advance()
        return token.value
