"""Rule-condition language: lexer, parser, and predicate compiler.

The public entry point is :func:`compile_condition`, which turns a
condition string like ``'20000 <= salary <= 30000 and dept = "Shoe"'``
into a :class:`~repro.predicates.PredicateGroup` of disjunction-free
conjunctive predicates, exactly the normal form the paper's matching
algorithm consumes.
"""

from .ast_nodes import (
    AndNode,
    ComparisonNode,
    FunctionNode,
    LikeNode,
    LiteralNode,
    Node,
    NotNode,
    OrNode,
)
from .compiler import MAX_DNF_CONJUNCTS, CompiledCondition, compile_condition
from .lexer import tokenize
from .parser import parse_condition
from .tokens import Token, TokenType

__all__ = [
    "compile_condition",
    "CompiledCondition",
    "MAX_DNF_CONJUNCTS",
    "parse_condition",
    "tokenize",
    "Token",
    "TokenType",
    "Node",
    "AndNode",
    "OrNode",
    "NotNode",
    "ComparisonNode",
    "FunctionNode",
    "LikeNode",
    "LiteralNode",
]
