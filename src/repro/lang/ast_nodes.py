"""AST for rule-condition expressions.

The parser produces this small tree language; the compiler lowers it to
disjunctive normal form and then to predicate clauses.  Nodes are plain
immutable dataclasses; logical structure only — no evaluation here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = [
    "Node",
    "AndNode",
    "OrNode",
    "NotNode",
    "ComparisonNode",
    "FunctionNode",
    "LikeNode",
    "LiteralNode",
]


class Node:
    """Base class for condition AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class AndNode(Node):
    """Conjunction of two or more sub-expressions."""

    children: Tuple[Node, ...]

    def __str__(self) -> str:
        return "(" + " and ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class OrNode(Node):
    """Disjunction of two or more sub-expressions."""

    children: Tuple[Node, ...]

    def __str__(self) -> str:
        return "(" + " or ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class NotNode(Node):
    """Logical negation of a sub-expression."""

    child: Node

    def __str__(self) -> str:
        return f"(not {self.child})"


@dataclass(frozen=True)
class ComparisonNode(Node):
    """A (possibly chained) comparison.

    ``operands`` alternates attribute names and literal constants;
    ``operators`` holds the comparison between each adjacent pair.  For
    example ``20000 <= salary <= 30000`` parses to
    ``operands=(20000, 'salary', 30000)``, ``operators=('<=', '<=')``
    with ``attr_positions=(1,)`` marking which operands are attribute
    references.
    """

    operands: Tuple[Any, ...]
    operators: Tuple[str, ...]
    attr_positions: Tuple[int, ...]

    def __str__(self) -> str:
        parts = [self._show(0)]
        for k, op in enumerate(self.operators):
            parts.append(op)
            parts.append(self._show(k + 1))
        return " ".join(parts)

    def _show(self, index: int) -> str:
        value = self.operands[index]
        if index in self.attr_positions:
            return str(value)
        return repr(value)


@dataclass(frozen=True)
class FunctionNode(Node):
    """An opaque boolean function applied to a single attribute."""

    name: str
    attribute: str

    def __str__(self) -> str:
        return f"{self.name}({self.attribute})"


@dataclass(frozen=True)
class LikeNode(Node):
    """A SQL-style pattern test: ``attribute LIKE 'pattern'``.

    ``%`` matches any run of characters and ``_`` any single character.
    Pure-prefix patterns (``'Ab%'``) compile to indexable string
    intervals; anything else becomes an opaque clause.
    """

    attribute: str
    pattern: str

    def __str__(self) -> str:
        return f"{self.attribute} like {self.pattern!r}"


@dataclass(frozen=True)
class LiteralNode(Node):
    """A bare boolean literal (``true`` / ``false``) used as a condition."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"
