"""Token definitions for the rule-condition language."""

from __future__ import annotations

from typing import Any, NamedTuple

__all__ = ["Token", "TokenType"]


class TokenType:
    """Token kinds (plain string constants; no enum overhead needed)."""

    IDENT = "IDENT"          # attribute or function name
    NUMBER = "NUMBER"        # int or float literal
    STRING = "STRING"        # quoted string literal
    BOOLEAN = "BOOLEAN"      # true / false
    OPERATOR = "OPERATOR"    # = == != <> < <= > >=
    AND = "AND"
    OR = "OR"
    NOT = "NOT"
    IN = "IN"
    BETWEEN = "BETWEEN"
    LIKE = "LIKE"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    DOT = "DOT"
    EOF = "EOF"


class Token(NamedTuple):
    """A lexed token: kind, value, and source offset (for error messages)."""

    type: str
    value: Any
    position: int

    def __str__(self) -> str:
        return f"{self.type}({self.value!r})@{self.position}"
