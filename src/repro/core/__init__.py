"""Core data structures: intervals, the IBS-tree, and the predicate index.

This subpackage contains the paper's primary contribution:

* :class:`~repro.core.intervals.Interval` — intervals over any totally
  ordered domain, with independently open/closed/unbounded ends;
* :class:`~repro.core.ibs_tree.IBSTree` — the interval binary search
  tree (Section 4.2), a dynamic index answering stabbing queries;
* :class:`~repro.core.avl_ibs_tree.AVLIBSTree` — the balanced variant
  using the rotation marker rewrites of Section 4.3;
* :class:`~repro.core.predicate_index.PredicateIndex` — the two-level
  predicate matching scheme of Figure 1.
"""

from .intervals import MINUS_INF, PLUS_INF, Interval, is_infinite
from .ibs_tree import IBSNode, IBSTree
from .avl_ibs_tree import AVLIBSTree
from .rb_ibs_tree import RBIBSTree
from .flat_ibs_tree import FlatIBSTree
from .rotations import rotate_left, rotate_right
from .predicate_index import MatchStatistics, PredicateIndex
from .subsumption import (
    clause_subsumes,
    find_subsumed,
    predicate_subsumes,
    predicates_disjoint,
)
from .selectivity import (
    DefaultEstimator,
    SelectivityEstimator,
    StatisticsEstimator,
    choose_index_clause,
    rank_index_clauses,
)

__all__ = [
    "Interval",
    "MINUS_INF",
    "PLUS_INF",
    "is_infinite",
    "IBSTree",
    "IBSNode",
    "AVLIBSTree",
    "RBIBSTree",
    "FlatIBSTree",
    "rotate_left",
    "rotate_right",
    "PredicateIndex",
    "MatchStatistics",
    "SelectivityEstimator",
    "DefaultEstimator",
    "StatisticsEstimator",
    "choose_index_clause",
    "rank_index_clauses",
    "clause_subsumes",
    "predicate_subsumes",
    "predicates_disjoint",
    "find_subsumed",
]
