"""AVL-balanced IBS-tree (paper Section 4.3 + Section 5.1 analysis).

The paper's empirical measurements use the unbalanced
:class:`~repro.core.ibs_tree.IBSTree` (random insertion order keeps it
balanced in expectation), but its analysis assumes "the AVL-tree scheme
is used to maintain the balance of an IBS-tree".  :class:`AVLIBSTree`
implements that scheme: every endpoint insertion and structural deletion
retraces toward the root, applying single/double rotations wherever a
node's balance factor leaves {-1, 0, +1}, with the Figure 6 marker
rewrites of :mod:`repro.core.rotations` keeping the marker invariants
intact through every rotation.

With balancing, the height is at most ``1.4405 * log2(N + 2)`` so a
stabbing query costs ``O(log N + L)`` *worst case* (not just on random
input), insertion costs ``O(log^2 N)`` and deletion ``O(log^2 N)`` as
derived in the paper's Section 5.1.
"""

from __future__ import annotations

from typing import Optional

from .ibs_tree import IBSNode, IBSTree
from .rotations import balance_factor, node_height, rotate_left, rotate_right

__all__ = ["AVLIBSTree"]


class AVLIBSTree(IBSTree):
    """An IBS-tree that stays height-balanced under any operation order.

    Drop-in replacement for :class:`~repro.core.ibs_tree.IBSTree`; the
    public API is identical.  Use it when intervals arrive in sorted or
    otherwise adversarial order, where the unbalanced tree degenerates to
    a linked list (see the ``ABL2`` benchmark).
    """

    def _after_endpoint_insert(self, node: IBSNode) -> None:
        self._retrace(node.parent)

    def _after_splice(self, parent: Optional[IBSNode]) -> None:
        self._retrace(parent)

    def _retrace(self, node: Optional[IBSNode]) -> None:
        """Walk from *node* to the root, restoring heights and balance.

        Runs all the way to the root (rather than stopping once heights
        stabilise) so a single code path serves both insertions — which
        need at most one rebalancing — and deletions, which may need a
        rotation at every level.
        """
        while node is not None:
            node.height = 1 + max(node_height(node.left), node_height(node.right))
            bf = balance_factor(node)
            if bf > 1:
                if balance_factor(node.left) < 0:
                    rotate_left(self, node.left)  # double rotation, first half
                node = rotate_right(self, node)
            elif bf < -1:
                if balance_factor(node.right) > 0:
                    rotate_right(self, node.right)  # double rotation, first half
                node = rotate_left(self, node)
            node = node.parent

    def validate(self) -> None:
        """All base invariants, plus the AVL balance condition."""
        super().validate()
        self._validate_balance(self._root)

    def _validate_balance(self, node: Optional[IBSNode]) -> None:
        if node is None:
            return
        from ..errors import TreeInvariantError

        if abs(balance_factor(node)) > 1:
            raise TreeInvariantError(
                f"AVL balance violated at node {node.value!r} "
                f"(factor {balance_factor(node)})"
            )
        self._validate_balance(node.left)
        self._validate_balance(node.right)
