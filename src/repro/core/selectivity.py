"""Clause selectivity estimation for index-clause selection.

The paper: "for predicates that are a conjunction of selection clauses,
if there is an indexable clause, the most selective one is placed in the
IBS-tree (selectivity estimates are obtained from the query optimizer)".

Two estimators are provided:

* :class:`DefaultEstimator` — System R style constants by clause shape;
  needs no data and is fully deterministic;
* :class:`StatisticsEstimator` — consults a database's incrementally
  maintained :class:`~repro.db.statistics.RelationStatistics`, falling
  back to the defaults when a relation or attribute has no data yet.

Both return a number in ``[0, 1]``: the estimated fraction of tuples
matched by the clause.  Lower is more selective.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..predicates.clauses import Clause, EqualityClause, FunctionClause, IntervalClause
from ..predicates.predicate import Predicate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.database import Database

__all__ = [
    "SelectivityEstimator",
    "DefaultEstimator",
    "StatisticsEstimator",
    "choose_index_clause",
    "rank_index_clauses",
]


class SelectivityEstimator:
    """Interface: estimate the matched fraction for one clause."""

    def estimate(self, relation: str, clause: Clause) -> float:
        raise NotImplementedError


class DefaultEstimator(SelectivityEstimator):
    """Shape-based constants in the System R tradition.

    Equality is assumed most selective, bounded ranges next, half-open
    ranges after that, and opaque functions are assumed to match
    everything (nothing is known about them).
    """

    EQUALITY = 0.10
    BOUNDED = 0.25
    HALF_OPEN = 0.33
    UNBOUNDED = 1.0
    FUNCTION = 1.0

    def estimate(self, relation: str, clause: Clause) -> float:
        if isinstance(clause, FunctionClause):
            return self.FUNCTION
        if isinstance(clause, EqualityClause):
            return self.EQUALITY
        if isinstance(clause, IntervalClause):
            interval = clause.interval
            if interval.is_point:
                return self.EQUALITY
            if interval.is_low_unbounded and interval.is_high_unbounded:
                return self.UNBOUNDED
            if interval.is_unbounded:
                return self.HALF_OPEN
            return self.BOUNDED
        return 1.0


class StatisticsEstimator(SelectivityEstimator):
    """Data-driven estimates from a database's relation statistics."""

    def __init__(self, db: "Database", fallback: Optional[SelectivityEstimator] = None):
        self._db = db
        self._fallback = fallback or DefaultEstimator()

    def estimate(self, relation: str, clause: Clause) -> float:
        from ..errors import UnknownRelationError

        try:
            rel = self._db.relation(relation)
        except UnknownRelationError:
            return self._fallback.estimate(relation, clause)
        stats = rel.statistics
        if stats.row_count == 0:
            return self._fallback.estimate(relation, clause)
        return stats.clause_selectivity(clause)


def rank_index_clauses(
    predicate: Predicate, estimator: Optional[SelectivityEstimator] = None
) -> List[tuple]:
    """Every indexable clause of *predicate*, most selective first.

    Returns ``[(score, clause), ...]`` sorted ascending by estimated
    selectivity, with clause order breaking ties (so the first entry is
    exactly what :func:`choose_index_clause` picks).  The full ranking
    is what adaptive entry-clause migration needs: when observed
    feedback shows the current entry clause admitting too many
    candidates, the next-best *different-attribute* clause is the
    migration target.
    """
    estimator = estimator or DefaultEstimator()
    scored: List[tuple] = []
    for position, clause in enumerate(predicate.clauses):
        if not clause.indexable:
            continue
        score = estimator.estimate(predicate.relation, clause)
        scored.append((score, position, clause))
    scored.sort(key=lambda entry: (entry[0], entry[1]))
    return [(score, clause) for score, _, clause in scored]


def choose_index_clause(
    predicate: Predicate, estimator: Optional[SelectivityEstimator] = None
) -> Optional[IntervalClause]:
    """Pick the predicate's most selective indexable clause (or None).

    Ties are broken by clause order, so the choice is deterministic.
    Returns None when the predicate has no indexable clause (it then
    belongs on the relation's non-indexable list in Figure 1).
    """
    ranked = rank_index_clauses(predicate, estimator)
    return ranked[0][1] if ranked else None
