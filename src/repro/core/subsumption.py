"""Predicate subsumption and overlap analysis.

Rule bases accumulate redundancy: a new trigger's condition may be
implied by (or contradict) an existing one.  This module provides the
static analysis over compiled predicates:

* :func:`clause_subsumes` / :func:`predicate_subsumes` — does every
  tuple matched by one predicate necessarily match another?
* :func:`predicates_disjoint` — can any tuple match both?
* :func:`find_subsumed` — all (general, specific) pairs in a
  collection, grouped per relation.

Subsumption here is *sound but incomplete*: opaque function clauses
are compared by identity (the paper assumes "nothing ... about the
function except that it returns true or false"), so a report of
subsumption is always correct, while some semantic subsumptions
involving functions go undetected.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..predicates.clauses import Clause, FunctionClause, IntervalClause
from ..predicates.predicate import Predicate

__all__ = [
    "clause_subsumes",
    "predicate_subsumes",
    "predicates_disjoint",
    "find_subsumed",
]


def clause_subsumes(general: Clause, specific: Clause) -> bool:
    """True if every tuple satisfying *specific* satisfies *general*.

    Interval clauses subsume by interval coverage; function clauses
    only subsume identical function clauses (identity + polarity).
    """
    if general.attribute != specific.attribute:
        return False
    if isinstance(general, IntervalClause) and isinstance(specific, IntervalClause):
        return general.interval.covers(specific.interval)
    if isinstance(general, FunctionClause) and isinstance(specific, FunctionClause):
        return (
            general.function is specific.function
            and general.negated == specific.negated
        )
    return False


def predicate_subsumes(general: Predicate, specific: Predicate) -> bool:
    """True if *general*'s match set provably contains *specific*'s.

    Both predicates are normalized first (same-attribute interval
    clauses merged).  The check: every clause of the general predicate
    must be implied by some clause of the specific one — the specific
    predicate carries at least the general one's constraints,
    tightened.  An unsatisfiable specific predicate is subsumed by
    everything over the same relation (vacuously).
    """
    if general.relation != specific.relation:
        return False
    general_n = general.normalized()
    specific_n = specific.normalized()
    if general_n is None:
        # an unsatisfiable predicate matches nothing: it subsumes only
        # other unsatisfiable predicates
        return specific_n is None
    if specific_n is None:
        return True
    for g_clause in general_n.clauses:
        if not any(
            clause_subsumes(g_clause, s_clause) for s_clause in specific_n.clauses
        ):
            return False
    return True


def predicates_disjoint(first: Predicate, second: Predicate) -> bool:
    """True if provably no tuple can match both predicates.

    Detected when some attribute is constrained by both predicates
    with non-overlapping intervals.  (Function clauses never prove
    disjointness.)  A False result means "may overlap", not "do".
    """
    if first.relation != second.relation:
        return True
    first_n = first.normalized()
    second_n = second.normalized()
    if first_n is None or second_n is None:
        return True  # an unsatisfiable predicate matches nothing
    intervals_first = {
        clause.attribute: clause.interval
        for clause in first_n.clauses
        if isinstance(clause, IntervalClause)
    }
    for clause in second_n.clauses:
        if not isinstance(clause, IntervalClause):
            continue
        other = intervals_first.get(clause.attribute)
        if other is not None and not other.overlaps(clause.interval):
            return True
    return False


def find_subsumed(
    predicates: Iterable[Predicate],
) -> List[Tuple[Predicate, Predicate]]:
    """All ordered pairs ``(general, specific)`` with strict subsumption.

    Mutually subsuming (equivalent) predicates are reported once, in
    input order, as ``(earlier, later)``.  Pairwise within relation
    groups, so cost is quadratic per relation, not globally.
    """
    by_relation: Dict[str, List[Predicate]] = {}
    for predicate in predicates:
        by_relation.setdefault(predicate.relation, []).append(predicate)
    pairs: List[Tuple[Predicate, Predicate]] = []
    for group in by_relation.values():
        for i, first in enumerate(group):
            for second in group[i + 1 :]:
                forward = predicate_subsumes(first, second)
                backward = predicate_subsumes(second, first)
                if forward:
                    pairs.append((first, second))
                elif backward:
                    pairs.append((second, first))
    return pairs
