"""Intervals over arbitrary totally ordered domains.

This module provides the :class:`Interval` value type used throughout the
library, together with the :data:`MINUS_INF` / :data:`PLUS_INF` sentinels
that represent unbounded interval ends.

The paper (Section 1) defines range predicate clauses of the form::

    const1  rho1  t.attribute  rho2  const2

where ``rho1`` and ``rho2`` are drawn from ``{<, <=}``, equality clauses
``t.attribute = const`` are degenerate intervals, and open-ended ranges
are expressed by setting ``const1`` or ``const2`` to -infinity or
+infinity.  :class:`Interval` captures exactly this family: a pair of
bounds, each independently inclusive or exclusive, over *any* domain for
which ``<``, ``==`` and ``>`` are defined — integers, floats, strings,
dates, tuples...  No per-domain adapter code is required, which the paper
calls out as an advantage of the IBS-tree over priority search trees.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from ..errors import IntervalError

__all__ = ["Interval", "MINUS_INF", "PLUS_INF", "is_infinite"]


class _Infinity:
    """Sentinel comparable against values of any totally ordered domain.

    Two singletons exist: :data:`MINUS_INF` (compares below everything)
    and :data:`PLUS_INF` (compares above everything).  Sentinels compare
    equal only to themselves, so they can safely share a search tree with
    ordinary domain values.
    """

    __slots__ = ("_sign", "_name")

    def __init__(self, sign: int, name: str):
        self._sign = sign
        self._name = name

    def __lt__(self, other: Any) -> bool:
        if other is self:
            return False
        return self._sign < 0

    def __le__(self, other: Any) -> bool:
        if other is self:
            return True
        return self._sign < 0

    def __gt__(self, other: Any) -> bool:
        if other is self:
            return False
        return self._sign > 0

    def __ge__(self, other: Any) -> bool:
        if other is self:
            return True
        return self._sign > 0

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __ne__(self, other: Any) -> bool:
        return other is not self

    def __hash__(self) -> int:
        return hash(self._name)

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        # Preserve singleton identity across pickling.
        return (_resolve_infinity, (self._sign,))


MINUS_INF = _Infinity(-1, "-inf")
"""Sentinel for an unbounded lower end; compares below every value."""

PLUS_INF = _Infinity(+1, "+inf")
"""Sentinel for an unbounded upper end; compares above every value."""


def _resolve_infinity(sign: int) -> _Infinity:
    return MINUS_INF if sign < 0 else PLUS_INF


def is_infinite(value: Any) -> bool:
    """Return True if *value* is one of the infinity sentinels."""
    return value is MINUS_INF or value is PLUS_INF


class Interval:
    """An interval over a totally ordered domain.

    Each end has a bound value and an inclusivity flag.  The constructor
    validates that the interval is non-empty:

    * ``low`` must not exceed ``high``;
    * a degenerate interval (``low == high``) must be closed on both
      ends, otherwise it would denote the empty set;
    * an infinite bound is never inclusive (no value equals infinity).

    Instances are immutable and hashable, so they can serve as dictionary
    keys and set members.

    Prefer the named constructors over the raw constructor::

        Interval.closed(2, 7)        # [2, 7]
        Interval.open(2, 7)          # (2, 7)
        Interval.closed_open(2, 7)   # [2, 7)
        Interval.open_closed(2, 7)   # (2, 7]
        Interval.point(5)            # [5, 5]
        Interval.at_most(9)          # (-inf, 9]
        Interval.less_than(9)        # (-inf, 9)
        Interval.at_least(3)         # [3, +inf)
        Interval.greater_than(3)     # (3, +inf)
        Interval.unbounded()         # (-inf, +inf)
    """

    __slots__ = ("low", "high", "low_inclusive", "high_inclusive")

    def __init__(
        self,
        low: Any = MINUS_INF,
        high: Any = PLUS_INF,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ):
        if low is MINUS_INF:
            low_inclusive = False
        if high is PLUS_INF:
            high_inclusive = False
        if low is PLUS_INF or high is MINUS_INF:
            raise IntervalError(
                "low bound may not be +inf and high bound may not be -inf"
            )
        if _gt(low, high):
            raise IntervalError(f"interval low bound {low!r} exceeds high bound {high!r}")
        if _eq(low, high) and not (low_inclusive and high_inclusive):
            raise IntervalError(
                f"degenerate interval at {low!r} must be closed on both ends"
            )
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)
        object.__setattr__(self, "low_inclusive", bool(low_inclusive))
        object.__setattr__(self, "high_inclusive", bool(high_inclusive))

    # -- immutability -------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Interval instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Interval instances are immutable")

    def __reduce__(self):
        # Rebuild through the constructor: slots + immutability make the
        # default pickle path unusable, and this also revalidates.
        return (
            Interval,
            (self.low, self.high, self.low_inclusive, self.high_inclusive),
        )

    # -- named constructors -------------------------------------------

    @classmethod
    def closed(cls, low: Any, high: Any) -> "Interval":
        """The closed interval ``[low, high]``."""
        return cls(low, high, True, True)

    @classmethod
    def open(cls, low: Any, high: Any) -> "Interval":
        """The open interval ``(low, high)``."""
        return cls(low, high, False, False)

    @classmethod
    def closed_open(cls, low: Any, high: Any) -> "Interval":
        """The half-open interval ``[low, high)``."""
        return cls(low, high, True, False)

    @classmethod
    def open_closed(cls, low: Any, high: Any) -> "Interval":
        """The half-open interval ``(low, high]``."""
        return cls(low, high, False, True)

    @classmethod
    def point(cls, value: Any) -> "Interval":
        """The degenerate interval ``[value, value]`` (an equality test)."""
        return cls(value, value, True, True)

    @classmethod
    def at_most(cls, high: Any) -> "Interval":
        """The interval ``(-inf, high]``."""
        return cls(MINUS_INF, high, False, True)

    @classmethod
    def less_than(cls, high: Any) -> "Interval":
        """The interval ``(-inf, high)``."""
        return cls(MINUS_INF, high, False, False)

    @classmethod
    def at_least(cls, low: Any) -> "Interval":
        """The interval ``[low, +inf)``."""
        return cls(low, PLUS_INF, True, False)

    @classmethod
    def greater_than(cls, low: Any) -> "Interval":
        """The interval ``(low, +inf)``."""
        return cls(low, PLUS_INF, False, False)

    @classmethod
    def unbounded(cls) -> "Interval":
        """The interval ``(-inf, +inf)`` — matches every value."""
        return cls(MINUS_INF, PLUS_INF, False, False)

    @classmethod
    def from_operator(cls, op: str, value: Any) -> "Interval":
        """Build the interval equivalent of a single comparison clause.

        ``op`` is one of ``=  ==  <  <=  >  >=``; for example
        ``from_operator("<=", 9)`` returns ``(-inf, 9]``.
        """
        table = {
            "=": cls.point,
            "==": cls.point,
            "<": cls.less_than,
            "<=": cls.at_most,
            ">": cls.greater_than,
            ">=": cls.at_least,
        }
        try:
            builder = table[op]
        except KeyError:
            raise IntervalError(f"unsupported comparison operator {op!r}") from None
        return builder(value)

    # -- predicates on the interval ------------------------------------

    @property
    def is_point(self) -> bool:
        """True if this interval contains exactly one value."""
        return _eq(self.low, self.high)

    @property
    def is_low_unbounded(self) -> bool:
        """True if the low end is -infinity."""
        return self.low is MINUS_INF

    @property
    def is_high_unbounded(self) -> bool:
        """True if the high end is +infinity."""
        return self.high is PLUS_INF

    @property
    def is_unbounded(self) -> bool:
        """True if either end is infinite."""
        return self.is_low_unbounded or self.is_high_unbounded

    def contains(self, value: Any) -> bool:
        """Return True if *value* lies within this interval.

        The infinity sentinels are never contained in any interval; they
        denote unboundedness, not values.
        """
        if is_infinite(value):
            return False
        if self.low_inclusive:
            if _lt(value, self.low):
                return False
        else:
            if _le(value, self.low):
                return False
        if self.high_inclusive:
            if _gt(value, self.high):
                return False
        else:
            if _ge(value, self.high):
                return False
        return True

    __contains__ = contains

    def overlaps(self, other: "Interval") -> bool:
        """Return True if this interval shares at least one value with *other*.

        Adjacency counts as overlap only if the shared endpoint is
        inclusive on both sides, e.g. ``[1, 3]`` overlaps ``[3, 5]`` but
        ``[1, 3)`` does not.
        """
        if _lt(self.high, other.low) or _lt(other.high, self.low):
            return False
        if _eq(self.high, other.low):
            return self.high_inclusive and other.low_inclusive
        if _eq(other.high, self.low):
            return other.high_inclusive and self.low_inclusive
        return True

    def covers(self, other: "Interval") -> bool:
        """Return True if every value of *other* lies within this interval."""
        if _lt(other.low, self.low):
            return False
        if _eq(other.low, self.low) and other.low_inclusive and not self.low_inclusive:
            return False
        if _gt(other.high, self.high):
            return False
        if (
            _eq(other.high, self.high)
            and other.high_inclusive
            and not self.high_inclusive
        ):
            return False
        return True

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The interval of values in both, or None when they are disjoint."""
        if not self.overlaps(other):
            return None
        if _gt(other.low, self.low):
            low, low_inc = other.low, other.low_inclusive
        elif _eq(self.low, other.low):
            low, low_inc = self.low, self.low_inclusive and other.low_inclusive
        else:
            low, low_inc = self.low, self.low_inclusive
        if _gt(self.high, other.high):
            high, high_inc = other.high, other.high_inclusive
        elif _eq(self.high, other.high):
            high, high_inc = (
                self.high,
                self.high_inclusive and other.high_inclusive,
            )
        else:
            high, high_inc = self.high, self.high_inclusive
        try:
            return Interval(low, high, low_inc, high_inc)
        except IntervalError:
            # touching endpoints with incompatible inclusivity
            return None

    def endpoints(self) -> Iterator[Any]:
        """Yield the finite endpoints of this interval (0, 1 or 2 values)."""
        if self.low is not MINUS_INF:
            yield self.low
        if self.high is not PLUS_INF and not self.is_point:
            yield self.high

    def measure(self) -> Optional[float]:
        """Return ``high - low`` for numeric bounded intervals, else None."""
        if self.is_unbounded:
            return None
        try:
            return float(self.high - self.low)
        except TypeError:
            return None

    # -- value semantics ------------------------------------------------

    def _key(self) -> Tuple[Any, Any, bool, bool]:
        return (
            id(self.low) if is_infinite(self.low) else self.low,
            id(self.high) if is_infinite(self.high) else self.high,
            self.low_inclusive,
            self.high_inclusive,
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"Interval.parse({str(self)!r})"

    def __str__(self) -> str:
        lo_br = "[" if self.low_inclusive else "("
        hi_br = "]" if self.high_inclusive else ")"
        return f"{lo_br}{self.low!r}, {self.high!r}{hi_br}"

    @classmethod
    def parse(cls, text: str) -> "Interval":
        """Parse the ``str()`` representation back into an Interval.

        Only literal bounds understood by :func:`ast.literal_eval` (plus
        ``-inf`` / ``+inf``) are supported; this exists mainly so reprs
        round-trip in doctests and logs.
        """
        import ast

        text = text.strip()
        if len(text) < 2 or text[0] not in "[(" or text[-1] not in "])":
            raise IntervalError(f"cannot parse interval from {text!r}")
        low_inclusive = text[0] == "["
        high_inclusive = text[-1] == "]"
        body = text[1:-1]
        parts = _split_top_level(body)
        if len(parts) != 2:
            raise IntervalError(f"cannot parse interval from {text!r}")

        def parse_bound(token: str, sign: int) -> Any:
            token = token.strip()
            if token in ("-inf", "'-inf'"):
                return MINUS_INF
            if token in ("+inf", "inf", "'+inf'"):
                return PLUS_INF
            try:
                return ast.literal_eval(token)
            except (ValueError, SyntaxError):
                raise IntervalError(
                    f"cannot parse interval bound {token!r}"
                ) from None

        low = parse_bound(parts[0], -1)
        high = parse_bound(parts[1], +1)
        return cls(low, high, low_inclusive, high_inclusive)


def _split_top_level(body: str) -> list:
    """Split *body* on commas that are not nested in brackets or quotes."""
    parts = []
    depth = 0
    quote = None
    current = []
    for ch in body:
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch in "([{":
            depth += 1
            current.append(ch)
        elif ch in ")]}":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


# -- comparison helpers ------------------------------------------------
#
# These wrappers exist so that comparisons involving the infinity
# sentinels always dispatch through the sentinel's rich-comparison
# methods (Python falls back to the reflected operation when the left
# operand returns NotImplemented, which ordinary types do when compared
# against a foreign object).


def _lt(a: Any, b: Any) -> bool:
    return a < b


def _le(a: Any, b: Any) -> bool:
    return a <= b


def _gt(a: Any, b: Any) -> bool:
    return a > b


def _ge(a: Any, b: Any) -> bool:
    return a >= b


def _eq(a: Any, b: Any) -> bool:
    if is_infinite(a) or is_infinite(b):
        return a is b
    return a == b
