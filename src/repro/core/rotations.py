"""Rotations that preserve IBS-tree marker invariants (paper Section 4.3).

Balanced binary tree schemes — AVL, red-black, splay — all rebalance via
single and double rotations (paper Figure 5).  A double rotation is two
single rotations, so balancing an IBS-tree only requires knowing how the
``<``/``=``/``>`` marker sets of the two nodes involved in a *single*
rotation must be rewritten (paper Figure 6).

For a **right rotation** about node ``z`` with left child ``y``
(subtrees: ``A`` = y.left, ``B`` = y.right, ``D`` = z.right)::

          z                    y
         / \\                  / \\
        y   D     ==>        A   z
       / \\                      / \\
      A   B                    B   D

the three rules of Figure 6 are:

1. every mark in ``z.<`` is **copied** into ``y.<`` and ``y.=`` (a mark
   in ``z.<`` covered all of ``A``, ``y`` and ``B``; after the rotation
   ``A`` is reached through ``y.<``, ``y`` itself through ``y.=``, and
   ``B`` still through ``z.<``, which keeps the mark);
2. a mark in ``y.>`` **but not** in ``z.>`` is **moved** to ``z.<``
   (it covered exactly ``B``, which is now z's left subtree);
3. a mark in **both** ``y.>`` and ``z.>`` is removed from ``z.=`` and
   ``z.>`` (it stays in ``y.>``, which after the rotation covers the
   whole subtree ``B``-``z``-``D``; the copies on ``z`` would be
   redundant).

The left rotation is the exact mirror.  Both functions perform the
pointer surgery, refresh cached heights, keep the tree's marker registry
in sync, and return the new subtree root.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..testing.faults import fault_point
from .ibs_tree import EQ, GT, LT, IBSNode
from .intervals import MINUS_INF, PLUS_INF, is_infinite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ibs_tree import IBSTree

__all__ = ["rotate_right", "rotate_left", "node_height", "balance_factor"]


def _placement_vacuous(node: IBSNode, slot: int) -> bool:
    """True when a mark in *slot* of *node* could never be collected.

    The sentinel-valued nodes make some placements vacuous: the -inf
    node has no left subtree and its value matches no query, the +inf
    node symmetrically.  Skipping them keeps every stored marker sound
    (each ``=`` mark's interval really contains its node's value).
    """
    if slot == EQ:
        return is_infinite(node.value)
    if slot == LT:
        return node.value is MINUS_INF
    return node.value is PLUS_INF


def node_height(node) -> int:
    """Height of an (optional) node; 0 for None."""
    return node.height if node is not None else 0


def balance_factor(node: IBSNode) -> int:
    """AVL balance factor: height(left) - height(right)."""
    return node_height(node.left) - node_height(node.right)


def rotate_right(tree: "IBSTree", z: IBSNode) -> IBSNode:
    """Rotate right about *z*; returns the new subtree root (old z.left).

    Applies the Figure 6 marker rewrites before the pointer surgery so
    that the rewritten sets are computed from the pre-rotation roles.
    """
    y = z.left
    if y is None:
        raise ValueError("rotate_right requires a left child")

    _fixup_marks(tree, promoted=y, demoted=z, promoted_outer=GT, demoted_inner=LT)
    _relink(tree, z, y, right=True)
    return y


def rotate_left(tree: "IBSTree", z: IBSNode) -> IBSNode:
    """Rotate left about *z*; returns the new subtree root (old z.right)."""
    y = z.right
    if y is None:
        raise ValueError("rotate_left requires a right child")

    _fixup_marks(tree, promoted=y, demoted=z, promoted_outer=LT, demoted_inner=GT)
    _relink(tree, z, y, right=False)
    return y


def _fixup_marks(
    tree: "IBSTree",
    promoted: IBSNode,
    demoted: IBSNode,
    promoted_outer: int,
    demoted_inner: int,
) -> None:
    """Apply the Figure 6 marker rewrites for a single rotation.

    ``promoted`` is the child that becomes the subtree root (``y``),
    ``demoted`` the old root (``z``).  For a right rotation the
    "outer" slot of ``y`` is ``>`` and the "inner" slot of ``z`` is
    ``<``; a left rotation mirrors both.
    """
    locs = tree._marker_locs

    # Rule 1: copy the demoted node's inner marks onto the promoted node.
    inner_marks = tuple(demoted.slots[demoted_inner])
    for ident in inner_marks:
        for slot in (demoted_inner, EQ):
            if _placement_vacuous(promoted, slot):
                continue
            if ident not in promoted.slots[slot]:
                promoted.slots[slot].add(ident)
                locs[ident].add((promoted, slot))

    outer_marks = promoted.slots[promoted_outer]
    shared = outer_marks & demoted.slots[promoted_outer]

    # Rule 2: marks covering only the middle subtree move across.
    for ident in tuple(outer_marks - shared):
        outer_marks.discard(ident)
        locs[ident].discard((promoted, promoted_outer))
        if _placement_vacuous(demoted, demoted_inner):
            continue
        if ident not in demoted.slots[demoted_inner]:
            demoted.slots[demoted_inner].add(ident)
            locs[ident].add((demoted, demoted_inner))

    # Rule 3: marks now fully covered by the promoted node's outer slot
    # lose their redundant copies on the demoted node.
    for ident in tuple(shared):
        for slot in (EQ, promoted_outer):
            if ident in demoted.slots[slot]:
                demoted.slots[slot].discard(ident)
                locs[ident].discard((demoted, slot))

    # Between here and _relink the marks are rewritten for the
    # *post*-rotation shape while the pointers still have the old one —
    # the torn state an injected crash must leave behind.
    fault_point("tree.rotate")


def _relink(tree: "IBSTree", z: IBSNode, y: IBSNode, right: bool) -> None:
    """Pointer surgery for a single rotation, plus height refresh."""
    if right:
        middle = y.right
        z.left = middle
        y.right = z
    else:
        middle = y.left
        z.right = middle
        y.left = z
    if middle is not None:
        middle.parent = z
    parent = z.parent
    y.parent = parent
    z.parent = y
    if parent is None:
        tree._root = y
    elif parent.left is z:
        parent.left = y
    else:
        parent.right = y
    z.height = 1 + max(node_height(z.left), node_height(z.right))
    y.height = 1 + max(node_height(y.left), node_height(y.right))
    tree._update_heights_upward(y.parent)
