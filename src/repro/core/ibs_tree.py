"""The Interval Binary Search Tree (IBS-tree) of Hanson et al.

The IBS-tree (paper Section 4.2) is a binary search tree over interval
*endpoints*, augmented so that every node carries three sets of interval
identifiers:

``eq``
    identifiers of intervals that contain the node's value;
``lt``
    identifiers of intervals that contain **every value insertable into
    the node's left subtree** (i.e. the whole open range between the
    node's nearest smaller ancestor value and the node's own value);
``gt``
    symmetric to ``lt`` for the right subtree.

With these invariants, a *stabbing query* — find all intervals that
overlap a point ``x`` — is a single root-to-leaf descent that unions the
``lt`` (going left), ``gt`` (going right), and ``eq`` (on exact match)
sets along the search path for ``x``: the paper's ``findIntervals``
procedure, ``O(log N + L)`` on a balanced tree.

Unlike segment trees and interval trees, the IBS-tree supports **dynamic
insertion and deletion** of intervals, and unlike priority search trees
it needs no per-domain endpoint transformation: it works unchanged on
any totally ordered domain and accommodates many intervals sharing an
endpoint.

This class implements the unbalanced tree exactly as benchmarked in the
paper's Section 5.2 ("the balancing scheme using rotations was not
implemented, but as with ordinary binary search trees, the tree is
normally balanced if data is inserted in random order").  The balanced
variant with rotation marker-fixups lives in
:mod:`repro.core.avl_ibs_tree`.

Implementation notes beyond the paper
-------------------------------------

* The paper represents open-ended intervals by endpoint constants of
  -infinity / +infinity; we do the same, inserting sentinel-valued nodes
  (:data:`~repro.core.intervals.MINUS_INF` /
  :data:`~repro.core.intervals.PLUS_INF`) that participate in the total
  order.
* The paper says markers are removed "using the reverse of the procedure
  for insertion".  Retracing the insertion descent is not sound once
  rotations (or earlier endpoint deletions) have moved marks off the
  original search path, so we maintain a **marker registry** mapping
  each interval identifier to its exact set of ``(node, slot)``
  locations.  Deletion then removes precisely the markers that exist.
  The registry also provides the marker counts analysed in the paper's
  Section 5.1 (``O(N log N)`` worst case, ``O(N)`` for disjoint
  intervals) at zero extra cost.
* Endpoint nodes are reference-counted; a node is structurally removed
  only when the last interval using its value is deleted, following the
  paper's predecessor-swap procedure.  All intervals with markers on an
  affected node are lifted out before the structural change and
  re-installed afterwards, which is the conservative reading of the
  procedure justified in the companion technical report [KC89].
"""

from __future__ import annotations

import itertools
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import (
    DuplicateIntervalError,
    TreeError,
    TreeInvariantError,
    UnknownIntervalError,
)
from ..testing.faults import fault_point
from .intervals import MINUS_INF, PLUS_INF, Interval, is_infinite

__all__ = ["IBSNode", "IBSTree", "LT", "EQ", "GT"]

# Slot indices into IBSNode.slots.  The order mirrors the paper's
# upside-down-T node drawing: <, =, > from left to right.
LT = 0
EQ = 1
GT = 2

_SLOT_NAMES = ("<", "=", ">")


class IBSNode:
    """A node of an IBS-tree: a value, three marker sets, and links.

    ``height`` is maintained by every variant (cheap, and lets
    ``validate()`` cross-check structure); ``red`` is used only by the
    red-black variant and is simply True on freshly created nodes, as
    red-black insertion wants.
    """

    __slots__ = ("value", "slots", "left", "right", "parent", "height", "red")

    def __init__(self, value: Any, parent: Optional["IBSNode"] = None):
        self.value = value
        self.slots: Tuple[Set[Hashable], Set[Hashable], Set[Hashable]] = (
            set(),
            set(),
            set(),
        )
        self.left: Optional[IBSNode] = None
        self.right: Optional[IBSNode] = None
        self.parent: Optional[IBSNode] = parent
        self.height = 1
        self.red = True

    @property
    def lt(self) -> Set[Hashable]:
        """Intervals covering every value insertable into the left subtree."""
        return self.slots[LT]

    @property
    def eq(self) -> Set[Hashable]:
        """Intervals containing this node's value."""
        return self.slots[EQ]

    @property
    def gt(self) -> Set[Hashable]:
        """Intervals covering every value insertable into the right subtree."""
        return self.slots[GT]

    def marker_count(self) -> int:
        """Total number of markers stored on this node."""
        return len(self.slots[LT]) + len(self.slots[EQ]) + len(self.slots[GT])

    def __repr__(self) -> str:
        sets = ", ".join(
            f"{name}:{sorted(map(str, s))}" for name, s in zip(_SLOT_NAMES, self.slots)
        )
        return f"<IBSNode {self.value!r} {sets}>"


class IBSTree:
    """Dynamic index over intervals supporting stabbing queries.

    Example::

        >>> from repro import IBSTree, Interval
        >>> tree = IBSTree()
        >>> tree.insert(Interval.closed(9, 19), "A")
        'A'
        >>> tree.insert(Interval.closed_open(2, 7), "B")
        'B'
        >>> tree.insert(Interval.at_most(17), "G")
        'G'
        >>> sorted(tree.stab(5))
        ['B', 'G']
        >>> tree.delete("B")
        >>> sorted(tree.stab(5))
        ['G']

    Identifiers may be any hashable value; if none is given a fresh
    integer is assigned.  The same interval bounds may be inserted under
    many identifiers.
    """

    def __init__(self) -> None:
        self._root: Optional[IBSNode] = None
        self._intervals: Dict[Hashable, Interval] = {}
        self._marker_locs: Dict[Hashable, Set[Tuple[IBSNode, int]]] = {}
        #: endpoint value -> idents of intervals anchored there; a node
        #: exists for a value exactly while this set is non-empty, and
        #: the mapping doubles as the index behind interval-overlap
        #: queries (:meth:`overlapping`).
        self._endpoint_idents: Dict[Any, Set[Hashable]] = {}
        self._ident_counter = itertools.count()
        #: monotone mutation counter: bumped by every operation that can
        #: change a stab answer (insert/delete/bulk_load/clear).  Callers
        #: caching stab results key them on ``(value, epoch)`` so stale
        #: entries die by key mismatch instead of invalidation scans.
        self.epoch = 0
        #: set by :meth:`freeze`; mutators refuse to run afterwards so a
        #: tree published inside an immutable epoch snapshot (see
        #: ``repro.concurrency``) cannot be changed under lock-free
        #: readers.
        self._frozen = False

    def freeze(self) -> None:
        """Make the tree permanently immutable.

        After freezing, :meth:`insert`, :meth:`delete`,
        :meth:`bulk_load` and :meth:`clear` raise :class:`TreeError`.
        Read paths (``stab``/``stab_many``/``overlapping``/statistics)
        are unaffected.  There is deliberately no thaw: snapshot readers
        hold references to this object with no synchronisation, so the
        only safe way to mutate again is to build a fresh tree.
        """
        self._frozen = True

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def _check_mutable(self) -> None:
        if self._frozen:
            raise TreeError(
                f"{type(self).__name__} is frozen (published in an epoch "
                "snapshot); build a new tree instead of mutating"
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        """Insert *interval* under identifier *ident* and return the identifier.

        Raises :class:`DuplicateIntervalError` if *ident* is already
        present.  Equality predicates are inserted as degenerate point
        intervals (``Interval.point(c)``).
        """
        if ident is None:
            ident = next(self._ident_counter)
            while ident in self._intervals:
                ident = next(self._ident_counter)
        if ident in self._intervals:
            raise DuplicateIntervalError(ident)
        self._check_mutable()
        self.epoch += 1
        self._intervals[ident] = interval
        self._marker_locs[ident] = set()
        for value in self._node_values(interval):
            self._endpoint_idents.setdefault(value, set()).add(ident)
        try:
            self._place_markers(ident, interval)
        except BaseException:
            self._rollback_insert(ident, interval)
            raise
        return ident

    def _rollback_insert(self, ident: Hashable, interval: Interval) -> None:
        """Undo a partially applied :meth:`insert` after a mid-placement failure.

        The marker registry records exactly the markers placed so far
        (wherever rotation fixups moved them), so removal is exact; any
        endpoint node created for this interval alone is structurally
        deleted again, leaving the tree as it was before the insert.
        """
        self._remove_markers(ident)
        self._marker_locs.pop(ident, None)
        self._intervals.pop(ident, None)
        for value in self._node_values(interval):
            anchored = self._endpoint_idents.get(value)
            if anchored is None:
                continue
            anchored.discard(ident)
            if not anchored:
                del self._endpoint_idents[value]
                if self._find_node(value) is not None:
                    self._delete_endpoint_node(value)

    def delete(self, ident: Hashable) -> None:
        """Remove the interval registered under *ident*.

        All of the interval's markers are removed, and any endpoint node
        no longer referenced by a remaining interval is structurally
        deleted from the tree (the paper's Section 4.2 deletion
        procedure).
        """
        self._check_mutable()
        try:
            interval = self._intervals.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        self.epoch += 1
        self._remove_markers(ident)
        del self._marker_locs[ident]
        for value in self._node_values(interval):
            anchored = self._endpoint_idents[value]
            anchored.discard(ident)
            if not anchored:
                del self._endpoint_idents[value]
                self._delete_endpoint_node(value)

    def bulk_load(
        self, items: Iterable[Tuple[Interval, Optional[Hashable]]]
    ) -> List[Hashable]:
        """Load many intervals into an **empty** tree in one pass.

        *items* is an iterable of ``(interval, ident)`` pairs (``None``
        idents get fresh integers, as with :meth:`insert`).  The distinct
        endpoint values are sorted once and linked into a perfectly
        height-balanced tree by midpoint recursion; markers are then
        placed by replaying ``addLeft``/``addRight`` in *index space*:
        every endpoint is a position in the sorted array, the midpoint
        structure makes each search path a pure binary chop over index
        ranges, and the sorted order turns every value comparison the
        marker rules need (``contains``, ``right_bound <= high``,
        sentinel checks) into an integer index comparison.  No nodes are
        created, no rotations or retraces run, and no generic
        comparisons fire — which is where the speedup over N incremental
        :meth:`insert` calls comes from.

        The midpoint split leaves sibling subtree heights differing by
        at most one, so the result satisfies the AVL balance rule as
        built; the red-black variant recolours it in one extra pass.

        All-or-nothing: on any failure (including an injected fault at
        the ``tree.bulk_load`` site) the tree is reset to empty before
        the exception propagates.  Raises :class:`TreeError` if the tree
        is not empty, and :class:`DuplicateIntervalError` on duplicate
        identifiers within *items*.  Returns the identifiers in input
        order.
        """
        self._check_mutable()
        if self._intervals or self._root is not None:
            raise TreeError("bulk_load requires an empty tree")
        self.epoch += 1
        resolved: List[Tuple[Hashable, Interval]] = []
        intervals_map = self._intervals
        marker_locs = self._marker_locs
        endpoint_idents = self._endpoint_idents
        try:
            for interval, ident in items:
                if ident is None:
                    ident = next(self._ident_counter)
                    while ident in intervals_map:
                        ident = next(self._ident_counter)
                if ident in intervals_map:
                    raise DuplicateIntervalError(ident)
                intervals_map[ident] = interval
                marker_locs[ident] = set()
                # inlined _node_values: anchor the ident at both
                # endpoints (once, for a point interval)
                low, high = interval.low, interval.high
                anchored = endpoint_idents.get(low)
                if anchored is None:
                    endpoint_idents[low] = {ident}
                else:
                    anchored.add(ident)
                if high != low:
                    anchored = endpoint_idents.get(high)
                    if anchored is None:
                        endpoint_idents[high] = {ident}
                    else:
                        anchored.add(ident)
                resolved.append((ident, interval))
            ordered = self._sorted_endpoint_values()
            nodes: List[IBSNode] = [None] * len(ordered)  # type: ignore[list-item]
            self._root = self._build_balanced(ordered, nodes)
            self._after_bulk_build()
            fault_point("tree.bulk_load")
            self._bulk_place_markers(ordered, nodes, resolved)
        except BaseException:
            # The tree was empty on entry, so wholesale reset is an
            # exact rollback.
            self.clear()
            raise
        return [ident for ident, _ in resolved]

    def _bulk_place_markers(
        self,
        ordered: List[Any],
        nodes: List[IBSNode],
        resolved: List[Tuple[Hashable, Interval]],
    ) -> None:
        """Index-space ``addLeft``/``addRight`` over the midpoint build.

        The midpoint recursion makes node positions deterministic: the
        node for ``ordered[m]`` is reached by binary-chopping ``[l, h]``
        index ranges, so the search path for an endpoint is a loop over
        integers.  Both interval endpoints are themselves in *ordered*,
        so each marker-rule comparison maps to an index comparison:

        * ``value < low``            ⟺  ``m < lo_i``
        * ``interval.contains(value)``  (for a path value strictly
          inside) ⟺ ``m < hi_i`` or (``m == hi_i`` and the high end is
          inclusive), plus "not a sentinel" via the sentinel indices
        * ``right_bound <= high``    ⟺  ``rb_i <= hi_i`` (an initial
          ``right_bound`` of +inf means "only when high is +inf")

        Three exact simplifications make the loop cheap:

        * Until the two search paths fork (some ``m`` with
          ``lo_i <= m <= hi_i``), no mark condition can hold, and the
          boundary flags keep their initial values — the shared prefix
          is a bare binary search.
        * On the post-fork left descent every case-3 node satisfies
          ``m <= hi_i``, so its right-bound flag is simply "not the
          first step unless high is +inf"; symmetrically for the right
          descent's left-bound flag.
        * :meth:`_add_mark` is unrolled into direct set inserts because
          this loop runs a hundred thousand times for a 10k bulk load.
        """
        n = len(ordered)
        if n == 0:
            return
        index_of = {value: i for i, value in enumerate(ordered)}
        # sentinel positions; -7 is an impossible index meaning "absent"
        iminus = 0 if ordered[0] is MINUS_INF else -7
        iplus = n - 1 if ordered[n - 1] is PLUS_INF else -7
        # Pre-bound slot adders and shared (node, slot) location tuples:
        # each mark is then two bound-method calls and one list index,
        # with no per-mark attribute lookups or tuple allocations.
        lt_add = [node.slots[LT].add for node in nodes]
        eq_add = [node.slots[EQ].add for node in nodes]
        gt_add = [node.slots[GT].add for node in nodes]
        lt_loc = [(node, LT) for node in nodes]
        eq_loc = [(node, EQ) for node in nodes]
        gt_loc = [(node, GT) for node in nodes]
        marker_locs = self._marker_locs
        top = n - 1
        for ident, interval in resolved:
            lo_i = index_of[interval.low]
            hi_i = index_of[interval.high]
            low_inc = interval.low_inclusive
            high_inc = interval.high_inclusive
            locs_add = marker_locs[ident].add
            # -- shared prefix: pure binary chop to the fork -----------
            l, h = 0, top
            while True:
                m = (l + h) >> 1
                if m < lo_i:
                    l = m + 1
                elif m > hi_i:
                    h = m - 1
                else:
                    break
            fork_l, fork_h = l, h
            # -- addLeft suffix: fork down to lo_i ---------------------
            rb_le_high = hi_i == iplus  # unchanged through the prefix
            while True:
                m = (l + h) >> 1
                if m < lo_i:
                    l = m + 1
                elif m > lo_i:
                    if m != iplus:
                        if m < hi_i or high_inc:
                            eq_add[m](ident)
                            locs_add(eq_loc[m])
                        if rb_le_high:
                            gt_add[m](ident)
                            locs_add(gt_loc[m])
                    rb_le_high = True  # lo_i < m <= hi_i after the fork
                    h = m - 1
                else:
                    if rb_le_high and m != iplus:
                        gt_add[m](ident)
                        locs_add(gt_loc[m])
                    if low_inc:
                        eq_add[m](ident)
                        locs_add(eq_loc[m])
                    break
            # -- addRight suffix: fork down to hi_i --------------------
            l, h = fork_l, fork_h
            lb_ge_low = lo_i == iminus  # unchanged through the prefix
            while True:
                m = (l + h) >> 1
                if m > hi_i:
                    h = m - 1
                elif m < hi_i:
                    if m != iminus:
                        if m > lo_i or low_inc:
                            eq_add[m](ident)
                            locs_add(eq_loc[m])
                        if lb_ge_low:
                            lt_add[m](ident)
                            locs_add(lt_loc[m])
                    lb_ge_low = True  # lo_i <= m < hi_i after the fork
                    l = m + 1
                else:
                    if lb_ge_low and m != iminus:
                        lt_add[m](ident)
                        locs_add(lt_loc[m])
                    if high_inc:
                        eq_add[m](ident)
                        locs_add(eq_loc[m])
                    break

    def _sorted_endpoint_values(self) -> List[Any]:
        """Distinct endpoint values in tree order, sentinels at the ends."""
        finite = sorted(v for v in self._endpoint_idents if not is_infinite(v))
        ordered: List[Any] = []
        if MINUS_INF in self._endpoint_idents:
            ordered.append(MINUS_INF)
        ordered.extend(finite)
        if PLUS_INF in self._endpoint_idents:
            ordered.append(PLUS_INF)
        return ordered

    def _build_balanced(
        self, ordered: List[Any], nodes: List[IBSNode]
    ) -> Optional[IBSNode]:
        """Link *ordered* values into a height-balanced node structure.

        Fills ``nodes[i]`` with the node holding ``ordered[i]`` so the
        bulk marker pass can address nodes by sorted position.
        """

        def build(lo: int, hi: int, parent: Optional[IBSNode]) -> Optional[IBSNode]:
            if lo > hi:
                return None
            mid = (lo + hi) // 2
            node = IBSNode(ordered[mid], parent=parent)
            nodes[mid] = node
            node.left = build(lo, mid - 1, node)
            node.right = build(mid + 1, hi, node)
            # a midpoint-balanced subtree over k values has height
            # floor(log2 k) + 1 = k.bit_length()
            node.height = (hi - lo + 1).bit_length()
            return node

        return build(0, len(ordered) - 1, None)

    def _after_bulk_build(self) -> None:
        """Hook run after :meth:`bulk_load` links the balanced structure.

        Heights are already exact and the midpoint build satisfies the
        AVL rule, so the base and AVL trees need nothing; the red-black
        variant recolours here.
        """

    def stab(self, x: Any) -> Set[Hashable]:
        """Return the identifiers of all intervals containing the value *x*.

        This is the paper's ``findIntervals`` procedure: descend the
        search path for *x*, accumulating the ``<`` sets when branching
        left, the ``>`` sets when branching right, and the ``=`` set on
        an exact value match.
        """
        result: Set[Hashable] = set()
        node = self._root
        while node is not None:
            value = node.value
            if x == value:
                result |= node.slots[EQ]
                break
            if x < value:
                result |= node.slots[LT]
                node = node.left
            else:
                result |= node.slots[GT]
                node = node.right
        return result

    # The paper's name for the stabbing query.
    find_intervals = stab

    def stab_into(self, x: Any, out: Set[Hashable]) -> Set[Hashable]:
        """Union the identifiers of all intervals containing *x* into *out*.

        Same descent as :meth:`stab`, but accumulating into a
        caller-provided set instead of allocating a fresh one — the
        matcher probes several attribute trees per tuple and wants one
        candidate set across all of them.  All-or-nothing: if the
        descent raises ``TypeError`` (incomparable value), *out* is
        left untouched.
        """
        acc: List[Set[Hashable]] = []
        node = self._root
        while node is not None:
            value = node.value
            if x == value:
                acc.append(node.slots[EQ])
                break
            if x < value:
                acc.append(node.slots[LT])
                node = node.left
            else:
                acc.append(node.slots[GT])
                node = node.right
        out.update(*acc)
        return out

    def stab_many(self, values: Any) -> Dict[Any, Optional[Set[Hashable]]]:
        """Stab several values in one shared-prefix descent.

        Returns ``{value: idents}`` with one entry per distinct input
        value.  Values incomparable with a node value on their search
        path — where a lone :meth:`stab` would raise ``TypeError`` —
        map to ``None`` instead, and so does ``None`` itself,
        unconditionally: SQL NULL stabs nothing, on empty and non-empty
        trees alike (the NULL rule, shared with
        :class:`~repro.core.flat_ibs_tree.FlatIBSTree` and the match
        pipeline's pre-probe skip).  Unhashable values raise
        ``TypeError`` — the result is keyed by value.  Sorted inputs
        keep sibling groups adjacent, but any iterable works.

        The descent partitions the value group at each node, so marker
        sets along a shared search-path prefix (the root's above all)
        are unioned once per *group* rather than once per value.
        """
        out: Dict[Any, Optional[Set[Hashable]]] = {}
        group: List[Any] = []
        for v in values:
            if v not in out:
                out[v] = None  # pre-claim; overwritten on success
                if v is None:
                    continue  # NULL rule: NULL stabs nothing, no descent
                group.append(v)
        if not group:
            return out
        stack: List[Tuple[Optional[IBSNode], List[Any], Tuple[Set[Hashable], ...]]] = [
            (self._root, group, ())
        ]
        while stack:
            node, vals, acc = stack.pop()
            if node is None:
                result = set().union(*acc) if acc else set()
                for v in vals:
                    out[v] = set(result)
                continue
            value = node.value
            less: List[Any] = []
            greater: List[Any] = []
            for x in vals:
                try:
                    if x == value:
                        out[x] = set().union(*acc, node.slots[EQ])
                    elif x < value:
                        less.append(x)
                    else:
                        greater.append(x)
                except TypeError:
                    pass  # incomparable: stays None, as stab() raising
            if less:
                stack.append((node.left, less, acc + (node.slots[LT],)))
            if greater:
                stack.append((node.right, greater, acc + (node.slots[GT],)))
        return out

    def overlapping(self, query: Interval) -> Set[Hashable]:
        """Identifiers of all intervals overlapping the *query* interval.

        An extension beyond the paper's point queries (useful for
        predicate subsumption checks and windowed monitoring): an
        interval overlaps the query iff it contains one of the query's
        finite endpoints, or has one of its own endpoints inside the
        query range — both checks the tree answers in
        ``O(log N + nodes in range + L)``.
        """
        candidates: Set[Hashable] = set()
        if not is_infinite(query.low):
            candidates |= self.stab(query.low)
        if not is_infinite(query.high):
            candidates |= self.stab(query.high)
        for value in self._values_in_range(query.low, query.high):
            candidates |= self._endpoint_idents.get(value, set())
        return {
            ident
            for ident in candidates
            if self._intervals[ident].overlaps(query)
        }

    # Alias matching the stab() naming convention.
    stab_interval = overlapping

    def _values_in_range(self, low: Any, high: Any) -> Iterator[Any]:
        """Node values v with low <= v <= high, in-order (sentinel-aware)."""
        node = self._root
        stack: List[IBSNode] = []
        while stack or node is not None:
            if node is not None:
                if _strictly_less(node.value, low):
                    node = node.right  # whole left subtree below range
                else:
                    stack.append(node)
                    node = node.left
                continue
            node = stack.pop()
            above = _strictly_less(high, node.value)
            if not above:
                if not _strictly_less(node.value, low):
                    yield node.value
                node = node.right
            else:
                node = None  # everything further right is above range

    def get(self, ident: Hashable) -> Interval:
        """Return the interval registered under *ident*."""
        try:
            return self._intervals[ident]
        except KeyError:
            raise UnknownIntervalError(ident) from None

    def __len__(self) -> int:
        """Number of intervals currently indexed."""
        return len(self._intervals)

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._intervals

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._intervals)

    def items(self) -> Iterator[Tuple[Hashable, Interval]]:
        """Iterate over ``(identifier, interval)`` pairs."""
        return iter(self._intervals.items())

    def clear(self) -> None:
        """Remove every interval and node."""
        self._check_mutable()
        self.epoch += 1
        self._root = None
        self._intervals.clear()
        self._marker_locs.clear()
        self._endpoint_idents.clear()

    # -- statistics (used by the Section 5.1 space experiments) --------

    @property
    def node_count(self) -> int:
        """Number of endpoint nodes in the tree."""
        return len(self._endpoint_idents)

    @property
    def marker_count(self) -> int:
        """Total number of markers across all node slots."""
        return sum(len(locs) for locs in self._marker_locs.values())

    @property
    def height(self) -> int:
        """Height of the tree (0 when empty)."""
        return self._root.height if self._root is not None else 0

    def markers_of(self, ident: Hashable) -> int:
        """Number of markers currently placed for *ident*."""
        try:
            return len(self._marker_locs[ident])
        except KeyError:
            raise UnknownIntervalError(ident) from None

    # ------------------------------------------------------------------
    # marker placement: the paper's addLeft / addRight procedures
    # ------------------------------------------------------------------

    @staticmethod
    def _node_values(interval: Interval) -> Set[Any]:
        """The tree-node values an interval's markers are anchored to.

        Open-ended intervals anchor to the infinity sentinels, exactly as
        the paper sets ``const1``/``const2`` to -inf/+inf.
        """
        return {interval.low, interval.high}

    def _place_markers(self, ident: Hashable, interval: Interval) -> None:
        """Run ``addLeft`` then ``addRight`` for *interval*.

        Each ``add*`` pass runs to completion — leaving a valid IBS-tree —
        before the post-insert hook fires, so a balancing subclass
        rotates only ever on a valid marker configuration.
        """
        created = self._add_left(ident, interval)
        if created is not None:
            self._after_endpoint_insert(created)
        fault_point("tree.insert")
        created = self._add_right(ident, interval)
        if created is not None:
            self._after_endpoint_insert(created)

    def _add_left(self, ident: Hashable, interval: Interval) -> Optional[IBSNode]:
        """Insert the left end of *interval*: the paper's ``addLeft``.

        Descends the search path for ``interval.low``, adding ``=`` marks
        on path nodes inside the interval and ``>`` marks on path nodes
        whose entire right subtree range lies inside the interval.
        Returns the endpoint node if one had to be created, else None.
        """
        low = interval.low
        high = interval.high
        created: Optional[IBSNode] = None
        node = self._root
        right_bound: Any = PLUS_INF  # value of rightUp(node), +inf if none
        if node is None:
            self._root = created = IBSNode(low)
            node = self._root
        while True:
            value = node.value
            if value == low or (is_infinite(low) and value is low):
                # Case 1: node holds the interval's left boundary.
                if right_bound <= high and value is not PLUS_INF:
                    self._add_mark(ident, node, GT)
                if interval.low_inclusive:
                    self._add_mark(ident, node, EQ)
                return created
            if value < low:
                # Case 2: keep searching in the right subtree.
                if node.right is None:
                    node.right = created = IBSNode(low, parent=node)
                node = node.right
                continue
            # Case 3: node value exceeds the boundary.
            if interval.contains(value):
                self._add_mark(ident, node, EQ)
            if right_bound <= high and value is not PLUS_INF:
                self._add_mark(ident, node, GT)
            right_bound = value
            if node.left is None:
                node.left = created = IBSNode(low, parent=node)
            node = node.left

    def _add_right(self, ident: Hashable, interval: Interval) -> Optional[IBSNode]:
        """Insert the right end of *interval*: symmetric to ``addLeft``."""
        low = interval.low
        high = interval.high
        created: Optional[IBSNode] = None
        node = self._root
        left_bound: Any = MINUS_INF  # value of leftUp(node), -inf if none
        if node is None:
            self._root = created = IBSNode(high)
            node = self._root
        while True:
            value = node.value
            if value == high or (is_infinite(high) and value is high):
                # Case 1: node holds the interval's right boundary.
                if left_bound >= low and value is not MINUS_INF:
                    self._add_mark(ident, node, LT)
                if interval.high_inclusive:
                    self._add_mark(ident, node, EQ)
                return created
            if value > high:
                # Case 2: keep searching in the left subtree.
                if node.left is None:
                    node.left = created = IBSNode(high, parent=node)
                node = node.left
                continue
            # Case 3: node value is below the boundary.
            if interval.contains(value):
                self._add_mark(ident, node, EQ)
            if left_bound >= low and value is not MINUS_INF:
                self._add_mark(ident, node, LT)
            left_bound = value
            if node.right is None:
                node.right = created = IBSNode(high, parent=node)
            node = node.right

    def _after_endpoint_insert(self, node: IBSNode) -> None:
        """Hook invoked after an endpoint node is inserted and marked.

        A freshly linked leaf needs no marker fixups of its own: any
        interval covering its value already covers it through an ancestor
        ``<``/``>`` mark on the search path.  The unbalanced tree just
        refreshes cached heights; the AVL variant retraces and rotates.
        """
        self._update_heights_upward(node.parent)

    @staticmethod
    def _update_heights_upward(node: Optional[IBSNode]) -> None:
        while node is not None:
            left_h = node.left.height if node.left is not None else 0
            right_h = node.right.height if node.right is not None else 0
            node.height = 1 + max(left_h, right_h)
            node = node.parent

    # -- marker bookkeeping ---------------------------------------------

    def _add_mark(self, ident: Hashable, node: IBSNode, slot: int) -> None:
        node.slots[slot].add(ident)
        self._marker_locs[ident].add((node, slot))

    def _remove_markers(self, ident: Hashable) -> None:
        """Remove every marker of *ident*, wherever rotations left them."""
        for node, slot in self._marker_locs[ident]:
            node.slots[slot].discard(ident)
        self._marker_locs[ident].clear()

    def _lift_markers(self, node: IBSNode, lifted: Dict[Hashable, Interval]) -> None:
        """Remove all markers of every interval marked on *node*.

        The affected intervals are accumulated into *lifted* so the
        caller can re-install them once the structural change is done.
        """
        idents = set().union(*node.slots)
        for ident in idents:
            if ident not in lifted:
                lifted[ident] = self._intervals[ident]
                self._remove_markers(ident)

    # ------------------------------------------------------------------
    # structural deletion of endpoint nodes
    # ------------------------------------------------------------------

    def _delete_endpoint_node(self, value: Any) -> None:
        """Remove the node holding *value* (no interval references it).

        Follows the paper's procedure: when the node has two children its
        value is swapped with its in-order predecessor (which, being the
        rightmost node of the left subtree, has no right child) and the
        predecessor position is spliced out.  Every interval with markers
        on an affected node is lifted out first and re-installed after,
        so the marker invariants are re-established from scratch exactly
        where the structure changed.
        """
        node = self._find_node(value)
        if node is None:
            raise TreeInvariantError(
                f"endpoint node for value {value!r} not found during delete"
            )
        lifted: Dict[Hashable, Interval] = {}
        self._lift_markers(node, lifted)
        if node.left is not None and node.right is not None:
            pred = node.left
            while pred.right is not None:
                pred = pred.right
            self._lift_markers(pred, lifted)
            node.value = pred.value
            node = pred  # splice out the (now markerless) predecessor slot
        self._splice(node)
        fault_point("tree.delete")
        for ident, interval in lifted.items():
            self._place_markers(ident, interval)

    def _find_node(self, value: Any) -> Optional[IBSNode]:
        node = self._root
        while node is not None:
            current = node.value
            if value == current or (is_infinite(value) and current is value):
                return node
            if is_infinite(current):
                node = node.right if current is MINUS_INF else node.left
            elif value < current:
                node = node.left
            else:
                node = node.right
        return None

    def _splice(self, node: IBSNode) -> None:
        """Unlink *node*, which has at most one child."""
        child = node.left if node.left is not None else node.right
        parent = node.parent
        if child is not None:
            child.parent = parent
        if parent is None:
            self._root = child
        elif parent.left is node:
            parent.left = child
        else:
            parent.right = child
        node.left = node.right = node.parent = None
        self._after_splice(parent)

    def _after_splice(self, parent: Optional[IBSNode]) -> None:
        """Hook invoked after a node is spliced out; AVL retraces here."""
        self._update_heights_upward(parent)

    # ------------------------------------------------------------------
    # validation (used by the test suite)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural and marker invariant; raise on violation.

        Checks performed:

        1. binary-search-tree ordering (strict, sentinels included);
        2. parent pointers and cached heights are consistent;
        3. marker soundness — each ``=`` mark's interval contains the
           node value; each ``<``/``>`` mark's interval covers the whole
           insertable range of the corresponding subtree;
        4. the marker registry agrees exactly with the node slots;
        5. endpoint reference counts agree with the stored intervals.

        (Completeness of stabbing queries is validated separately, by
        comparison with brute force, in the property-based tests.)
        """
        seen_locs: Dict[Hashable, Set[Tuple[IBSNode, int]]] = {
            ident: set() for ident in self._intervals
        }
        # None means "no bound on this side" (distinct from a sentinel
        # *value*: a node may legitimately hold -inf or +inf itself).
        self._validate_node(self._root, None, None, None, seen_locs)
        for ident, locs in seen_locs.items():
            if locs != self._marker_locs[ident]:
                raise TreeInvariantError(
                    f"marker registry out of sync for interval {ident!r}"
                )
        expected: Dict[Any, Set[Hashable]] = {}
        for ident, interval in self._intervals.items():
            for value in self._node_values(interval):
                expected.setdefault(value, set()).add(ident)
        if expected != self._endpoint_idents:
            raise TreeInvariantError("endpoint ident registry out of sync")

    def check_invariants(self) -> bool:
        """Public invariant check shared by every tree backend.

        Returns True when every structural and marker invariant holds;
        raises :class:`~repro.errors.TreeInvariantError` otherwise.
        Balanced variants extend :meth:`validate` with their balance
        rules, so this single entry point covers them all.
        """
        self.validate()
        return True

    def audit(self) -> List[str]:
        """Non-raising invariant check: a list of problem descriptions.

        An empty list means the tree is healthy.  Structural wreckage
        severe enough to crash the validator itself (link cycles,
        incomparable values, dangling registry entries) is reported as
        a problem rather than propagated, so callers can always audit
        a suspect tree without a try/except of their own.
        """
        try:
            self.validate()
        except TreeInvariantError as exc:
            return [str(exc)]
        except (RecursionError, TypeError, KeyError, IndexError, AttributeError) as exc:
            return [f"validator crashed: {type(exc).__name__}: {exc}"]
        return []

    def _validate_node(
        self,
        node: Optional[IBSNode],
        parent: Optional[IBSNode],
        low_bound: Any,
        high_bound: Any,
        seen_locs: Dict[Hashable, Set[Tuple[IBSNode, int]]],
    ) -> int:
        if node is None:
            return 0
        if node.parent is not parent:
            raise TreeInvariantError(f"bad parent pointer at node {node.value!r}")
        value = node.value
        low_ok = low_bound is None or _strictly_less(low_bound, value)
        high_ok = high_bound is None or _strictly_less(value, high_bound)
        if not (low_ok and high_ok):
            raise TreeInvariantError(
                f"BST ordering violated at node {value!r} "
                f"(bounds {low_bound!r}..{high_bound!r})"
            )
        for slot, idents in enumerate(node.slots):
            for ident in idents:
                if ident not in self._intervals:
                    raise TreeInvariantError(
                        f"stale marker {ident!r} at node {value!r}"
                    )
                seen_locs[ident].add((node, slot))
                interval = self._intervals[ident]
                if slot == EQ:
                    if not interval.contains(value):
                        raise TreeInvariantError(
                            f"unsound '=' marker {ident!r} at node {value!r}"
                        )
                elif slot == LT:
                    self._check_range_mark(ident, interval, low_bound, value)
                else:
                    self._check_range_mark(ident, interval, value, high_bound)
        left_h = self._validate_node(node.left, node, low_bound, value, seen_locs)
        right_h = self._validate_node(node.right, node, value, high_bound, seen_locs)
        height = 1 + max(left_h, right_h)
        if node.height != height:
            raise TreeInvariantError(f"stale height at node {value!r}")
        return height

    @staticmethod
    def _check_range_mark(
        ident: Hashable, interval: Interval, low: Any, high: Any
    ) -> None:
        """A ``<``/``>`` mark must cover the whole open range (low, high).

        ``low``/``high`` of None mean the range is unbounded on that side.
        """
        if low is None:
            low = MINUS_INF
        if high is None:
            high = PLUS_INF
        if not _strictly_less(low, high):
            return  # empty range: vacuously covered
        covered = Interval(low, high, False, False)
        if not interval.covers(covered):
            raise TreeInvariantError(
                f"unsound range marker {ident!r}: {interval} does not cover "
                f"open range ({low!r}, {high!r})"
            )

    # -- debugging helpers ----------------------------------------------

    def dump(self) -> str:
        """Return an indented textual rendering of the tree (for debugging)."""
        lines: List[str] = []

        def walk(node: Optional[IBSNode], depth: int) -> None:
            if node is None:
                return
            walk(node.right, depth + 1)
            sets = " ".join(
                f"{name}{{{','.join(sorted(map(str, s)))}}}"
                for name, s in zip(_SLOT_NAMES, node.slots)
                if s
            )
            lines.append("    " * depth + f"{node.value!r} {sets}".rstrip())
            walk(node.left, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)


def _strictly_less(a: Any, b: Any) -> bool:
    """Total-order strict comparison treating sentinels as extreme values."""
    if a is MINUS_INF:
        return b is not MINUS_INF
    if b is PLUS_INF:
        return a is not PLUS_INF
    if a is PLUS_INF or b is MINUS_INF:
        return False
    return a < b
