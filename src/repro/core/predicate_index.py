"""The paper's two-level predicate index (Figure 1).

Structure::

    inserted or modified tuples enter here
                    |
          hash on relation name
        /                       \\
    [relation R1]            [relation Rn]
      |- list of non-indexable predicates for Ri
      |- one IBS-tree per attribute with >= 1 indexable clause
      |       (each predicate's MOST SELECTIVE indexable clause
      |        is entered into the tree for its attribute)
      '- PREDICATES table: ident -> full predicate

Matching a tuple *t* of relation *R*:

1. hash on the relation name to find R's second-level index;
2. for every attribute of *t* that has an IBS-tree, stab the tree with
   t's value for that attribute, collecting *partial match* candidates;
3. add every non-indexable predicate of R as a candidate;
4. retrieve each candidate from the PREDICATES table and test the full
   conjunction against *t*; the survivors are the complete matches.

Step 4 is sound because a predicate is indexed under exactly one of its
clauses: if that clause does not match, the conjunction cannot match,
so skipping the predicate is safe; if it does match, the residual test
decides.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..errors import PredicateError, UnknownIntervalError
from ..predicates.clauses import IntervalClause
from ..predicates.predicate import Predicate
from .ibs_tree import IBSTree
from .selectivity import DefaultEstimator, SelectivityEstimator, choose_index_clause

__all__ = ["PredicateIndex", "MatchStatistics"]

TreeFactory = Callable[[], IBSTree]


class MatchStatistics:
    """Counters describing the work done by :meth:`PredicateIndex.match`.

    These feed the cost model of the paper's Section 5.2 (hash probes,
    per-attribute tree searches, partial matches requiring a residual
    test, and non-indexable predicates tested by brute force).
    """

    __slots__ = (
        "tuples_matched",
        "trees_searched",
        "partial_matches",
        "non_indexable_tested",
        "full_matches",
    )

    def __init__(self) -> None:
        self.tuples_matched = 0
        self.trees_searched = 0
        self.partial_matches = 0
        self.non_indexable_tested = 0
        self.full_matches = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.tuples_matched = 0
        self.trees_searched = 0
        self.partial_matches = 0
        self.non_indexable_tested = 0
        self.full_matches = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<MatchStatistics {body}>"


class _RelationIndex:
    """Second-level index for one relation (Figure 1, lower half)."""

    __slots__ = ("trees", "non_indexable", "indexed_under", "predicates")

    def __init__(self) -> None:
        #: attribute name -> IBS-tree over that attribute's clause intervals
        self.trees: Dict[str, IBSTree] = {}
        #: idents of predicates with no indexable clause
        self.non_indexable: Set[Hashable] = set()
        #: ident -> attributes whose trees hold the predicate's entry
        #: clause(s); a single attribute in the paper's scheme, possibly
        #: several under multi-clause indexing
        self.indexed_under: Dict[Hashable, Tuple[str, ...]] = {}
        #: the PREDICATES table: ident -> full predicate
        self.predicates: Dict[Hashable, Predicate] = {}


class PredicateIndex:
    """Figure 1: hash on relation name + per-attribute IBS-trees.

    Parameters
    ----------
    tree_factory:
        Constructor for the per-attribute interval index.  Defaults to
        the unbalanced :class:`~repro.core.ibs_tree.IBSTree` (as in the
        paper's measurements); pass
        :class:`~repro.core.avl_ibs_tree.AVLIBSTree` for guaranteed
        balance, or any object with the same ``insert/delete/stab``
        interface (see :mod:`repro.baselines`).
    estimator:
        Selectivity estimator used to pick each predicate's entry
        clause; defaults to the System R style constants.
    multi_clause:
        The paper indexes exactly **one** clause per predicate — the
        most selective — and relies on the residual test for the rest.
        With ``multi_clause=True`` every indexable clause enters its
        attribute's tree and a predicate is a candidate only when
        *all* of its indexed clauses match (set intersection): fewer
        residual tests at the price of more tree probes and markers.
        The ABL4 benchmark quantifies the trade-off the paper chose.
    """

    #: Strategy name (matches the PredicateMatcher convention).
    name = "ibs"

    def __init__(
        self,
        tree_factory: TreeFactory = IBSTree,
        estimator: Optional[SelectivityEstimator] = None,
        multi_clause: bool = False,
    ):
        self._tree_factory = tree_factory
        self._estimator = estimator or DefaultEstimator()
        self._multi_clause = bool(multi_clause)
        self._relations: Dict[str, _RelationIndex] = {}
        self._relation_of: Dict[Hashable, str] = {}
        self.stats = MatchStatistics()

    # -- registration -------------------------------------------------------

    def add(self, predicate: Predicate) -> Hashable:
        """Index *predicate*; returns its identifier.

        The predicate is normalized first (same-attribute interval
        clauses merged); a contradictory predicate is rejected since it
        can never match.
        """
        normalized = predicate.normalized()
        if normalized is None:
            raise PredicateError(
                f"predicate {predicate} is unsatisfiable and cannot be indexed"
            )
        ident = normalized.ident
        if ident in self._relation_of:
            raise PredicateError(f"predicate ident {ident!r} already indexed")
        rel_index = self._relations.setdefault(normalized.relation, _RelationIndex())
        if self._multi_clause:
            entry_clauses = list(normalized.indexable_clauses())
        else:
            chosen = choose_index_clause(normalized, self._estimator)
            entry_clauses = [chosen] if chosen is not None else []
        if not entry_clauses:
            rel_index.non_indexable.add(ident)
        else:
            for clause in entry_clauses:
                tree = rel_index.trees.get(clause.attribute)
                if tree is None:
                    tree = rel_index.trees[clause.attribute] = self._tree_factory()
                tree.insert(clause.interval, ident)
            rel_index.indexed_under[ident] = tuple(
                clause.attribute for clause in entry_clauses
            )
        rel_index.predicates[ident] = normalized
        self._relation_of[ident] = normalized.relation
        return ident

    def remove(self, ident: Hashable) -> Predicate:
        """Un-index and return the predicate registered under *ident*."""
        try:
            relation = self._relation_of.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        rel_index = self._relations[relation]
        predicate = rel_index.predicates.pop(ident)
        attributes = rel_index.indexed_under.pop(ident, None)
        if attributes is None:
            rel_index.non_indexable.discard(ident)
        else:
            for attribute in attributes:
                tree = rel_index.trees[attribute]
                tree.delete(ident)
                if not tree:
                    del rel_index.trees[attribute]
        if not rel_index.predicates:
            del self._relations[relation]
        return predicate

    # -- matching ----------------------------------------------------------

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        """All predicates of *relation* that fully match the tuple."""
        return [
            pred
            for pred, _ in self.match_with_candidates(relation, tup)
            if pred is not None
        ]

    def match_idents(self, relation: str, tup: Mapping[str, Any]) -> Set[Hashable]:
        """Identifiers of all fully matching predicates."""
        return {
            pred.ident
            for pred, _ in self.match_with_candidates(relation, tup)
            if pred is not None
        }

    def match_with_candidates(
        self, relation: str, tup: Mapping[str, Any]
    ) -> Iterator[Tuple[Optional[Predicate], Hashable]]:
        """Yield ``(predicate_or_None, ident)`` for each candidate.

        A candidate whose residual test fails yields ``(None, ident)``;
        a full match yields the predicate.  Exposed so benchmarks can
        count partial matches exactly as the cost model does.
        """
        self.stats.tuples_matched += 1
        rel_index = self._relations.get(relation)
        if rel_index is None:
            return
        if self._multi_clause:
            candidates = self._intersect_candidates(rel_index, tup)
        else:
            candidates = set()
            for attribute, tree in rel_index.trees.items():
                value = tup.get(attribute)
                if value is None:
                    continue  # NULL matches no clause: no tree entry applies
                self.stats.trees_searched += 1
                try:
                    candidates |= tree.stab(value)
                except TypeError:
                    # the value's type is incomparable with this
                    # attribute's indexed bounds (mixed-domain data): no
                    # interval clause on this attribute can match it
                    continue
        self.stats.partial_matches += len(candidates)
        self.stats.non_indexable_tested += len(rel_index.non_indexable)
        candidates |= rel_index.non_indexable
        for ident in candidates:
            predicate = rel_index.predicates[ident]
            if predicate.matches(tup):
                self.stats.full_matches += 1
                yield predicate, ident
            else:
                yield None, ident

    def _intersect_candidates(
        self, rel_index: _RelationIndex, tup: Mapping[str, Any]
    ) -> Set[Hashable]:
        """Multi-clause candidates: hit in *every* indexed attribute.

        An ident is a candidate only if every tree it is indexed under
        was probed and reported it — a NULL or incomparable value in
        any indexed attribute disqualifies the predicate outright
        (that clause cannot match).
        """
        hits: Dict[Hashable, int] = {}
        probed: Set[str] = set()
        for attribute, tree in rel_index.trees.items():
            value = tup.get(attribute)
            if value is None:
                continue
            self.stats.trees_searched += 1
            try:
                stabbed = tree.stab(value)
            except TypeError:
                continue
            probed.add(attribute)
            for ident in stabbed:
                hits[ident] = hits.get(ident, 0) + 1
        candidates: Set[Hashable] = set()
        for ident, count in hits.items():
            attributes = rel_index.indexed_under[ident]
            if count == len(attributes) and all(a in probed for a in attributes):
                candidates.add(ident)
        return candidates

    # -- introspection ---------------------------------------------------------

    def get(self, ident: Hashable) -> Predicate:
        """Return the predicate registered under *ident*."""
        try:
            relation = self._relation_of[ident]
        except KeyError:
            raise UnknownIntervalError(ident) from None
        return self._relations[relation].predicates[ident]

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._relation_of

    def __len__(self) -> int:
        """Total number of indexed predicates across all relations."""
        return len(self._relation_of)

    def predicates_for(self, relation: str) -> List[Predicate]:
        """All predicates registered for *relation*."""
        rel_index = self._relations.get(relation)
        if rel_index is None:
            return []
        return list(rel_index.predicates.values())

    def relations(self) -> List[str]:
        """Relations with at least one registered predicate."""
        return list(self._relations)

    def indexed_attribute(self, ident: Hashable) -> Optional[str]:
        """The (first) attribute whose tree holds this predicate, or None."""
        attributes = self.indexed_attributes(ident)
        return attributes[0] if attributes else None

    def indexed_attributes(self, ident: Hashable) -> Tuple[str, ...]:
        """Every attribute whose tree holds this predicate (may be empty)."""
        relation = self._relation_of.get(ident)
        if relation is None:
            raise UnknownIntervalError(ident)
        return self._relations[relation].indexed_under.get(ident, ())

    def tree_for(self, relation: str, attribute: str) -> Optional[IBSTree]:
        """The IBS-tree for ``relation.attribute``, if one exists."""
        rel_index = self._relations.get(relation)
        if rel_index is None:
            return None
        return rel_index.trees.get(attribute)

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Structural summary per relation (for reports and debugging)."""
        summary: Dict[str, Dict[str, Any]] = {}
        for relation, rel_index in self._relations.items():
            summary[relation] = {
                "predicates": len(rel_index.predicates),
                "non_indexable": len(rel_index.non_indexable),
                "trees": {
                    attr: len(tree) for attr, tree in rel_index.trees.items()
                },
            }
        return summary

    def __repr__(self) -> str:
        return f"<PredicateIndex {len(self)} predicates over {len(self._relations)} relations>"
