"""The paper's two-level predicate index (Figure 1).

Structure::

    inserted or modified tuples enter here
                    |
          hash on relation name
        /                       \\
    [relation R1]            [relation Rn]
      |- list of non-indexable predicates for Ri
      |- one IBS-tree per attribute with >= 1 indexable clause
      |       (each predicate's MOST SELECTIVE indexable clause
      |        is entered into the tree for its attribute)
      '- PREDICATES table: ident -> full predicate

Matching a tuple *t* of relation *R*:

1. hash on the relation name to find R's second-level index;
2. for every attribute of *t* that has an IBS-tree, stab the tree with
   t's value for that attribute, collecting *partial match* candidates;
3. add every non-indexable predicate of R as a candidate;
4. retrieve each candidate from the PREDICATES table and test the full
   conjunction against *t*; the survivors are the complete matches.

Step 4 is sound because a predicate is indexed under exactly one of its
clauses: if that clause does not match, the conjunction cannot match,
so skipping the predicate is safe; if it does match, the residual test
decides.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Set,
    Tuple,
)

from ..errors import PredicateError, TreeInvariantError, UnknownIntervalError
from ..predicates.clauses import FunctionClause, IntervalClause
from ..predicates.predicate import Predicate
from .ibs_tree import IBSTree
from .intervals import MINUS_INF, PLUS_INF, is_infinite
from .selectivity import (
    DefaultEstimator,
    SelectivityEstimator,
    choose_index_clause,
    rank_index_clauses,
)

__all__ = ["PredicateIndex", "MatchStatistics"]

TreeFactory = Callable[[], IBSTree]


class _Unbatchable(Exception):
    """Internal: a batch contains values the batched path cannot handle
    (e.g. unhashable attribute values); fall back to per-tuple match."""


class MatchStatistics:
    """Counters describing the work done by :meth:`PredicateIndex.match`.

    These feed the cost model of the paper's Section 5.2 (hash probes,
    per-attribute tree searches, partial matches requiring a residual
    test, and non-indexable predicates tested by brute force).
    """

    __slots__ = (
        "tuples_matched",
        "trees_searched",
        "partial_matches",
        "non_indexable_tested",
        "full_matches",
        "batches_matched",
        "residual_memo_hits",
        "stab_cache_hits",
        "clause_migrations",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters."""
        self.tuples_matched = 0
        self.trees_searched = 0
        self.partial_matches = 0
        self.non_indexable_tested = 0
        self.full_matches = 0
        self.batches_matched = 0
        self.residual_memo_hits = 0
        self.stab_cache_hits = 0
        self.clause_migrations = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<MatchStatistics {body}>"


class _RelationIndex:
    """Second-level index for one relation (Figure 1, lower half)."""

    __slots__ = (
        "trees",
        "non_indexable",
        "indexed_under",
        "predicates",
        "residuals",
        "stab_cache",
        "epoch_floor",
    )

    def __init__(self) -> None:
        #: attribute name -> IBS-tree over that attribute's clause intervals
        self.trees: Dict[str, IBSTree] = {}
        #: idents of predicates with no indexable clause
        self.non_indexable: Set[Hashable] = set()
        #: ident -> attributes whose trees hold the predicate's entry
        #: clause(s); a single attribute in the paper's scheme, possibly
        #: several under multi-clause indexing
        self.indexed_under: Dict[Hashable, Tuple[str, ...]] = {}
        #: the PREDICATES table: ident -> full predicate
        self.predicates: Dict[Hashable, Predicate] = {}
        #: ident -> compiled residual evaluator (built lazily by
        #: match_batch); see :func:`_compile_residual`
        self.residuals: Dict[Hashable, Tuple[Any, ...]] = {}
        #: LRU stab cache: ``(attribute, tree_epoch, value) ->
        #: frozenset(idents)``.  Because the tree's epoch is part of
        #: the key, a mutation invalidates every prior entry *by key
        #: mismatch* — no scan — and stale entries age out of the LRU.
        #: Cleared only when the tree map itself changes shape (a tree
        #: created or dropped), since a fresh tree restarts its epochs.
        #: ``freeze()`` replaces it with a plain ``dict`` (insertion
        #: order preserved, no LRU methods needed) so frozen-mode
        #: lock-free readers only ever do GIL-atomic dict get/set.
        self.stab_cache: "MutableMapping[Tuple[str, int, Any], frozenset]" = (
            OrderedDict()
        )
        #: lowest epoch any *future* tree of this relation may carry.
        #: Raised past a tree's last epoch whenever that tree is dropped
        #: (remove/rollback/migration/rebuild), and seeded into every
        #: fresh tree, so ``(attribute, tree_epoch)`` pairs are never
        #: reused across tree generations — epoch-keyed caches and
        #: epoch-snapshot readers can rely on monotonicity.
        self.epoch_floor: int = 0


class PredicateIndex:
    """Figure 1: hash on relation name + per-attribute IBS-trees.

    Parameters
    ----------
    tree_factory:
        Constructor for the per-attribute interval index.  Defaults to
        the unbalanced :class:`~repro.core.ibs_tree.IBSTree` (as in the
        paper's measurements); pass
        :class:`~repro.core.avl_ibs_tree.AVLIBSTree` for guaranteed
        balance, or any object with the same ``insert/delete/stab``
        interface (see :mod:`repro.baselines`).
    estimator:
        Selectivity estimator used to pick each predicate's entry
        clause; defaults to the System R style constants.
    multi_clause:
        The paper indexes exactly **one** clause per predicate — the
        most selective — and relies on the residual test for the rest.
        With ``multi_clause=True`` every indexable clause enters its
        attribute's tree and a predicate is a candidate only when
        *all* of its indexed clauses match (set intersection): fewer
        residual tests at the price of more tree probes and markers.
        The ABL4 benchmark quantifies the trade-off the paper chose.
    stab_cache_size:
        Capacity of the per-relation LRU stab cache, keyed on
        ``(attribute, tree_epoch, value)``.  Every tree mutation bumps
        the tree's epoch, so entries never need invalidating — a stale
        key simply stops being looked up and ages out.  Duplicate-heavy
        (OLTP-style) tuple streams answer repeated stabs from the cache
        instead of descending the tree.  ``0`` (the default) disables
        caching.
    adaptive:
        Record observed entry-clause feedback (tuples seen, candidates
        admitted per predicate) during :meth:`match` / :meth:`match_batch`,
        enabling :meth:`retune` to migrate a predicate's entry clause
        to a different attribute tree when the static estimate behind
        the original choice turns out wrong on live data.  The paper
        picks the "most selective clause" once, from a-priori
        estimates; this closes the loop with measured selectivities.
    min_feedback_tuples:
        Minimum observed tuples per relation before a migration
        decision may be made (guards against noise on tiny samples).
    migration_ratio:
        Migrate only when the best alternative clause's estimated
        selectivity is below ``observed * migration_ratio`` — i.e. the
        alternative must promise a decisive improvement, not a tie.
    auto_retune_interval:
        When set (and ``adaptive``), :meth:`retune` runs automatically
        every N matched tuples; ``None`` leaves retuning manual.
    """

    #: Strategy name (matches the PredicateMatcher convention).
    name = "ibs"

    def __init__(
        self,
        tree_factory: TreeFactory = IBSTree,
        estimator: Optional[SelectivityEstimator] = None,
        multi_clause: bool = False,
        stab_cache_size: int = 0,
        adaptive: bool = False,
        min_feedback_tuples: int = 256,
        migration_ratio: float = 0.5,
        auto_retune_interval: Optional[int] = None,
    ):
        self._tree_factory = tree_factory
        self._estimator = estimator or DefaultEstimator()
        self._multi_clause = bool(multi_clause)
        self._stab_cache_size = int(stab_cache_size)
        self._adaptive = bool(adaptive)
        self._migration_ratio = float(migration_ratio)
        self._auto_retune_interval = auto_retune_interval
        self._tuples_since_retune = 0
        # Imported lazily: repro.core must stay importable before
        # repro.db finishes initialising (db imports core).
        from ..db.statistics import EntryClauseFeedback

        #: Observed entry-clause selectivity counters (see
        #: :class:`~repro.db.statistics.EntryClauseFeedback`); populated
        #: only when ``adaptive`` is set.
        self.feedback = EntryClauseFeedback(min_samples=min_feedback_tuples)
        self._relations: Dict[str, _RelationIndex] = {}
        self._relation_of: Dict[Hashable, str] = {}
        self.stats = MatchStatistics()
        self._frozen = False
        #: LRU maintenance on the stab cache (move-to-end on hit, evict
        #: on overflow).  :meth:`freeze` turns it off: a frozen index is
        #: read by many threads at once, and the only GIL-safe cache
        #: discipline is append-only — plain ``dict`` get/set with no
        #: reordering and no eviction (a concurrent ``move_to_end`` /
        #: ``popitem`` pair can raise ``KeyError`` mid-read).
        self._cache_lru = True

    # -- tree lifecycle ----------------------------------------------------

    def _new_tree(self, rel_index: _RelationIndex) -> IBSTree:
        """Create a tree whose epochs continue from the relation's floor.

        Fresh backends start at epoch 0; without the floor a tree
        dropped at epoch 40 and recreated one mutation later would
        reissue epochs 1, 2, 3 … and an ``(attribute, tree_epoch)``
        cache key (or an epoch-snapshot reader) could silently confuse
        the two generations.
        """
        tree = self._tree_factory()
        floor = rel_index.epoch_floor
        if floor and hasattr(tree, "epoch"):
            tree.epoch = floor
        return tree

    @staticmethod
    def _retire_tree(rel_index: _RelationIndex, tree: Any) -> None:
        """Record a dropped tree's last epoch in the relation's floor."""
        epoch = getattr(tree, "epoch", None)
        if epoch is not None:
            rel_index.epoch_floor = max(rel_index.epoch_floor, epoch + 1)

    # -- snapshot support --------------------------------------------------

    def freeze(self) -> None:
        """Make the index permanently immutable.

        Every per-attribute tree is frozen (backends without a
        ``freeze`` method are skipped) and subsequent calls to
        :meth:`add`, :meth:`add_many`, :meth:`remove`, :meth:`retune`
        and :meth:`verify_and_rebuild` raise
        :class:`~repro.errors.PredicateError`.  Matching remains
        available — the epoch-snapshot layer (:mod:`repro.concurrency`)
        publishes frozen indexes that lock-free readers stab
        concurrently.  A frozen index intended for concurrent reads
        must be built with ``adaptive=False`` (the feedback counters
        mutate on the read path and are not synchronised), but the stab
        cache *may* stay on: freezing demotes it from LRU to
        append-only — hits skip the move-to-end touch, and inserts stop
        once the cache is full instead of evicting — and swaps the
        ``OrderedDict`` for a plain ``dict`` (odict inserts also splice
        a C-level linked list, which concurrent writers can corrupt),
        so every remaining cache operation is a single GIL-atomic
        ``dict`` access, and
        since nothing ever deletes a key from a frozen index's cache, a
        looked-up key cannot vanish mid-read.  Because frozen trees
        never bump their epochs, those cached stabs stay valid for the
        snapshot's whole lifetime — this is what lets an epoch-snapshot
        base keep serving cache hits across writes that would invalidate
        a mutable index's entire cache.  (Lazy residual compilation is
        likewise safe — per-key dict writes are atomic under the GIL and
        every thread computes the same value.)
        """
        self._frozen = True
        self._cache_lru = False
        for rel_index in self._relations.values():
            # Demote the LRU odict to a plain dict: frozen-mode readers
            # do bare get/set with no lock, and only plain-dict ops are
            # single GIL-atomic operations — OrderedDict.__setitem__
            # also appends to a C-level linked list (with Python-level
            # key hashing possibly interleaving), so concurrent inserts
            # could corrupt it.
            rel_index.stab_cache = dict(rel_index.stab_cache)
            for tree in rel_index.trees.values():
                freezer = getattr(tree, "freeze", None)
                if freezer is not None:
                    freezer()

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def _check_mutable(self) -> None:
        if self._frozen:
            raise PredicateError(
                "PredicateIndex is frozen (published in an epoch snapshot); "
                "build a successor index instead of mutating"
            )

    def tree_epochs(self, relation: str) -> Dict[str, int]:
        """Current ``attribute -> tree epoch`` map for *relation*.

        Publication hook for the epoch-snapshot layer and its checker:
        thanks to the per-relation epoch floor the values are monotone
        over the index's whole life, even across tree drop/recreate and
        :meth:`verify_and_rebuild`.  Unknown relations map to ``{}``.
        """
        rel_index = self._relations.get(relation)
        if rel_index is None:
            return {}
        return {
            attribute: getattr(tree, "epoch", 0)
            for attribute, tree in rel_index.trees.items()
        }

    # -- registration -------------------------------------------------------

    def add(self, predicate: Predicate) -> Hashable:
        """Index *predicate*; returns its identifier.

        The predicate is normalized first (same-attribute interval
        clauses merged); a contradictory predicate is rejected since it
        can never match.
        """
        self._check_mutable()
        normalized = predicate.normalized()
        if normalized is None:
            raise PredicateError(
                f"predicate {predicate} is unsatisfiable and cannot be indexed"
            )
        ident = normalized.ident
        if ident in self._relation_of:
            raise PredicateError(f"predicate ident {ident!r} already indexed")
        rel_index = self._relations.setdefault(normalized.relation, _RelationIndex())
        try:
            self._enter_clauses(rel_index, ident, normalized)
        except BaseException:
            # Atomic add: a failure while entering clauses (e.g. an
            # injected fault in a tree insert) must not leave the
            # predicate half-indexed.  Tree-level inserts roll
            # themselves back; here we undo entries in *other* trees
            # and drop anything this call created.
            self._rollback_add(normalized.relation, rel_index, ident)
            raise
        rel_index.predicates[ident] = normalized
        self._relation_of[ident] = normalized.relation
        return ident

    def add_many(self, predicates: Iterable[Predicate]) -> List[Hashable]:
        """Bulk-register *predicates*; returns their identifiers in order.

        Equivalent to ``[self.add(p) for p in predicates]`` but entry
        clauses destined for an attribute with **no existing tree** are
        collected and handed to the backend's :meth:`~IBSTree.bulk_load`
        in one pass — sorted endpoints, balanced structure, no per-insert
        rotations — which is how recovery and rule-set loading should
        register a large predicate population.  Clauses for attributes
        that already have a live tree are inserted incrementally (the
        tree is not rebuilt under its existing entries).

        Atomic: on any failure every predicate this call registered is
        removed again before the exception propagates.
        """
        self._check_mutable()
        normalized_list: List[Predicate] = []
        seen: Set[Hashable] = set()
        for predicate in predicates:
            normalized = predicate.normalized()
            if normalized is None:
                raise PredicateError(
                    f"predicate {predicate} is unsatisfiable and cannot be indexed"
                )
            ident = normalized.ident
            if ident in self._relation_of or ident in seen:
                raise PredicateError(f"predicate ident {ident!r} already indexed")
            seen.add(ident)
            normalized_list.append(normalized)
        by_relation: Dict[str, List[Predicate]] = {}
        for normalized in normalized_list:
            by_relation.setdefault(normalized.relation, []).append(normalized)
        added: List[Tuple[str, Hashable]] = []
        try:
            for relation, group in by_relation.items():
                rel_index = self._relations.setdefault(relation, _RelationIndex())
                fresh: Dict[str, List[Tuple[Any, Hashable]]] = {}
                for normalized in group:
                    ident = normalized.ident
                    rel_index.predicates[ident] = normalized
                    self._relation_of[ident] = relation
                    added.append((relation, ident))
                    entry_clauses = self._entry_clauses_of(normalized)
                    if not entry_clauses:
                        rel_index.non_indexable.add(ident)
                        continue
                    rel_index.indexed_under[ident] = tuple(
                        clause.attribute for clause in entry_clauses
                    )
                    for clause in entry_clauses:
                        tree = rel_index.trees.get(clause.attribute)
                        if tree is None:
                            fresh.setdefault(clause.attribute, []).append(
                                (clause.interval, ident)
                            )
                        else:
                            tree.insert(clause.interval, ident)
                for attribute, pairs in fresh.items():
                    tree = self._new_tree(rel_index)
                    loader = getattr(tree, "bulk_load", None)
                    if loader is not None:
                        loader(pairs)
                    else:  # foreign backend: incremental construction
                        for interval, ident in pairs:
                            tree.insert(interval, ident)
                    rel_index.trees[attribute] = tree
                    rel_index.stab_cache.clear()  # tree map changed shape
        except BaseException:
            for relation, ident in added:
                rel_index = self._relations.get(relation)
                if rel_index is None:
                    continue
                rel_index.predicates.pop(ident, None)
                rel_index.residuals.pop(ident, None)
                self._relation_of.pop(ident, None)
                self._rollback_add(relation, rel_index, ident)
            raise
        return [normalized.ident for normalized in normalized_list]

    def _entry_clauses_of(self, normalized: Predicate) -> List[IntervalClause]:
        """The clause(s) *normalized* enters into the attribute trees.

        One (the most selective) in the paper's scheme; every indexable
        clause under multi-clause indexing; empty when the predicate has
        no indexable clause.  Shared by :meth:`add`, :meth:`add_many`,
        and :meth:`_rebuild_relation` so every registration path makes
        the same entry-clause choice.
        """
        if self._multi_clause:
            return list(normalized.indexable_clauses())
        chosen = choose_index_clause(normalized, self._estimator)
        return [chosen] if chosen is not None else []

    def _enter_clauses(
        self, rel_index: _RelationIndex, ident: Hashable, normalized: Predicate
    ) -> None:
        """Enter *normalized*'s clause(s) into the per-attribute trees."""
        entry_clauses = self._entry_clauses_of(normalized)
        if not entry_clauses:
            rel_index.non_indexable.add(ident)
            return
        for clause in entry_clauses:
            tree = rel_index.trees.get(clause.attribute)
            if tree is None:
                tree = rel_index.trees[clause.attribute] = self._new_tree(rel_index)
                rel_index.stab_cache.clear()  # tree map changed shape
            tree.insert(clause.interval, ident)
        rel_index.indexed_under[ident] = tuple(
            clause.attribute for clause in entry_clauses
        )

    def _rollback_add(
        self, relation: str, rel_index: _RelationIndex, ident: Hashable
    ) -> None:
        rel_index.non_indexable.discard(ident)
        rel_index.indexed_under.pop(ident, None)
        for attribute in list(rel_index.trees):
            tree = rel_index.trees[attribute]
            if ident in tree:
                tree.delete(ident)
            if not tree:
                self._retire_tree(rel_index, tree)
                del rel_index.trees[attribute]
                rel_index.stab_cache.clear()
        if not rel_index.predicates and not rel_index.trees:
            self._relations.pop(relation, None)

    def remove(self, ident: Hashable) -> Predicate:
        """Un-index and return the predicate registered under *ident*."""
        self._check_mutable()
        try:
            relation = self._relation_of.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        rel_index = self._relations[relation]
        predicate = rel_index.predicates.pop(ident)
        rel_index.residuals.pop(ident, None)
        attributes = rel_index.indexed_under.pop(ident, None)
        if attributes is None:
            rel_index.non_indexable.discard(ident)
        else:
            for attribute in attributes:
                tree = rel_index.trees[attribute]
                tree.delete(ident)
                if not tree:
                    self._retire_tree(rel_index, tree)
                    del rel_index.trees[attribute]
                    rel_index.stab_cache.clear()
        if not rel_index.predicates:
            del self._relations[relation]
        return predicate

    # -- matching ----------------------------------------------------------

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        """All predicates of *relation* that fully match the tuple."""
        matched = [
            pred
            for pred, _ in self.match_with_candidates(relation, tup)
            if pred is not None
        ]
        if self._adaptive:
            self._maybe_auto_retune(relation, 1)
        return matched

    def match_idents(self, relation: str, tup: Mapping[str, Any]) -> Set[Hashable]:
        """Identifiers of all fully matching predicates."""
        matched = {
            pred.ident
            for pred, _ in self.match_with_candidates(relation, tup)
            if pred is not None
        }
        if self._adaptive:
            self._maybe_auto_retune(relation, 1)
        return matched

    def match_with_candidates(
        self, relation: str, tup: Mapping[str, Any]
    ) -> Iterator[Tuple[Optional[Predicate], Hashable]]:
        """Yield ``(predicate_or_None, ident)`` for each candidate.

        A candidate whose residual test fails yields ``(None, ident)``;
        a full match yields the predicate.  Exposed so benchmarks can
        count partial matches exactly as the cost model does.
        """
        self.stats.tuples_matched += 1
        rel_index = self._relations.get(relation)
        if rel_index is None:
            return
        if self._multi_clause:
            candidates = self._intersect_candidates(rel_index, tup)
        else:
            candidates = set()
            cache_size = self._stab_cache_size
            cache = rel_index.stab_cache
            lru = self._cache_lru
            for attribute, tree in rel_index.trees.items():
                value = tup.get(attribute)
                if value is None:
                    continue  # NULL matches no clause: no tree entry applies
                key = None
                if cache_size:
                    epoch = getattr(tree, "epoch", None)
                    if epoch is not None:
                        try:
                            key = (attribute, epoch, value)
                            cached = cache.get(key)
                        except TypeError:
                            key = None  # unhashable value: uncacheable
                        else:
                            if cached is not None:
                                if lru:
                                    cache.move_to_end(key)
                                self.stats.stab_cache_hits += 1
                                candidates |= cached
                                continue
                self.stats.trees_searched += 1
                try:
                    if key is None:
                        tree.stab_into(value, candidates)
                    else:
                        stabbed = frozenset(tree.stab(value))
                        candidates |= stabbed
                        if lru:
                            cache[key] = stabbed
                            if len(cache) > cache_size:
                                cache.popitem(last=False)
                        elif len(cache) < cache_size:
                            # frozen: append-only, never evict
                            cache[key] = stabbed
                except TypeError:
                    # the value's type is incomparable with this
                    # attribute's indexed bounds (mixed-domain data): no
                    # interval clause on this attribute can match it
                    continue
            if self._adaptive:
                self.feedback.observe_tuples(relation, 1)
                if candidates:
                    self.feedback.observe_candidates(candidates)
        self.stats.partial_matches += len(candidates)
        self.stats.non_indexable_tested += len(rel_index.non_indexable)
        candidates |= rel_index.non_indexable
        for ident in candidates:
            predicate = rel_index.predicates[ident]
            if predicate.matches(tup):
                self.stats.full_matches += 1
                yield predicate, ident
            else:
                yield None, ident

    def match_batch(
        self, relation: str, tuples: Iterable[Mapping[str, Any]]
    ) -> List[List[Predicate]]:
        """Match a batch of tuples; returns one result list per tuple.

        Semantically identical to ``[self.match(relation, t) for t in
        tuples]`` (the differential tests assert exactly that), but the
        work is restructured around the batch:

        1. the batch's values are grouped per indexed attribute,
           deduplicated and sorted, and each attribute tree is stabbed
           **once per distinct value** via :meth:`IBSTree.stab_many`
           (sorted order keeps the grouped descent's sibling partitions
           adjacent and shares search-path prefixes);
        2. the stab results are fanned back out per tuple (in the
           paper's single-clause scheme the per-attribute stabbed sets
           are disjoint, so no per-tuple union is built);
        3. residual tests run through **compiled evaluators** that
           skip the clauses already *proven* by the index probe — a
           stabbed candidate's entry clause is known to match, so only
           the remaining clauses are tested — and interval-only
           residuals are **memoized** per batch on ``(ident,
           restricted-tuple-projection)`` whenever the batch shows
           enough value repetition for the memo to pay off.

        Function clauses are always (re-)evaluated per tuple, exactly
        as the per-tuple path does: memoizing them on ``==``-collapsed
        keys would be unsound for type-sensitive functions (``2`` and
        ``2.0`` share a key), and the paper assumes nothing about them
        "except that it returns true or false".  Batches containing
        unhashable or infinity-sentinel values in indexed attributes
        fall back to the per-tuple loop transparently.
        """
        tuples = list(tuples)
        if not tuples:
            return []
        rel_index = self._relations.get(relation)
        if rel_index is None:
            self.stats.tuples_matched += len(tuples)
            self.stats.batches_matched += 1
            return [[] for _ in tuples]
        try:
            stab_tables, memo_on = self._batch_stab_tables(rel_index, tuples)
        except _Unbatchable:
            return [self.match(relation, tup) for tup in tuples]
        if self._multi_clause:
            per_tuple = self._batch_intersect(rel_index, tuples, stab_tables)
        else:
            per_tuple = None
        stats = self.stats
        stats.tuples_matched += len(tuples)
        stats.batches_matched += 1
        non_indexable = rel_index.non_indexable
        stats.non_indexable_tested += len(non_indexable) * len(tuples)
        predicates = rel_index.predicates
        residuals = rel_index.residuals
        indexed_under = rel_index.indexed_under
        if len(residuals) != len(predicates):
            for ident, predicate in predicates.items():
                if ident not in residuals:
                    residuals[ident] = _compile_residual(
                        predicate, indexed_under.get(ident, ())
                    )
        # Non-indexable predicates are tested against *every* tuple:
        # resolve their entries once per batch into homogeneous
        # per-kind lists so the tuple loop runs without per-candidate
        # dict lookups or kind dispatch.
        ni_trivial: List[Predicate] = []
        ni_closed: List[Tuple[Any, ...]] = []
        ni_single: List[Tuple[Hashable, Tuple[Any, ...]]] = []
        ni_multi: List[Tuple[Hashable, Tuple[Any, ...]]] = []
        ni_opaque: List[Predicate] = []
        for ident in non_indexable:
            entry = residuals[ident]
            kind = entry[0]
            if kind == _MULTI:
                ni_multi.append((ident, entry))
            elif kind == _SINGLE:
                ni_single.append((ident, entry))
            elif kind == _CLOSED:
                ni_closed.append(entry)
            elif kind == _TRIVIAL:
                ni_trivial.append(entry[1])
            else:
                ni_opaque.append(entry[1])
        # With the memo disabled (the common case for low-repetition
        # batches) the non-indexable loops reduce to bare
        # ``check(value)`` calls over pre-extracted pairs.
        ni_single_fast = [(e[1], e[2], e[3]) for _, e in ni_single]
        ni_multi_fast = [(e[1], e[3]) for _, e in ni_multi]
        stab_items = list(stab_tables.items())
        memo: Dict[Tuple[Hashable, Any], bool] = {}
        memo_get = memo.get
        partial = full = memo_hits = 0
        results: List[List[Predicate]] = []
        for position, tup in enumerate(tuples):
            tup_get = tup.get
            row: List[Predicate] = []
            append = row.append
            # In the paper's single-clause scheme every predicate is
            # indexed under exactly one attribute, so the per-attribute
            # stabbed sets are disjoint: iterate them directly instead
            # of unioning into a per-tuple candidate set.
            if per_tuple is None:
                groups: List[Iterable[Hashable]] = []
                for attribute, table in stab_items:
                    value = tup_get(attribute)
                    if value is None:
                        continue
                    stabbed = table.get(value)
                    if stabbed:
                        partial += len(stabbed)
                        groups.append(stabbed)
            else:
                candidates = per_tuple[position]
                partial += len(candidates)
                groups = [candidates] if candidates else []
            for group in groups:
                for ident in group:
                    entry = residuals[ident]
                    kind = entry[0]
                    if kind == _CLOSED:
                        # (kind, pred, attr, low, high): the dominant
                        # shape, inlined — a closure call per candidate
                        # would double the cost of this loop
                        v = tup_get(entry[2])
                        try:
                            ok = v is not None and entry[3] <= v <= entry[4]
                        except TypeError:
                            ok = False  # incomparable or sentinel value
                        if ok:
                            append(entry[1])
                    elif kind == _SINGLE:
                        # (kind, pred, attr, check, memo_ok)
                        v = tup_get(entry[2])
                        if memo_on and entry[4]:
                            key = (ident, v)
                            try:
                                verdict = memo_get(key)
                            except TypeError:
                                verdict = entry[3](v)  # unhashable value
                            else:
                                if verdict is None:
                                    verdict = memo[key] = entry[3](v)
                                else:
                                    memo_hits += 1
                            if verdict:
                                append(entry[1])
                        elif entry[3](v):
                            append(entry[1])
                    elif kind == _TRIVIAL:
                        # every clause was proven by the index probes
                        append(entry[1])
                    elif kind == _MULTI:
                        # (kind, pred, attrs, evaluate, memo_ok);
                        # evaluate fetches its own values, the
                        # projection tuple is built only as a memo key
                        if memo_on and entry[4]:
                            proj = tuple([tup_get(a) for a in entry[2]])
                            key = (ident, proj)
                            try:
                                verdict = memo_get(key)
                            except TypeError:
                                verdict = entry[3](tup_get)
                            else:
                                if verdict is None:
                                    verdict = memo[key] = entry[3](tup_get)
                                else:
                                    memo_hits += 1
                            if verdict:
                                append(entry[1])
                        elif entry[3](tup_get):
                            append(entry[1])
                    else:  # _OPAQUE: unknown clause subclass
                        if entry[1].matches(tup):
                            append(entry[1])
            for entry in ni_closed:
                v = tup_get(entry[2])
                try:
                    ok = v is not None and entry[3] <= v <= entry[4]
                except TypeError:
                    ok = False
                if ok:
                    append(entry[1])
            if not memo_on:
                for predicate, attribute, check in ni_single_fast:
                    if check(tup_get(attribute)):
                        append(predicate)
                for predicate, evaluate in ni_multi_fast:
                    if evaluate(tup_get):
                        append(predicate)
            else:
                for ident, entry in ni_single:
                    v = tup_get(entry[2])
                    if entry[4]:
                        key = (ident, v)
                        try:
                            verdict = memo_get(key)
                        except TypeError:
                            verdict = entry[3](v)
                        else:
                            if verdict is None:
                                verdict = memo[key] = entry[3](v)
                            else:
                                memo_hits += 1
                        if verdict:
                            append(entry[1])
                    elif entry[3](v):
                        append(entry[1])
                for ident, entry in ni_multi:
                    if entry[4]:
                        proj = tuple([tup_get(a) for a in entry[2]])
                        key = (ident, proj)
                        try:
                            verdict = memo_get(key)
                        except TypeError:
                            verdict = entry[3](tup_get)
                        else:
                            if verdict is None:
                                verdict = memo[key] = entry[3](tup_get)
                            else:
                                memo_hits += 1
                        if verdict:
                            append(entry[1])
                    elif entry[3](tup_get):
                        append(entry[1])
            for predicate in ni_trivial:
                append(predicate)
            for predicate in ni_opaque:
                if predicate.matches(tup):
                    append(predicate)
            full += len(row)
            results.append(row)
        stats.partial_matches += partial
        stats.full_matches += full
        stats.residual_memo_hits += memo_hits
        if self._adaptive and not self._multi_clause:
            feedback = self.feedback
            feedback.observe_tuples(relation, len(tuples))
            # candidate counts reconstructed from the stab tables: each
            # ident stabbed at a value was a candidate once per tuple
            # carrying that value
            for attribute, table in stab_tables.items():
                counts: Dict[Any, int] = {}
                for tup in tuples:
                    value = tup.get(attribute)
                    if value is not None:
                        counts[value] = counts.get(value, 0) + 1
                for value, stabbed in table.items():
                    if stabbed:
                        feedback.observe_candidates(stabbed, counts.get(value, 1))
            self._maybe_auto_retune(relation, len(tuples))
        return results

    def _batch_stab_tables(
        self, rel_index: _RelationIndex, tuples: List[Mapping[str, Any]]
    ) -> Tuple[Dict[str, Dict[Any, Optional[Set[Hashable]]]], bool]:
        """Stab each attribute tree once per distinct batch value.

        Returns ``(stab_tables, memo_on)``: per attribute a table
        ``value -> stabbed idents`` (``None`` for incomparable values),
        plus whether the batch shows enough value repetition (>= 10%
        duplicates across indexed attributes) for the residual memo to
        pay for its bookkeeping.

        Raises :class:`_Unbatchable` (before touching any statistics)
        when an indexed attribute holds an unhashable value — the
        per-value grouping needs to hash it — or an infinity sentinel,
        for which skipping the proven entry clause would be unsound
        (``clause.matches`` rejects sentinels that a tree stab may
        admit).
        """
        trees = rel_index.trees
        stab_tables: Dict[str, Dict[Any, Optional[Set[Hashable]]]] = {}
        if not trees:
            return stab_tables, False
        total = distinct = 0
        plans: List[Tuple[str, List[Any]]] = []
        for attribute, tree in trees.items():
            values: Set[Any] = set()
            add = values.add
            for tup in tuples:
                value = tup.get(attribute)
                if value is None:
                    continue
                if value is MINUS_INF or value is PLUS_INF:
                    raise _Unbatchable(attribute)
                total += 1
                try:
                    add(value)
                except TypeError:
                    raise _Unbatchable(attribute) from None
            distinct += len(values)
            if not values:
                stab_tables[attribute] = {}
                continue
            try:
                ordered: List[Any] = sorted(values)
            except TypeError:
                ordered = list(values)  # mixed domains: order is just locality
            plans.append((attribute, ordered))
        cache_size = self._stab_cache_size
        cache = rel_index.stab_cache
        lru = self._cache_lru
        cache_hits = 0
        for attribute, ordered in plans:
            tree = trees[attribute]
            epoch = getattr(tree, "epoch", None) if cache_size else None
            if epoch is None:
                # one grouped descent per tree per batch
                self.stats.trees_searched += 1
                stab_tables[attribute] = tree.stab_many(ordered)
                continue
            # answer cached values without touching the tree; stab the
            # misses in one grouped descent and remember them
            table: Dict[Any, Optional[Set[Hashable]]] = {}
            misses: List[Any] = []
            for value in ordered:
                key = (attribute, epoch, value)
                cached = cache.get(key)
                if cached is None:
                    misses.append(value)
                else:
                    if lru:
                        cache.move_to_end(key)
                    cache_hits += 1
                    table[value] = cached
            if misses:
                self.stats.trees_searched += 1
                for value, stabbed in tree.stab_many(misses).items():
                    table[value] = stabbed
                    if stabbed is not None:
                        if lru:
                            cache[(attribute, epoch, value)] = frozenset(stabbed)
                            if len(cache) > cache_size:
                                cache.popitem(last=False)
                        elif len(cache) < cache_size:
                            # frozen: append-only, never evict
                            cache[(attribute, epoch, value)] = frozenset(stabbed)
            stab_tables[attribute] = table
        self.stats.stab_cache_hits += cache_hits
        memo_on = total > 0 and (total - distinct) * 10 >= total
        return stab_tables, memo_on

    def _batch_intersect(
        self,
        rel_index: _RelationIndex,
        tuples: List[Mapping[str, Any]],
        stab_tables: Dict[str, Dict[Any, Optional[Set[Hashable]]]],
    ) -> List[Set[Hashable]]:
        """Multi-clause fan-out: candidates hit in *every* indexed tree."""
        indexed_under = rel_index.indexed_under
        out: List[Set[Hashable]] = []
        for tup in tuples:
            hits: Dict[Hashable, int] = {}
            probed: Set[str] = set()
            for attribute, table in stab_tables.items():
                value = tup.get(attribute)
                if value is None:
                    continue
                stabbed = table.get(value)
                if stabbed is None:
                    continue  # incomparable value: attribute not probed
                probed.add(attribute)
                for ident in stabbed:
                    hits[ident] = hits.get(ident, 0) + 1
            candidates: Set[Hashable] = set()
            for ident, count in hits.items():
                attributes = indexed_under[ident]
                if count == len(attributes) and all(a in probed for a in attributes):
                    candidates.add(ident)
            out.append(candidates)
        return out

    def _intersect_candidates(
        self, rel_index: _RelationIndex, tup: Mapping[str, Any]
    ) -> Set[Hashable]:
        """Multi-clause candidates: hit in *every* indexed attribute.

        An ident is a candidate only if every tree it is indexed under
        was probed and reported it — a NULL or incomparable value in
        any indexed attribute disqualifies the predicate outright
        (that clause cannot match).
        """
        hits: Dict[Hashable, int] = {}
        probed: Set[str] = set()
        for attribute, tree in rel_index.trees.items():
            value = tup.get(attribute)
            if value is None:
                continue
            self.stats.trees_searched += 1
            try:
                stabbed = tree.stab(value)
            except TypeError:
                continue
            probed.add(attribute)
            for ident in stabbed:
                hits[ident] = hits.get(ident, 0) + 1
        candidates: Set[Hashable] = set()
        for ident, count in hits.items():
            attributes = rel_index.indexed_under[ident]
            if count == len(attributes) and all(a in probed for a in attributes):
                candidates.add(ident)
        return candidates

    # -- adaptive entry-clause migration ---------------------------------------

    def _maybe_auto_retune(self, relation: str, count: int) -> None:
        """Run :meth:`retune` when the auto-retune interval elapses."""
        interval = self._auto_retune_interval
        if not interval:
            return
        self._tuples_since_retune += count
        if self._tuples_since_retune >= interval:
            self._tuples_since_retune = 0
            self.retune(relation)

    def retune(self, relation: Optional[str] = None) -> List[Hashable]:
        """One feedback-driven migration pass; returns migrated idents.

        For every indexed predicate of *relation* (or of every relation)
        with enough observed samples, compare the **observed**
        selectivity of its current entry clause — the fraction of
        matched tuples that admitted it as a candidate — against the
        estimated selectivity of its best indexable clause on a
        *different* attribute.  When the alternative's estimate is below
        ``observed * migration_ratio``, the entry clause is migrated to
        the alternative's attribute tree: the static "most selective
        clause" choice the paper fixes at registration time is revised
        with live evidence.

        The migration is transactional per predicate: the old entry is
        re-inserted if the new tree's insert fails, and if *that* also
        fails the predicate is parked on the non-indexable list (brute
        force is always sound) before the failure propagates.  After a
        pass the relation's feedback window is reset so the next
        decision rests on fresh evidence.  No-op under multi-clause
        indexing (every indexable clause is already entered) and before
        ``min_feedback_tuples`` samples.
        """
        self._check_mutable()
        if self._multi_clause:
            return []
        migrated: List[Hashable] = []
        feedback = self.feedback
        ratio = self._migration_ratio
        targets = [relation] if relation is not None else list(self._relations)
        for rel in targets:
            rel_index = self._relations.get(rel)
            if rel_index is None:
                continue
            if feedback.tuples_seen(rel) < feedback.min_samples:
                continue
            for ident in list(rel_index.indexed_under):
                observed = feedback.observed_selectivity(rel, ident)
                if observed is None:
                    continue
                current = rel_index.indexed_under.get(ident)
                if not current:
                    continue
                predicate = rel_index.predicates[ident]
                alternative = None
                for score, clause in rank_index_clauses(predicate, self._estimator):
                    if clause.attribute != current[0]:
                        alternative = (score, clause)
                        break
                if alternative is None:
                    continue  # no different-attribute clause to move to
                score, clause = alternative
                if score < observed * ratio:
                    if self._migrate_entry_clause(rel_index, ident, clause):
                        migrated.append(ident)
            feedback.reset(
                rel,
                list(rel_index.indexed_under) + list(rel_index.non_indexable),
            )
        return migrated

    def _migrate_entry_clause(
        self, rel_index: _RelationIndex, ident: Hashable, clause: IntervalClause
    ) -> bool:
        """Move *ident*'s entry clause into *clause*'s attribute tree."""
        old_attr = rel_index.indexed_under[ident][0]
        new_attr = clause.attribute
        if new_attr == old_attr:
            return False
        old_tree = rel_index.trees[old_attr]
        old_interval = old_tree.get(ident)
        new_tree = rel_index.trees.get(new_attr)
        created = new_tree is None
        if created:
            new_tree = self._new_tree(rel_index)
        old_tree.delete(ident)
        try:
            new_tree.insert(clause.interval, ident)
        except BaseException:
            try:
                old_tree.insert(old_interval, ident)
            except BaseException:
                # Double fault: neither tree accepted the entry.  Brute
                # force is always sound, so park the predicate on the
                # non-indexable list rather than lose it.
                rel_index.indexed_under.pop(ident, None)
                rel_index.residuals.pop(ident, None)
                rel_index.non_indexable.add(ident)
                if not old_tree:
                    self._retire_tree(rel_index, old_tree)
                    rel_index.trees.pop(old_attr, None)
                    rel_index.stab_cache.clear()
                raise
            raise
        if created:
            rel_index.trees[new_attr] = new_tree
            rel_index.stab_cache.clear()  # tree map changed shape
        if not old_tree:
            self._retire_tree(rel_index, old_tree)
            del rel_index.trees[old_attr]
            rel_index.stab_cache.clear()
        rel_index.indexed_under[ident] = (new_attr,)
        # the residual must re-test the old entry clause and skip the
        # new one; match_batch recompiles it lazily
        rel_index.residuals.pop(ident, None)
        self.stats.clause_migrations += 1
        return True

    # -- introspection ---------------------------------------------------------

    def get(self, ident: Hashable) -> Predicate:
        """Return the predicate registered under *ident*."""
        try:
            relation = self._relation_of[ident]
        except KeyError:
            raise UnknownIntervalError(ident) from None
        return self._relations[relation].predicates[ident]

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._relation_of

    def __len__(self) -> int:
        """Total number of indexed predicates across all relations."""
        return len(self._relation_of)

    def predicates_for(self, relation: str) -> List[Predicate]:
        """All predicates registered for *relation*."""
        rel_index = self._relations.get(relation)
        if rel_index is None:
            return []
        return list(rel_index.predicates.values())

    def relations(self) -> List[str]:
        """Relations with at least one registered predicate."""
        return list(self._relations)

    def indexed_attribute(self, ident: Hashable) -> Optional[str]:
        """The (first) attribute whose tree holds this predicate, or None."""
        attributes = self.indexed_attributes(ident)
        return attributes[0] if attributes else None

    def indexed_attributes(self, ident: Hashable) -> Tuple[str, ...]:
        """Every attribute whose tree holds this predicate (may be empty)."""
        relation = self._relation_of.get(ident)
        if relation is None:
            raise UnknownIntervalError(ident)
        return self._relations[relation].indexed_under.get(ident, ())

    def tree_for(self, relation: str, attribute: str) -> Optional[IBSTree]:
        """The IBS-tree for ``relation.attribute``, if one exists."""
        rel_index = self._relations.get(relation)
        if rel_index is None:
            return None
        return rel_index.trees.get(attribute)

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Structural summary per relation (for reports and debugging)."""
        summary: Dict[str, Dict[str, Any]] = {}
        for relation, rel_index in self._relations.items():
            summary[relation] = {
                "predicates": len(rel_index.predicates),
                "non_indexable": len(rel_index.non_indexable),
                "trees": {
                    attr: len(tree) for attr, tree in rel_index.trees.items()
                },
            }
        return summary

    # -- self-healing ----------------------------------------------------------

    def check_invariants(self) -> bool:
        """Validate the whole index; raise on any violation.

        Checks the cross-registry bookkeeping (predicates table,
        ``indexed_under``, ``non_indexable``, ``_relation_of``), runs
        every per-attribute tree's own invariant validator, and
        differentially probes each tree against a freshly built
        reference (see :meth:`audit`).  Returns True when healthy,
        raises :class:`~repro.errors.TreeInvariantError` otherwise.
        """
        problems = self.audit()
        if problems:
            raise TreeInvariantError(
                f"predicate index corrupt ({len(problems)} problem"
                f"{'s' if len(problems) != 1 else ''}): " + "; ".join(problems)
            )
        return True

    def audit(self) -> List[str]:
        """Non-raising health check: a list of problem descriptions.

        An empty list means the index is healthy.  Beyond the
        registry-consistency checks and each tree's internal
        validator, every tree is *differentially* probed: a reference
        tree is rebuilt from the same intervals and both are stabbed
        at every finite clause endpoint.  This catches completeness
        corruption — markers silently lost by an interrupted
        structural delete — that is invisible to the internal
        validator, which only proves the markers still present sound.
        """
        problems: List[str] = []
        for ident, relation in self._relation_of.items():
            rel_index = self._relations.get(relation)
            if rel_index is None or ident not in rel_index.predicates:
                problems.append(
                    f"orphaned ident {ident!r}: registered for relation "
                    f"{relation!r} but missing from its predicates table"
                )
        for relation, rel_index in self._relations.items():
            problems.extend(self._audit_relation(relation, rel_index))
        return problems

    def _audit_relation(
        self, relation: str, rel_index: _RelationIndex
    ) -> List[str]:
        problems: List[str] = []
        for ident in rel_index.predicates:
            if self._relation_of.get(ident) != relation:
                problems.append(
                    f"{relation}: predicate {ident!r} missing from the "
                    f"relation-of registry"
                )
        for ident in rel_index.non_indexable:
            if ident not in rel_index.predicates:
                problems.append(
                    f"{relation}: stale non-indexable entry {ident!r}"
                )
        for ident, attributes in rel_index.indexed_under.items():
            if ident not in rel_index.predicates:
                problems.append(
                    f"{relation}: stale indexed-under entry {ident!r}"
                )
            for attribute in attributes:
                tree = rel_index.trees.get(attribute)
                if tree is None or ident not in tree:
                    problems.append(
                        f"{relation}.{attribute}: predicate {ident!r} "
                        f"indexed under the attribute but absent from its tree"
                    )
        for attribute, tree in rel_index.trees.items():
            for ident in tree:
                if attribute not in rel_index.indexed_under.get(ident, ()):
                    problems.append(
                        f"{relation}.{attribute}: stray tree entry {ident!r}"
                    )
            for problem in self._tree_problems(tree):
                problems.append(f"{relation}.{attribute}: {problem}")
            for problem in self._tree_divergence(tree):
                problems.append(f"{relation}.{attribute}: {problem}")
        return problems

    @staticmethod
    def _tree_problems(tree: Any) -> List[str]:
        """The tree's own invariant report (tolerant of foreign backends)."""
        auditor = getattr(tree, "audit", None)
        if auditor is not None:
            return list(auditor())
        validator = getattr(tree, "validate", None)
        if validator is None:
            return []
        try:
            validator()
        except Exception as exc:
            return [f"{type(exc).__name__}: {exc}"]
        return []

    def _tree_divergence(self, tree: Any) -> List[str]:
        """Differentially probe *tree* against a freshly built reference.

        Probes are the finite endpoints of every indexed interval: any
        lost (or phantom) marker changes the stab answer at one of
        them for the interval's own clauses.  Structure may legally
        differ between the two trees — only the answers are compared.
        """
        items = getattr(tree, "items", None)
        if items is None:
            return []  # foreign backend without introspection: skip
        reference = self._tree_factory()
        entries = list(items())
        loader = getattr(reference, "bulk_load", None)
        if loader is not None:
            loader((interval, ident) for ident, interval in entries)
        else:
            for ident, interval in entries:
                reference.insert(interval, ident)
        probes: Set[Any] = set()
        for _, interval in entries:
            for value in (interval.low, interval.high):
                if not is_infinite(value):
                    try:
                        probes.add(value)
                    except TypeError:
                        pass  # unhashable endpoint: skip the probe
        problems: List[str] = []
        for value in probes:
            try:
                expected = reference.stab(value)
                got = tree.stab(value)
            except TypeError:
                continue  # mixed domains: nothing to compare at this probe
            if got != expected:
                missing = expected - got
                extra = got - expected
                detail = []
                if missing:
                    detail.append(f"missing {sorted(map(repr, missing))}")
                if extra:
                    detail.append(f"extra {sorted(map(repr, extra))}")
                problems.append(
                    f"stab({value!r}) diverges from rebuilt reference "
                    f"({', '.join(detail)})"
                )
        return problems

    def verify_and_rebuild(self) -> Dict[str, Any]:
        """Detect index corruption and repair it in place.

        Audits every relation; for each one reporting problems, drops
        its per-attribute trees and rebuilds them from the PREDICATES
        table — the durable source of truth — preserving identifiers
        and entry-clause choices, then re-audits (including the
        differential probe check) to prove the repair took.  Orphaned
        ``_relation_of`` entries with no backing predicate are pruned.

        Returns a report ``{"healthy": bool, "problems": [...],
        "rebuilt": [relation, ...]}`` where ``healthy`` reflects the
        state *before* repair.  Raises
        :class:`~repro.errors.TreeInvariantError` only if a rebuilt
        relation still fails its audit (the predicates table itself is
        damaged beyond repair).
        """
        self._check_mutable()
        problems: List[str] = []
        rebuilt: List[str] = []
        for ident, relation in list(self._relation_of.items()):
            rel_index = self._relations.get(relation)
            if rel_index is None or ident not in rel_index.predicates:
                problems.append(
                    f"orphaned ident {ident!r} for relation {relation!r}: pruned"
                )
                del self._relation_of[ident]
        for relation, rel_index in list(self._relations.items()):
            relation_problems = self._audit_relation(relation, rel_index)
            if not relation_problems:
                continue
            problems.extend(relation_problems)
            self._rebuild_relation(relation, rel_index)
            rebuilt.append(relation)
            remaining = self._audit_relation(relation, rel_index)
            if remaining:
                raise TreeInvariantError(
                    f"relation {relation!r} still corrupt after rebuild: "
                    + "; ".join(remaining)
                )
        return {"healthy": not problems, "problems": problems, "rebuilt": rebuilt}

    def _rebuild_relation(self, relation: str, rel_index: _RelationIndex) -> None:
        """Rebuild *relation*'s trees and registries from its predicates.

        Entry clauses are grouped by attribute and each fresh tree is
        built with :meth:`bulk_load` — O(N) endpoint sorting plus a
        balanced build, instead of N incremental inserts with their
        rebalancing and marker-rewrite costs.  Predicates are already
        normalized in the registry, so nothing is re-normalized here.
        """
        for tree in rel_index.trees.values():
            self._retire_tree(rel_index, tree)
        rel_index.trees = {}
        rel_index.non_indexable = set()
        rel_index.indexed_under = {}
        rel_index.residuals = {}
        rel_index.stab_cache.clear()  # dropped trees: epochs jump past the floor
        per_attribute: Dict[str, List[Tuple[Any, Hashable]]] = {}
        for ident, predicate in rel_index.predicates.items():
            self._relation_of[ident] = relation
            entry_clauses = self._entry_clauses_of(predicate)
            if not entry_clauses:
                rel_index.non_indexable.add(ident)
                continue
            for clause in entry_clauses:
                per_attribute.setdefault(clause.attribute, []).append(
                    (clause.interval, ident)
                )
            rel_index.indexed_under[ident] = tuple(
                clause.attribute for clause in entry_clauses
            )
        for attribute, pairs in per_attribute.items():
            tree = self._new_tree(rel_index)
            loader = getattr(tree, "bulk_load", None)
            if loader is not None:
                loader(pairs)
            else:  # foreign backend without bulk_load: fall back
                for interval, ident in pairs:
                    tree.insert(interval, ident)
            rel_index.trees[attribute] = tree

    def __repr__(self) -> str:
        return f"<PredicateIndex {len(self)} predicates over {len(self._relations)} relations>"


# ----------------------------------------------------------------------
# compiled residual evaluators (match_batch step 3)
# ----------------------------------------------------------------------
#
# A residual test re-checks a candidate's conjunction against the
# tuple.  ``Predicate.matches`` pays, per clause, a dict lookup, a
# method dispatch, and ``Interval.contains``'s sentinel-aware helper
# chain — and it re-tests the entry clause the index probe already
# proved.  The compiled form drops the proven clauses (the entry
# clause in the paper's scheme; every indexed clause under
# multi-clause indexing) and shape-specializes what remains.  Entries
# are small tagged tuples dispatched inline by ``match_batch``:
#
#   (_TRIVIAL, pred)                      nothing left to test
#   (_CLOSED,  pred, attr, low, high)     one closed interval, inlined
#   (_SINGLE,  pred, attr, check, memo)   one residual attribute
#   (_MULTI,   pred, attrs, eval, memo)   several residual attributes
#   (_OPAQUE,  pred)                      unknown clause subclass:
#                                         fall back to pred.matches
#
# ``memo`` marks interval-only residuals, whose verdicts depend only
# on ``==``-interchangeable values (the total-order assumption the
# tree itself rests on) and are therefore safe to memoize; function
# clauses are not (a type-sensitive function distinguishes ``2`` from
# ``2.0``, which share a memo key).  Semantics are identical to
# clause.matches(): None never matches, the infinity sentinels never
# match an interval clause, incomparable values fail the clause
# instead of raising, and function-clause exceptions propagate.

_TRIVIAL, _CLOSED, _SINGLE, _MULTI, _OPAQUE = range(5)


def _compile_residual(
    predicate: Predicate, proven_attrs: Tuple[str, ...]
) -> Tuple[Any, ...]:
    """Compile *predicate*'s residual into a tagged dispatch tuple.

    ``proven_attrs`` are the attributes whose interval clauses the
    index probe has already verified (the tuple stabbed them); those
    clauses are skipped.  Function clauses are never proven by a probe
    and are always kept.
    """
    residual: List[Any] = []
    for clause in predicate.clauses:
        if isinstance(clause, IntervalClause):
            if clause.attribute in proven_attrs:
                continue  # proven by the index probe
            residual.append(clause)
        elif isinstance(clause, FunctionClause):
            residual.append(clause)
        else:
            return (_OPAQUE, predicate)
    if not residual:
        return (_TRIVIAL, predicate)
    if len(residual) == 1:
        clause = residual[0]
        if isinstance(clause, IntervalClause):
            interval = clause.interval
            if (
                interval.low is not MINUS_INF
                and interval.high is not PLUS_INF
                and interval.low_inclusive
                and interval.high_inclusive
            ):
                return (_CLOSED, predicate, clause.attribute, interval.low, interval.high)
            return (
                _SINGLE,
                predicate,
                clause.attribute,
                _compile_interval_vcheck(interval),
                True,
            )
        return (
            _SINGLE,
            predicate,
            clause.attribute,
            _compile_function_vcheck(clause),
            False,
        )
    attrs: List[str] = []
    for clause in residual:
        if clause.attribute not in attrs:
            attrs.append(clause.attribute)
    memo_ok = all(isinstance(clause, IntervalClause) for clause in residual)
    vchecks = [
        _compile_interval_vcheck(clause.interval)
        if isinstance(clause, IntervalClause)
        else _compile_function_vcheck(clause)
        for clause in residual
    ]
    if len(attrs) == 1:

        def combined(v: Any, _vchecks=tuple(vchecks)) -> bool:
            for vcheck in _vchecks:
                if not vcheck(v):
                    return False
            return True

        return (_SINGLE, predicate, attrs[0], combined, memo_ok)
    pairs = tuple(
        (clause.attribute, vcheck) for clause, vcheck in zip(residual, vchecks)
    )
    if len(pairs) == 2:
        (attr_a, check_a), (attr_b, check_b) = pairs

        def evaluate(
            tup_get: Callable[[str], Any],
            _a=attr_a,
            _ca=check_a,
            _b=attr_b,
            _cb=check_b,
        ) -> bool:
            return _ca(tup_get(_a)) and _cb(tup_get(_b))

    else:

        def evaluate(tup_get: Callable[[str], Any], _pairs=pairs) -> bool:
            for attribute, vcheck in _pairs:
                if not vcheck(tup_get(attribute)):
                    return False
            return True

    return (_MULTI, predicate, tuple(attrs), evaluate, memo_ok)


def _compile_interval_vcheck(interval) -> Callable[[Any], bool]:
    low, high = interval.low, interval.high
    low_inc, high_inc = interval.low_inclusive, interval.high_inclusive
    if low is MINUS_INF and high is PLUS_INF:
        test = None
    elif low is MINUS_INF:
        if high_inc:
            test = lambda v, _h=high: v <= _h
        else:
            test = lambda v, _h=high: v < _h
    elif high is PLUS_INF:
        if low_inc:
            test = lambda v, _l=low: v >= _l
        else:
            test = lambda v, _l=low: v > _l
    elif low_inc and high_inc:
        test = lambda v, _l=low, _h=high: _l <= v <= _h
    elif low_inc:
        test = lambda v, _l=low, _h=high: _l <= v < _h
    elif high_inc:
        test = lambda v, _l=low, _h=high: _l < v <= _h
    else:
        test = lambda v, _l=low, _h=high: _l < v < _h
    if test is None:

        def check(v: Any) -> bool:
            return v is not None and v is not MINUS_INF and v is not PLUS_INF

        return check

    def check(v: Any, _test=test) -> bool:
        if v is None or v is MINUS_INF or v is PLUS_INF:
            return False
        try:
            return _test(v)
        except TypeError:
            return False

    return check


def _compile_function_vcheck(clause) -> Callable[[Any], bool]:
    function = clause.function
    if clause.negated:

        def check(v: Any, _fn=function) -> bool:
            if v is None:
                return False
            return not _fn(v)

        return check

    def check(v: Any, _fn=function) -> bool:
        if v is None:
            return False
        return True if _fn(v) else False

    return check
