"""The paper's two-level predicate index (Figure 1).

Structure::

    inserted or modified tuples enter here
                    |
          hash on relation name
        /                       \\
    [relation R1]            [relation Rn]
      |- list of non-indexable predicates for Ri
      |- one IBS-tree per attribute with >= 1 indexable clause
      |       (each predicate's MOST SELECTIVE indexable clause
      |        is entered into the tree for its attribute)
      '- PREDICATES table: ident -> full predicate

Matching a tuple *t* of relation *R*:

1. hash on the relation name to find R's second-level index;
2. for every attribute of *t* that has an IBS-tree, stab the tree with
   t's value for that attribute, collecting *partial match* candidates;
3. add every non-indexable predicate of R as a candidate;
4. retrieve each candidate from the PREDICATES table and test the full
   conjunction against *t*; the survivors are the complete matches.

Step 4 is sound because a predicate is indexed under exactly one of its
clauses: if that clause does not match, the conjunction cannot match,
so skipping the predicate is safe; if it does match, the residual test
decides.

:class:`PredicateIndex` is a facade over the layered kernel in
:mod:`repro.match`: the :class:`~repro.match.catalog.ClauseCatalog`
(predicate storage and entry-clause decisions), the
:class:`~repro.match.store.TreeStore` (tree lifecycle and cache
policy), and the :class:`~repro.match.pipeline.MatchPipeline` (the one
staged match implementation), observed by a
:class:`~repro.match.observer.StatsObserver` feeding :attr:`stats`.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from ..errors import PredicateError, UnknownIntervalError
from ..maintenance import MaintenancePolicy, MaintenanceScheduler
from ..match import health as _health
from ..match.catalog import (
    ClauseCatalog,
    RelationState,
    compile_residual as _compile_residual,  # noqa: F401  (compat re-export)
)
from ..match.observer import CompositeObserver, MatchStatistics, StatsObserver
from ..match.pipeline import MatchPipeline
from ..match.store import TreeStore
from ..predicates.predicate import Predicate
from .ibs_tree import IBSTree
from .selectivity import SelectivityEstimator

__all__ = ["PredicateIndex", "MatchStatistics"]

TreeFactory = Callable[[], IBSTree]

#: Backwards-compatible alias: the per-relation state record used to be
#: the private ``_RelationIndex`` class defined in this module.
_RelationIndex = RelationState


class PredicateIndex:
    """Figure 1: hash on relation name + per-attribute IBS-trees.

    Parameters
    ----------
    tree_factory:
        Constructor for the per-attribute interval index, or the name
        of a backend registered in the
        :data:`~repro.match.registry.DEFAULT_REGISTRY` (``"ibs"``,
        ``"avl"``, ``"rb"``, ``"flat"``, …).  Defaults to the
        unbalanced :class:`~repro.core.ibs_tree.IBSTree` (as in the
        paper's measurements); pass
        :class:`~repro.core.avl_ibs_tree.AVLIBSTree` for guaranteed
        balance, or any object with the same ``insert/delete/stab``
        interface (see :mod:`repro.baselines`).
    estimator:
        Selectivity estimator used to pick each predicate's entry
        clause; defaults to the System R style constants.
    multi_clause:
        The paper indexes exactly **one** clause per predicate — the
        most selective — and relies on the residual test for the rest.
        With ``multi_clause=True`` every indexable clause enters its
        attribute's tree and a predicate is a candidate only when
        *all* of its indexed clauses match (set intersection): fewer
        residual tests at the price of more tree probes and markers.
        The ABL4 benchmark quantifies the trade-off the paper chose.
    stab_cache_size:
        Capacity of the per-relation LRU stab cache, keyed on
        ``(attribute, tree_epoch, value)``.  Every tree mutation bumps
        the tree's epoch, so entries never need invalidating — a stale
        key simply stops being looked up and ages out.  Duplicate-heavy
        (OLTP-style) tuple streams answer repeated stabs from the cache
        instead of descending the tree.  ``0`` (the default) disables
        caching.
    adaptive:
        Record observed entry-clause feedback (tuples seen, candidates
        admitted per predicate) during :meth:`match` / :meth:`match_batch`,
        enabling :meth:`retune` to migrate a predicate's entry clause
        to a different attribute tree when the static estimate behind
        the original choice turns out wrong on live data.  The paper
        picks the "most selective clause" once, from a-priori
        estimates; this closes the loop with measured selectivities.
    min_feedback_tuples:
        Minimum observed tuples per relation before a migration
        decision may be made (guards against noise on tiny samples).
    migration_ratio:
        Migrate only when the best alternative clause's estimated
        selectivity is below ``observed * migration_ratio`` — i.e. the
        alternative must promise a decisive improvement, not a tie.
    auto_retune_interval:
        When set (and ``adaptive``), :meth:`retune` runs automatically
        every N clock ops (see :mod:`repro.maintenance` for the op
        semantics — matched tuples plus predicate writes); ``None``
        leaves retuning manual.  Sugar for a
        :class:`~repro.maintenance.MaintenancePolicy` with
        ``retune_interval`` set.
    columnar:
        Try the vectorized columnar plane
        (:mod:`repro.match.columnar`) first on every
        :meth:`match_batch` call.  The plane is derived lazily from
        the attribute trees (which must support
        ``export_stab_plane`` — the flat backend does), cached on the
        relation's mutation version, and silently skipped when NumPy
        is not installed or the batch leaves the plane's numeric
        domain; the scalar pipeline remains the semantics of record.
        Ignored under ``adaptive`` and multi-clause indexing.
    auto_backend:
        Enable online per-attribute backend auto-selection (see
        :mod:`repro.match.autoselect`): the pipeline reports
        per-attribute stab counts, the write paths report interval
        inserts/deletes, and :meth:`autoselect` prices every candidate
        backend against the observed workload and transactionally
        migrates an attribute's tree to the predicted cheapest — the
        same evidence-floor / hysteresis / quarantine discipline
        :meth:`retune` applies to entry clauses, one level down the
        storage stack.  Also reachable as
        ``Database(matcher="auto")`` through the registry.
    autoselect_interval:
        When set (and ``auto_backend``), :meth:`autoselect` runs
        automatically every N clock ops; ``None`` leaves tuning
        passes manual.  Sugar for a
        :class:`~repro.maintenance.MaintenancePolicy` with
        ``autoselect_interval`` set.
    auto_candidates:
        Candidate backend names for auto-selection; defaults to the
        four IBS-tree variants.
    auto_cost_table:
        A pre-calibrated
        :class:`~repro.bench.cost_model.BackendCostTable`; measured
        lazily on the first pass when omitted.
    min_evidence_ops:
        Evidence floor for auto-selection: no migration before this
        many logical operations were observed for an attribute.
    auto_migration_ratio:
        Auto-selection hysteresis: migrate only when the best
        candidate prices below ``current * auto_migration_ratio``.
    maintenance:
        A :class:`~repro.maintenance.MaintenancePolicy` routing every
        periodic mechanism (retune, autoselect, disk-tier eviction)
        through one deterministic
        :class:`~repro.maintenance.MaintenanceScheduler`.  Policy
        intervals take precedence over the legacy
        ``auto_retune_interval`` / ``autoselect_interval`` sugar; the
        scheduler's clock advances once per matched tuple and once per
        predicate write, and never while the index is frozen.  See
        :meth:`maintenance_report`.
    """

    #: Strategy name (matches the PredicateMatcher convention).
    name = "ibs"

    def __init__(
        self,
        tree_factory: Union[str, TreeFactory] = IBSTree,
        estimator: Optional[SelectivityEstimator] = None,
        multi_clause: bool = False,
        stab_cache_size: int = 0,
        adaptive: bool = False,
        min_feedback_tuples: int = 256,
        migration_ratio: float = 0.5,
        auto_retune_interval: Optional[int] = None,
        columnar: bool = False,
        auto_backend: bool = False,
        autoselect_interval: Optional[int] = None,
        auto_candidates: Optional[Iterable[str]] = None,
        auto_cost_table: Any = None,
        min_evidence_ops: int = 512,
        auto_migration_ratio: float = 0.8,
        storage: str = "memory",
        data_dir: Optional[str] = None,
        memory_budget: Optional[int] = None,
        maintenance: Optional[MaintenancePolicy] = None,
    ):
        backend_name: Optional[str] = None
        if isinstance(tree_factory, str):
            # Imported here, not at module top: the registry's builders
            # import this module lazily and vice versa.
            from ..match.registry import DEFAULT_REGISTRY

            backend_name = tree_factory
            tree_factory = DEFAULT_REGISTRY.tree_factory(tree_factory)
        elif tree_factory is IBSTree:
            backend_name = "ibs"
        self._tree_factory = tree_factory
        self._adaptive = bool(adaptive)
        self._migration_ratio = float(migration_ratio)
        # Imported lazily: repro.core must stay importable before
        # repro.db finishes initialising (db imports core).
        from ..db.statistics import EntryClauseFeedback

        #: Observed entry-clause selectivity counters (see
        #: :class:`~repro.db.statistics.EntryClauseFeedback`); populated
        #: only when ``adaptive`` is set.
        self.feedback = EntryClauseFeedback(min_samples=min_feedback_tuples)
        self._catalog = ClauseCatalog(estimator, multi_clause)
        if storage not in ("memory", "disk"):
            raise ValueError(
                f"unknown storage {storage!r}; expected 'memory' or 'disk'"
            )
        self._storage = storage
        self._data_dir = data_dir
        if storage == "disk":
            # Imported lazily: the disk tier is optional machinery most
            # indexes never touch.
            import tempfile as _tempfile

            from ..disk.store import DiskTreeStore

            if data_dir is None:
                self._data_dir = _tempfile.mkdtemp(prefix="repro-disk-")
            self._store: TreeStore = DiskTreeStore(
                self._data_dir, stab_cache_size, memory_budget
            )
        else:
            if memory_budget is not None:
                raise ValueError("memory_budget requires storage='disk'")
            self._store = TreeStore(tree_factory, stab_cache_size)
        self._observer = StatsObserver(MatchStatistics())
        self._selector: Any = None
        pipeline_observer: Any = self._observer
        if auto_backend:
            from ..match.autoselect import DEFAULT_CANDIDATES, AutoSelector

            self._selector = AutoSelector(
                candidates=tuple(auto_candidates)
                if auto_candidates is not None
                else DEFAULT_CANDIDATES,
                cost_table=auto_cost_table,
                min_evidence_ops=min_evidence_ops,
                migration_ratio=auto_migration_ratio,
                default_backend=backend_name,
            )
            pipeline_observer = CompositeObserver(
                [self._observer, self._selector.observer]
            )
        self._pipeline = MatchPipeline(
            self._catalog,
            self._store,
            pipeline_observer,
            feedback=self.feedback,
            adaptive=self._adaptive,
            columnar=bool(columnar),
        )
        self._frozen = False
        self._maintenance = self._build_maintenance(
            maintenance, auto_retune_interval, autoselect_interval
        )

    def _build_maintenance(
        self,
        policy: Optional[MaintenancePolicy],
        retune_interval: Optional[int],
        autoselect_interval: Optional[int],
    ) -> Optional[MaintenanceScheduler]:
        """Register this index's periodic mechanisms as scheduler tasks.

        The legacy ``auto_retune_interval`` / ``autoselect_interval``
        constructor sugar maps to policy intervals (the policy wins
        when both are given).  When nothing is periodic and no policy
        was passed, no scheduler is built and the hot paths skip
        ticking entirely.
        """
        if policy is not None:
            if policy.retune_interval is not None:
                retune_interval = policy.retune_interval
            if policy.autoselect_interval is not None:
                autoselect_interval = policy.autoselect_interval
        wants_retune = self._adaptive and retune_interval is not None
        wants_autoselect = (
            self._selector is not None and autoselect_interval is not None
        )
        wants_evict = (
            policy is not None
            and policy.evict_interval is not None
            and hasattr(self._store, "maybe_evict")
        )
        if policy is None and not (wants_retune or wants_autoselect):
            return None
        scheduler = MaintenanceScheduler(
            policy=policy, observer=self._pipeline.observer
        )
        if wants_retune:
            scheduler.register_callback(
                "retune",
                lambda budget, relation: self.retune(relation),
                interval_ops=retune_interval,
                priority=10,
                cost_class="cheap",
            )
        if wants_autoselect:
            scheduler.register_callback(
                "autoselect",
                lambda budget, relation: self.autoselect(relation),
                interval_ops=autoselect_interval,
                priority=5,
                cost_class="bulk",
            )
        if wants_evict:
            scheduler.register_callback(
                "evict",
                lambda budget, relation: self._store.maybe_evict(),
                interval_ops=policy.evict_interval,
                priority=0,
                cost_class="io",
            )
        return scheduler

    def _tick(self, relation: Optional[str], count: int) -> None:
        """Advance the maintenance clock by *count* ops.

        The one op-count semantics (documented on
        :class:`~repro.maintenance.MaintenanceClock`): matched tuples
        and predicate writes tick, candidate-supplied matching does
        not, and a frozen index never ticks — so no maintenance task
        can run against frozen state.
        """
        if self._frozen:
            return
        self._maintenance.advance(count, relation=relation)

    @property
    def maintenance_scheduler(self) -> Optional[MaintenanceScheduler]:
        """The index's scheduler, or ``None`` when nothing is periodic."""
        return self._maintenance

    def maintenance_report(self) -> Dict[str, Any]:
        """Introspect the maintenance plane (mirrors :meth:`tuning_report`).

        Returns the clock position, the per-task table (intervals,
        runs, failures, backoff marks, quarantine flags), the active
        policy, and the dead-letter tail.  An index with no scheduler
        reports ``enabled: False``.
        """
        if self._maintenance is None:
            return {"enabled": False, "clock_ops": 0, "tasks": {}, "failures": []}
        return self._maintenance.report()

    # -- layer access (compat: tests reach into these) ---------------------

    @property
    def _relations(self) -> Dict[str, RelationState]:
        """The catalog's relation-name → state table."""
        return self._catalog.relations

    @property
    def _relation_of(self) -> Dict[Hashable, str]:
        """The catalog's ident → relation routing map."""
        return self._catalog.relation_of

    @property
    def _estimator(self) -> SelectivityEstimator:
        return self._catalog.estimator

    @property
    def _multi_clause(self) -> bool:
        return self._catalog.multi_clause

    @property
    def _stab_cache_size(self) -> int:
        return self._store.stab_cache_size

    @property
    def _cache_lru(self) -> bool:
        return self._store.cache_lru

    @property
    def stats(self) -> MatchStatistics:
        """Match-pipeline counters (see :class:`MatchStatistics`)."""
        return self._observer.stats

    @stats.setter
    def stats(self, value: MatchStatistics) -> None:
        self._observer.stats = value

    # -- snapshot support --------------------------------------------------

    def freeze(self) -> None:
        """Make the index permanently immutable.

        Every per-attribute tree is frozen (backends without a
        ``freeze`` method are skipped) and subsequent calls to
        :meth:`add`, :meth:`add_many`, :meth:`remove`, :meth:`retune`
        and :meth:`verify_and_rebuild` raise
        :class:`~repro.errors.PredicateError`.  Matching remains
        available — the epoch-snapshot layer (:mod:`repro.concurrency`)
        publishes frozen indexes that lock-free readers stab
        concurrently.  A frozen index intended for concurrent reads
        must be built with ``adaptive=False`` (the feedback counters
        mutate on the read path and are not synchronised), but the stab
        cache *may* stay on: freezing demotes it from LRU to
        append-only — hits skip the move-to-end touch, and inserts stop
        once the cache is full instead of evicting — and swaps the
        ``OrderedDict`` for a plain ``dict`` (odict inserts also splice
        a C-level linked list, which concurrent writers can corrupt),
        so every remaining cache operation is a single GIL-atomic
        ``dict`` access, and
        since nothing ever deletes a key from a frozen index's cache, a
        looked-up key cannot vanish mid-read.  Because frozen trees
        never bump their epochs, those cached stabs stay valid for the
        snapshot's whole lifetime — this is what lets an epoch-snapshot
        base keep serving cache hits across writes that would invalidate
        a mutable index's entire cache.  (Lazy residual compilation is
        likewise safe — per-key dict writes are atomic under the GIL and
        every thread computes the same value.)
        """
        self._frozen = True
        self._store.cache_lru = False
        for state in self._catalog.relations.values():
            self._store.freeze_state(state)

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def _check_mutable(self) -> None:
        if self._frozen:
            raise PredicateError(
                "PredicateIndex is frozen (published in an epoch snapshot); "
                "build a successor index instead of mutating"
            )

    def tree_epochs(self, relation: str) -> Dict[str, int]:
        """Current ``attribute -> tree epoch`` map for *relation*.

        Publication hook for the epoch-snapshot layer and its checker:
        thanks to the per-relation epoch floor the values are monotone
        over the index's whole life, even across tree drop/recreate and
        :meth:`verify_and_rebuild`.  Unknown relations map to ``{}``.
        """
        state = self._catalog.relations.get(relation)
        if state is None:
            return {}
        return self._store.tree_epochs(state)

    # -- disk-tier introspection --------------------------------------------

    @property
    def storage(self) -> str:
        """``"memory"`` or ``"disk"``."""
        return self._storage

    @property
    def data_dir(self) -> Optional[str]:
        """The disk tier's data directory (``None`` on the memory tier)."""
        return self._data_dir

    def resident_bytes(self) -> int:
        """Approximate decoded-object bytes the trees hold in RAM.

        On the disk tier this is the evictable residency the store's
        ``memory_budget`` bounds — mmap'd pages are *not* counted, they
        belong to the OS page cache.  On the memory tier it is a
        per-interval/per-node approximation of the full object graph
        (there is nowhere to evict to, so the number is diagnostic).
        """
        counter = getattr(self._store, "resident_bytes", None)
        if counter is not None:
            return int(counter())
        total = 0
        for state in self._catalog.relations.values():
            for tree in state.trees.values():
                total += 200 * len(tree) + 120 * getattr(tree, "node_count", 0)
        return total

    def maybe_evict(self) -> bool:
        """Shed cold decoded trees if the store is over its budget.

        Disk-tier stores run their coldest-first eviction sweep and
        return True; memory-tier stores have nowhere to evict to and
        return False.  Safe on a frozen index (eviction drops caches,
        never structure) — the maintenance plane's ``evict`` task calls
        this on every live shard base.
        """
        sweep = getattr(self._store, "maybe_evict", None)
        if sweep is None:
            return False
        sweep()
        return True

    def seal(self, release: bool = False) -> Dict[str, Dict[str, str]]:
        """Seal every disk-backed tree to its segment file.

        Returns ``{relation: {attribute: segment path}}``.  With
        ``release`` the staging copies are dropped afterwards (they
        rehydrate on demand).  No-op trees (memory tier) are skipped.
        """
        out: Dict[str, Dict[str, str]] = {}
        for relation, state in self._catalog.relations.items():
            sealed: Dict[str, str] = {}
            for attribute, tree in state.trees.items():
                sealer = getattr(tree, "seal", None)
                if sealer is not None:
                    sealed[attribute] = sealer(release=release)
            if sealed:
                out[relation] = sealed
        return out

    def segment_catalog(self) -> Dict[str, Dict[str, Optional[str]]]:
        """``{relation: {attribute: current segment path or None}}``.

        ``None`` marks a dirty tree (staged mutations not yet sealed).
        Empty on the memory tier.
        """
        out: Dict[str, Dict[str, Optional[str]]] = {}
        for relation, state in self._catalog.relations.items():
            row: Dict[str, Optional[str]] = {}
            for attribute, tree in state.trees.items():
                if getattr(tree, "disk_backed", False):
                    row[attribute] = tree.segment_path
            if row:
                out[relation] = row
        return out

    # -- registration -------------------------------------------------------

    def add(self, predicate: Predicate) -> Hashable:
        """Index *predicate*; returns its identifier.

        The predicate is normalized first (same-attribute interval
        clauses merged); a contradictory predicate is rejected since it
        can never match.  Atomic: a failure (e.g. an injected fault in
        a tree insert) leaves no trace of the predicate behind.
        """
        self._check_mutable()
        ident = self._catalog.register(self._store, predicate)
        if self._selector is not None:
            self._observe_write(ident, insert=True)
        if self._maintenance is not None:
            self._tick(self._catalog.relation_of.get(ident), 1)
        return ident

    def add_many(self, predicates: Iterable[Predicate]) -> List[Hashable]:
        """Bulk-register *predicates*; returns their identifiers in order.

        Equivalent to ``[self.add(p) for p in predicates]`` but entry
        clauses destined for an attribute with **no existing tree** are
        collected and handed to the backend's :meth:`~IBSTree.bulk_load`
        in one pass — sorted endpoints, balanced structure, no per-insert
        rotations — which is how recovery and rule-set loading should
        register a large predicate population.  Clauses for attributes
        that already have a live tree are inserted incrementally (the
        tree is not rebuilt under its existing entries).

        Atomic: on any failure every predicate this call registered is
        removed again before the exception propagates.
        """
        self._check_mutable()
        idents = self._catalog.register_many(self._store, predicates)
        if self._selector is not None:
            for ident in idents:
                self._observe_write(ident, insert=True)
        if self._maintenance is not None and idents:
            self._tick(None, len(idents))
        return idents

    def remove(self, ident: Hashable) -> Predicate:
        """Un-index and return the predicate registered under *ident*."""
        self._check_mutable()
        if self._selector is not None:
            # capture the entry attributes before they are unregistered
            self._observe_write(ident, insert=False)
        relation = self._catalog.relation_of.get(ident)
        predicate = self._catalog.unregister(self._store, ident)
        if self._maintenance is not None:
            self._tick(relation, 1)
        return predicate

    def _observe_write(self, ident: Hashable, insert: bool) -> None:
        """Feed one registration/removal into the selector's evidence."""
        relation = self._catalog.relation_of.get(ident)
        if relation is None:
            return
        evidence = self._selector.evidence
        for attribute in self._catalog.indexed_attributes(ident):
            if insert:
                evidence.observe_insert(relation, attribute)
            else:
                evidence.observe_delete(relation, attribute)

    # -- matching ----------------------------------------------------------

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        """All predicates of *relation* that fully match the tuple."""
        matched = self._pipeline.match(relation, tup)
        if self._maintenance is not None:
            self._tick(relation, 1)
        return matched

    def match_idents(self, relation: str, tup: Mapping[str, Any]) -> Set[Hashable]:
        """Identifiers of all fully matching predicates."""
        matched = self._pipeline.match_idents(relation, tup)
        if self._maintenance is not None:
            self._tick(relation, 1)
        return matched

    def match_with_candidates(
        self, relation: str, tup: Mapping[str, Any]
    ) -> Iterator[Tuple[Optional[Predicate], Hashable]]:
        """Yield ``(predicate_or_None, ident)`` for each candidate.

        A candidate whose residual test fails yields ``(None, ident)``;
        a full match yields the predicate.  Exposed so benchmarks can
        count partial matches exactly as the cost model does.
        """
        return self._pipeline.match_with_candidates(relation, tup)

    def match_batch(
        self, relation: str, tuples: Iterable[Mapping[str, Any]]
    ) -> List[List[Predicate]]:
        """Match a batch of tuples; returns one result list per tuple.

        Semantically identical to ``[self.match(relation, t) for t in
        tuples]`` (the differential tests assert exactly that), but the
        work is restructured around the batch — grouped per-attribute
        stab descents, compiled residual evaluators, and a per-batch
        memo; see :meth:`MatchPipeline.match_batch` for the stages.
        Batches containing unhashable or infinity-sentinel values in
        indexed attributes fall back to the per-tuple loop
        transparently.
        """
        tuple_list = list(tuples)
        results = self._pipeline.match_batch(relation, tuple_list)
        if self._maintenance is not None and tuple_list:
            self._tick(relation, len(tuple_list))
        return results

    # -- adaptive entry-clause migration -----------------------------------

    def retune(self, relation: Optional[str] = None) -> List[Hashable]:
        """One feedback-driven migration pass; returns migrated idents.

        For every indexed predicate of *relation* (or of every relation)
        with enough observed samples, compare the **observed**
        selectivity of its current entry clause — the fraction of
        matched tuples that admitted it as a candidate — against the
        estimated selectivity of its best indexable clause on a
        *different* attribute.  When the alternative's estimate is below
        ``observed * migration_ratio``, the entry clause is migrated to
        the alternative's attribute tree: the static "most selective
        clause" choice the paper fixes at registration time is revised
        with live evidence.

        The migration is transactional per predicate: the old entry is
        re-inserted if the new tree's insert fails, and if *that* also
        fails the predicate is parked on the non-indexable list (brute
        force is always sound) before the failure propagates.  After a
        pass the relation's feedback window is reset so the next
        decision rests on fresh evidence.  No-op under multi-clause
        indexing (every indexable clause is already entered) and before
        ``min_feedback_tuples`` samples.
        """
        self._check_mutable()
        return self._catalog.retune(
            self._store,
            self.feedback,
            self._migration_ratio,
            self._observer,
            relation,
        )

    # -- backend auto-selection --------------------------------------------

    def autoselect(self, relation: Optional[str] = None) -> List[Any]:
        """One cost-driven backend-selection pass; returns the decisions.

        For every attribute tree of *relation* (or of every relation)
        whose evidence window cleared the floor, price each candidate
        backend against the observed stab/insert/delete mix and —
        when the best one beats the current backend by the hysteresis
        margin — transactionally rebuild the attribute's tree on it
        (``bulk_load``, epoch bump, stab-cache clear, version bump).
        Failed migrations are quarantined and the pass continues.  See
        :class:`~repro.match.autoselect.AutoSelector` for the
        discipline's knobs; decisions are
        :class:`~repro.match.autoselect.BackendDecision` records.
        """
        self._check_mutable()
        if self._selector is None:
            raise PredicateError(
                "backend auto-selection is disabled; construct the index "
                "with auto_backend=True (or Database(matcher='auto'))"
            )
        return self._selector.run_pass(
            self._catalog, self._store, self._pipeline.observer, relation
        )

    def tuning_report(self) -> Dict[str, Any]:
        """Introspect the auto-selection loop's state.

        Returns the selector's evidence windows, the latest
        per-attribute decisions (including kept ones), the committed
        migration history, active quarantines, and the current
        per-attribute backend map.
        """
        if self._selector is None:
            raise PredicateError(
                "backend auto-selection is disabled; construct the index "
                "with auto_backend=True (or Database(matcher='auto'))"
            )
        report = self._selector.report()
        report["attribute_backends"] = {
            relation: self.attribute_backends(relation)
            for relation in self._catalog.relations
        }
        return report

    def attribute_backends(self, relation: str) -> Dict[str, Optional[str]]:
        """``attribute -> backend name`` for *relation*'s live trees.

        Attributes still on the store-wide default report the default
        backend's registry name, or ``None`` when the index was built
        with an anonymous factory.
        """
        state = self._catalog.relations.get(relation)
        if state is None:
            return {}
        default = None
        if self._selector is not None:
            default = self._selector.default_backend
        elif self._tree_factory is IBSTree:
            default = "ibs"
        result: Dict[str, Optional[str]] = {}
        for attribute in state.trees:
            override = state.tree_backends.get(attribute)
            result[attribute] = override[0] if override else default
        return result

    def set_backend_plan(
        self, plan: Mapping[str, Mapping[str, Tuple[str, Callable[[], Any]]]]
    ) -> None:
        """Seed the catalog's durable per-attribute backend plan.

        Used by the concurrent facade when it builds a fresh frozen
        base: the plan makes every future tree construction (including
        this index's first ``add_many``) come up on the auto-selected
        backends.  Existing live trees are not rebuilt — call
        :meth:`autoselect` or rebuild for that.
        """
        self._catalog.backend_plan = {
            relation: dict(per_attribute)
            for relation, per_attribute in plan.items()
        }
        for relation, per_attribute in self._catalog.backend_plan.items():
            state = self._catalog.relations.get(relation)
            if state is not None:
                state.tree_backends.update(per_attribute)

    # -- introspection ---------------------------------------------------------

    def get(self, ident: Hashable) -> Predicate:
        """Return the predicate registered under *ident*."""
        return self._catalog.get(ident)

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._catalog

    def __len__(self) -> int:
        """Total number of indexed predicates across all relations."""
        return len(self._catalog)

    def predicates_for(self, relation: str) -> List[Predicate]:
        """All predicates registered for *relation*."""
        return self._catalog.predicates_for(relation)

    def relations(self) -> List[str]:
        """Relations with at least one registered predicate."""
        return list(self._catalog.relations)

    def indexed_attribute(self, ident: Hashable) -> Optional[str]:
        """The (first) attribute whose tree holds this predicate, or None."""
        attributes = self.indexed_attributes(ident)
        return attributes[0] if attributes else None

    def indexed_attributes(self, ident: Hashable) -> Tuple[str, ...]:
        """Every attribute whose tree holds this predicate (may be empty)."""
        return self._catalog.indexed_attributes(ident)

    def tree_for(self, relation: str, attribute: str) -> Optional[IBSTree]:
        """The IBS-tree for ``relation.attribute``, if one exists."""
        state = self._catalog.relations.get(relation)
        if state is None:
            return None
        return state.trees.get(attribute)

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Structural summary per relation (for reports and debugging)."""
        summary: Dict[str, Dict[str, Any]] = {}
        for relation, state in self._catalog.relations.items():
            summary[relation] = {
                "predicates": len(state.predicates),
                "non_indexable": len(state.non_indexable),
                "trees": {
                    attr: len(tree) for attr, tree in state.trees.items()
                },
            }
        return summary

    # -- self-healing ----------------------------------------------------------

    def check_invariants(self) -> bool:
        """Validate the whole index; raise on any violation.

        Checks the cross-registry bookkeeping (predicates table,
        ``indexed_under``, ``non_indexable``, ``_relation_of``), runs
        every per-attribute tree's own invariant validator, and
        differentially probes each tree against a freshly built
        reference (see :meth:`audit`).  Returns True when healthy,
        raises :class:`~repro.errors.TreeInvariantError` otherwise.
        """
        return _health.check_invariants(self._catalog, self._tree_factory)

    def audit(self) -> List[str]:
        """Non-raising health check: a list of problem descriptions.

        An empty list means the index is healthy.  Beyond the
        registry-consistency checks and each tree's internal
        validator, every tree is *differentially* probed: a reference
        tree is rebuilt from the same intervals and both are stabbed
        at every finite clause endpoint.  This catches completeness
        corruption — markers silently lost by an interrupted
        structural delete — that is invisible to the internal
        validator, which only proves the markers still present sound.
        """
        return _health.audit(self._catalog, self._tree_factory)

    def verify_and_rebuild(self) -> Dict[str, Any]:
        """Detect index corruption and repair it in place.

        Audits every relation; for each one reporting problems, drops
        its per-attribute trees and rebuilds them from the PREDICATES
        table — the durable source of truth — preserving identifiers
        and entry-clause choices, then re-audits (including the
        differential probe check) to prove the repair took.  Orphaned
        ``_relation_of`` entries with no backing predicate are pruned.

        Returns a report ``{"healthy": bool, "problems": [...],
        "rebuilt": [relation, ...]}`` where ``healthy`` reflects the
        state *before* repair.  Raises
        :class:`~repro.errors.TreeInvariantError` only if a rebuilt
        relation still fails its audit (the predicates table itself is
        damaged beyond repair).
        """
        self._check_mutable()
        return _health.verify_and_rebuild(
            self._catalog, self._store, self._tree_factory
        )

    def _rebuild_relation(self, relation: str, state: RelationState) -> None:
        """Rebuild *relation*'s trees and registries from its predicates."""
        self._catalog.rebuild_relation(self._store, relation, state)

    def __repr__(self) -> str:
        return (
            f"<PredicateIndex {len(self)} predicates over "
            f"{len(self._catalog.relations)} relations>"
        )
