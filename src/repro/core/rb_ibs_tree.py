"""Red-black balanced IBS-tree.

The paper's Section 4.3 lists the balanced-tree schemes whose
rebalancing reduces to single/double rotations: AVL trees [AL62],
"balanced binary trees (or red-black trees)" [Bay72, GS78], and
self-adjusting trees [Tar83].  Since Figure 6 makes rotations
marker-safe, any of them can balance an IBS-tree;
:class:`~repro.core.avl_ibs_tree.AVLIBSTree` implements the AVL scheme
and this module the red-black scheme (CLRS-style insert and delete
fixups, colors on nodes, rotations through
:mod:`repro.core.rotations`).

Red-black trees guarantee height ≤ 2·log2(N+1) — slightly taller than
AVL's 1.44·log2(N+2) — but rebalance with at most O(1) rotations per
*deletion* as well as per insertion, which matters for the IBS-tree
because each rotation costs O(log N) marker work on average (paper
Section 5.1).
"""

from __future__ import annotations

from typing import Optional

from ..errors import TreeInvariantError
from .ibs_tree import IBSNode, IBSTree
from .rotations import rotate_left, rotate_right

__all__ = ["RBIBSTree"]


def _is_red(node: Optional[IBSNode]) -> bool:
    """None children are black (the classic sentinel convention)."""
    return node is not None and node.red


class RBIBSTree(IBSTree):
    """An IBS-tree kept balanced with red-black recolouring + rotations.

    Drop-in replacement for :class:`~repro.core.ibs_tree.IBSTree`;
    public API identical.  Compared with the AVL variant it tolerates
    slightly deeper trees in exchange for fewer delete-time rotations.
    """

    # -- insertion -----------------------------------------------------

    def _after_endpoint_insert(self, node: IBSNode) -> None:
        # freshly created nodes are red (IBSNode default)
        self._insert_fixup(node)
        self._update_heights_upward(node)

    def _insert_fixup(self, node: IBSNode) -> None:
        while node.parent is not None and node.parent.red:
            parent = node.parent
            grand = parent.parent
            if grand is None:  # pragma: no cover - red root is fixed below
                break
            if parent is grand.left:
                uncle = grand.right
                if _is_red(uncle):
                    parent.red = False
                    uncle.red = False
                    grand.red = True
                    node = grand
                    continue
                if node is parent.right:
                    rotate_left(self, parent)
                    node, parent = parent, node
                parent.red = False
                grand.red = True
                rotate_right(self, grand)
            else:
                uncle = grand.left
                if _is_red(uncle):
                    parent.red = False
                    uncle.red = False
                    grand.red = True
                    node = grand
                    continue
                if node is parent.left:
                    rotate_right(self, parent)
                    node, parent = parent, node
                parent.red = False
                grand.red = True
                rotate_left(self, grand)
        self._root.red = False

    # -- bulk load ------------------------------------------------------

    def _after_bulk_build(self) -> None:
        """Recolour the midpoint-balanced bulk structure red-black.

        Every node is black except the deepest level, which is red.  In
        a midpoint-balanced tree every missing-child position sits on
        the last or second-to-last level, so each root-to-None path has
        exactly the same number of black nodes and no red node has a
        red child.
        """
        root = self._root
        if root is None:
            return
        deepest = root.height
        stack = [(root, 1)]
        while stack:
            node, depth = stack.pop()
            node.red = depth == deepest and depth > 1
            if node.left is not None:
                stack.append((node.left, depth + 1))
            if node.right is not None:
                stack.append((node.right, depth + 1))

    # -- deletion -------------------------------------------------------

    def _splice(self, node: IBSNode) -> None:
        was_red = node.red
        child = node.left if node.left is not None else node.right
        parent = node.parent
        super()._splice(node)
        if not was_red:
            self._delete_fixup(child, parent)
        if self._root is not None:
            self._root.red = False

    def _delete_fixup(
        self, x: Optional[IBSNode], parent: Optional[IBSNode]
    ) -> None:
        """Restore the equal-black-height invariant after removing a
        black node whose (possibly None) child *x* took its place."""
        while x is not self._root and not _is_red(x) and parent is not None:
            if x is parent.left:
                sibling = parent.right
                if sibling is None:  # pragma: no cover - impossible in valid RB
                    break
                if sibling.red:
                    sibling.red = False
                    parent.red = True
                    rotate_left(self, parent)
                    sibling = parent.right
                if not _is_red(sibling.left) and not _is_red(sibling.right):
                    sibling.red = True
                    x, parent = parent, parent.parent
                    continue
                if not _is_red(sibling.right):
                    sibling.left.red = False
                    sibling.red = True
                    rotate_right(self, sibling)
                    sibling = parent.right
                sibling.red = parent.red
                parent.red = False
                if sibling.right is not None:
                    sibling.right.red = False
                rotate_left(self, parent)
                x, parent = self._root, None
            else:
                sibling = parent.left
                if sibling is None:  # pragma: no cover - impossible in valid RB
                    break
                if sibling.red:
                    sibling.red = False
                    parent.red = True
                    rotate_right(self, parent)
                    sibling = parent.left
                if not _is_red(sibling.right) and not _is_red(sibling.left):
                    sibling.red = True
                    x, parent = parent, parent.parent
                    continue
                if not _is_red(sibling.left):
                    sibling.right.red = False
                    sibling.red = True
                    rotate_left(self, sibling)
                    sibling = parent.left
                sibling.red = parent.red
                parent.red = False
                if sibling.left is not None:
                    sibling.left.red = False
                rotate_right(self, parent)
                x, parent = self._root, None
        if x is not None:
            x.red = False

    # -- validation -------------------------------------------------------

    def validate(self) -> None:
        """All base invariants, plus the red-black colour rules."""
        super().validate()
        if self._root is not None and self._root.red:
            raise TreeInvariantError("red-black violation: red root")
        self._black_height(self._root)

    def _black_height(self, node: Optional[IBSNode]) -> int:
        if node is None:
            return 1
        if node.red and (_is_red(node.left) or _is_red(node.right)):
            raise TreeInvariantError(
                f"red-black violation: red node {node.value!r} has a red child"
            )
        left = self._black_height(node.left)
        right = self._black_height(node.right)
        if left != right:
            raise TreeInvariantError(
                f"red-black violation: unequal black heights at {node.value!r}"
            )
        return left + (0 if node.red else 1)
