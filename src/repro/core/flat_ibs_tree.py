"""A flat, array-backed IBS-tree with integer-bitset marker sets.

:class:`FlatIBSTree` answers exactly the same stabbing queries as
:class:`~repro.core.ibs_tree.IBSTree` — the paper's Section 4.2
structure — but trades the pointer-per-node object layout for a
cache-friendlier representation tuned to CPython:

* **parallel arrays** — node values, left/right/parent links, and
  heights live in plain Python lists indexed by a dense node id, so a
  root-to-leaf descent touches a handful of list cells instead of
  chasing attribute lookups through heap objects;
* **interned interval identifiers** — every identifier is mapped to a
  dense small integer (its *bit*) on insertion, with freed bits
  recycled on deletion;
* **bitset marker sets** — each node's ``<`` / ``=`` / ``>`` marker
  set is a single Python int whose bit *k* is set when interval *k*
  is marked there.  A stabbing descent then unions markers with
  integer ``|`` — one arbitrary-precision OR per visited node —
  instead of building intermediate ``set`` objects, and the result is
  decoded back to identifiers once, at the end.

The flat layout is inspired by the array-packed search trees of the
cache-efficiency literature (e.g. *Zipping Segment Trees*, Barth &
Wagner 2020): the win is not asymptotic — insert, delete, and stab
keep the paper's bounds — but constant-factor, which is exactly where
a per-tuple hot path spends its time.

The class is interface-compatible with :class:`IBSTree` (``insert`` /
``delete`` / ``stab`` / ``stab_into`` / ``stab_many`` /
``overlapping`` / ``validate`` / statistics), so it drops into
``PredicateIndex(tree_factory=FlatIBSTree)`` and the existing
differential and property test suites unchanged.  Like the paper's
measured variant it is unbalanced; balance comes from random insertion
order.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import (
    DuplicateIntervalError,
    TreeError,
    TreeInvariantError,
    UnknownIntervalError,
)
from ..testing.faults import fault_point
from .ibs_tree import EQ, GT, LT, _strictly_less
from .intervals import MINUS_INF, PLUS_INF, Interval, is_infinite

__all__ = ["FlatIBSTree"]

#: Null link in the parallel arrays.
NIL = -1

_SLOT_NAMES = ("<", "=", ">")


class FlatIBSTree:
    """Array-backed IBS-tree: same queries, flat storage, bitset markers.

    Example::

        >>> from repro import FlatIBSTree, Interval
        >>> tree = FlatIBSTree()
        >>> tree.insert(Interval.closed(9, 19), "A")
        'A'
        >>> tree.insert(Interval.closed_open(2, 7), "B")
        'B'
        >>> tree.insert(Interval.at_most(17), "G")
        'G'
        >>> sorted(tree.stab(5))
        ['B', 'G']
        >>> tree.delete("B")
        >>> sorted(tree.stab(5))
        ['G']
    """

    #: Interface flags shared with the other interval indexes.
    supports_dynamic_insert = True
    supports_dynamic_delete = True
    supports_open_bounds = True
    supports_unbounded = True

    def __init__(self) -> None:
        # -- node storage: parallel arrays indexed by node id ----------
        self._value: List[Any] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._parent: List[int] = []
        self._node_height: List[int] = []
        #: per-node marker bitsets, one int per slot kind
        self._marks: Tuple[List[int], List[int], List[int]] = ([], [], [])
        self._free_nodes: List[int] = []
        self._root: int = NIL
        # -- identifier interning --------------------------------------
        #: ident -> dense bit index
        self._bit_of: Dict[Hashable, int] = {}
        #: bit index -> ident (None while the bit is free)
        self._ident_of: List[Optional[Hashable]] = []
        #: bit index -> interval
        self._interval_of: List[Optional[Interval]] = []
        self._free_bits: List[int] = []
        #: bit index -> exact (node, slot) marker locations
        self._marker_locs: List[Set[Tuple[int, int]]] = []
        #: endpoint value -> bits of intervals anchored there
        self._endpoint_bits: Dict[Any, Set[int]] = {}
        self._ident_counter = itertools.count()
        #: decoded marker sets, keyed ``node * 3 + slot``; invalidated
        #: wholesale on any mutation.  Decoding a sparse bitset costs
        #: O(words) big-int work per set bit, so stab-heavy phases
        #: (especially :meth:`stab_many`) decode each hot node once and
        #: union cached frozensets at C speed afterwards.
        self._slot_cache: Dict[int, frozenset] = {}
        #: monotone mutation counter (see :attr:`IBSTree.epoch`); unlike
        #: :attr:`_slot_cache` it survives :meth:`clear`, so external
        #: epoch-keyed stab caches stay coherent across resets.
        self.epoch = 0
        #: set by :meth:`freeze`; mutators refuse to run afterwards (see
        #: :meth:`IBSTree.freeze`).  Note the :attr:`_slot_cache` decode
        #: cache still fills lazily on reads — per-key dict writes are
        #: atomic under the GIL and every thread computes the same
        #: frozenset for a given key, so concurrent stabs stay safe.
        self._frozen = False

    def freeze(self) -> None:
        """Make the tree permanently immutable (see :meth:`IBSTree.freeze`)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def _check_mutable(self) -> None:
        if self._frozen:
            raise TreeError(
                f"{type(self).__name__} is frozen (published in an epoch "
                "snapshot); build a new tree instead of mutating"
            )

    # ------------------------------------------------------------------
    # public API (mirrors IBSTree)
    # ------------------------------------------------------------------

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        """Insert *interval* under identifier *ident* and return the identifier."""
        if ident is None:
            ident = next(self._ident_counter)
            while ident in self._bit_of:
                ident = next(self._ident_counter)
        if ident in self._bit_of:
            raise DuplicateIntervalError(ident)
        self._check_mutable()
        self.epoch += 1
        self._slot_cache.clear()
        bit = self._intern(ident, interval)
        for value in (interval.low, interval.high):
            self._endpoint_bits.setdefault(value, set()).add(bit)
        try:
            self._place_markers(bit, interval)
        except BaseException:
            self._rollback_insert(ident, bit, interval)
            raise
        return ident

    def _rollback_insert(self, ident: Hashable, bit: int, interval: Interval) -> None:
        """Undo a partially applied :meth:`insert` after a mid-placement failure.

        Exact inverse of the registration above: markers placed so far
        are removed via the marker registry, endpoint nodes created for
        this interval alone are structurally deleted, and the interned
        bit is released back to the free list.
        """
        self._slot_cache.clear()
        self._remove_markers(bit)
        for value in {interval.low, interval.high}:
            anchored = self._endpoint_bits.get(value)
            if anchored is None:
                continue
            anchored.discard(bit)
            if not anchored:
                del self._endpoint_bits[value]
                if self._find_node(value) >= 0:
                    self._delete_endpoint_node(value)
        self._bit_of.pop(ident, None)
        self._ident_of[bit] = None
        self._interval_of[bit] = None
        self._free_bits.append(bit)

    def delete(self, ident: Hashable) -> None:
        """Remove the interval registered under *ident*."""
        self._check_mutable()
        try:
            bit = self._bit_of.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        self.epoch += 1
        self._slot_cache.clear()
        interval = self._interval_of[bit]
        self._remove_markers(bit)
        for value in {interval.low, interval.high}:
            anchored = self._endpoint_bits[value]
            anchored.discard(bit)
            if not anchored:
                del self._endpoint_bits[value]
                self._delete_endpoint_node(value)
        self._ident_of[bit] = None
        self._interval_of[bit] = None
        self._free_bits.append(bit)

    def bulk_load(
        self, items: Iterable[Tuple[Interval, Optional[Hashable]]]
    ) -> List[Hashable]:
        """Load many intervals into an **empty** tree in one pass.

        Flat-storage counterpart of :meth:`IBSTree.bulk_load`: interns
        every identifier to a dense bit, sorts the distinct endpoints
        once, lays a perfectly balanced tree into the parallel arrays by
        midpoint recursion, and then places markers with the final
        structure already in place — no per-insert height fixups.
        All-or-nothing: any failure resets the tree to empty.
        """
        self._check_mutable()
        if self._bit_of or self._root >= 0:
            raise TreeError("bulk_load requires an empty tree")
        self.epoch += 1
        resolved: List[Tuple[int, Interval]] = []
        idents: List[Hashable] = []
        try:
            for interval, ident in items:
                if ident is None:
                    ident = next(self._ident_counter)
                    while ident in self._bit_of:
                        ident = next(self._ident_counter)
                if ident in self._bit_of:
                    raise DuplicateIntervalError(ident)
                bit = self._intern(ident, interval)
                for value in (interval.low, interval.high):
                    self._endpoint_bits.setdefault(value, set()).add(bit)
                resolved.append((bit, interval))
                idents.append(ident)
            ordered = self._sorted_endpoint_values()
            slots: List[int] = [NIL] * len(ordered)
            self._root = self._build_balanced(ordered, slots)
            fault_point("tree.bulk_load")
            self._bulk_place_markers(ordered, slots, resolved)
        except BaseException:
            # The tree was empty on entry, so wholesale reset is an
            # exact rollback.
            self.clear()
            raise
        return idents

    def _bulk_place_markers(
        self,
        ordered: List[Any],
        slots: List[int],
        resolved: List[Tuple[int, Interval]],
    ) -> None:
        """Index-space ``addLeft``/``addRight`` over the midpoint build.

        Same scheme as :meth:`IBSTree._bulk_place_markers`: because
        every interval endpoint sits at a known position in *ordered*
        and the midpoint build makes each search path a binary chop over
        index ranges, all marker-rule comparisons reduce to integer
        compares, the pre-fork prefix provably places no marks (it is a
        bare binary search), and marks are OR-ed straight into the
        bitmask arrays.
        """
        n = len(ordered)
        if n == 0:
            return
        index_of = {value: i for i, value in enumerate(ordered)}
        iminus = 0 if ordered[0] is MINUS_INF else -7
        iplus = n - 1 if ordered[n - 1] is PLUS_INF else -7
        lt_bits, eq_bits, gt_bits = self._marks
        # Shared (node, slot) location tuples per sorted position: each
        # mark is then one bitmask OR and one bound-method call, with no
        # per-mark attribute lookups or tuple allocations.
        lt_loc = [(node, LT) for node in slots]
        eq_loc = [(node, EQ) for node in slots]
        gt_loc = [(node, GT) for node in slots]
        marker_locs = self._marker_locs
        top = n - 1
        for bit, interval in resolved:
            lo_i = index_of[interval.low]
            hi_i = index_of[interval.high]
            low_inc = interval.low_inclusive
            high_inc = interval.high_inclusive
            mask = 1 << bit
            locs_add = marker_locs[bit].add
            # -- shared prefix: pure binary chop to the fork -----------
            l, h = 0, top
            while True:
                m = (l + h) >> 1
                if m < lo_i:
                    l = m + 1
                elif m > hi_i:
                    h = m - 1
                else:
                    break
            fork_l, fork_h = l, h
            # -- addLeft suffix: fork down to lo_i ---------------------
            rb_le_high = hi_i == iplus  # unchanged through the prefix
            while True:
                m = (l + h) >> 1
                if m < lo_i:
                    l = m + 1
                elif m > lo_i:
                    if m != iplus:
                        node = slots[m]
                        if m < hi_i or high_inc:
                            eq_bits[node] |= mask
                            locs_add(eq_loc[m])
                        if rb_le_high:
                            gt_bits[node] |= mask
                            locs_add(gt_loc[m])
                    rb_le_high = True  # lo_i < m <= hi_i after the fork
                    h = m - 1
                else:
                    node = slots[m]
                    if rb_le_high and m != iplus:
                        gt_bits[node] |= mask
                        locs_add(gt_loc[m])
                    if low_inc:
                        eq_bits[node] |= mask
                        locs_add(eq_loc[m])
                    break
            # -- addRight suffix: fork down to hi_i --------------------
            l, h = fork_l, fork_h
            lb_ge_low = lo_i == iminus  # unchanged through the prefix
            while True:
                m = (l + h) >> 1
                if m > hi_i:
                    h = m - 1
                elif m < hi_i:
                    if m != iminus:
                        node = slots[m]
                        if m > lo_i or low_inc:
                            eq_bits[node] |= mask
                            locs_add(eq_loc[m])
                        if lb_ge_low:
                            lt_bits[node] |= mask
                            locs_add(lt_loc[m])
                    lb_ge_low = True  # lo_i <= m < hi_i after the fork
                    l = m + 1
                else:
                    node = slots[m]
                    if lb_ge_low and m != iminus:
                        lt_bits[node] |= mask
                        locs_add(lt_loc[m])
                    if high_inc:
                        eq_bits[node] |= mask
                        locs_add(eq_loc[m])
                    break

    def _sorted_endpoint_values(self) -> List[Any]:
        """Distinct endpoint values in tree order, sentinels at the ends."""
        finite = sorted(v for v in self._endpoint_bits if not is_infinite(v))
        ordered: List[Any] = []
        if MINUS_INF in self._endpoint_bits:
            ordered.append(MINUS_INF)
        ordered.extend(finite)
        if PLUS_INF in self._endpoint_bits:
            ordered.append(PLUS_INF)
        return ordered

    def _build_balanced(self, ordered: List[Any], slots: List[int]) -> int:
        """Lay *ordered* values into the arrays as a balanced tree.

        Fills ``slots[i]`` with the array index of the node holding
        ``ordered[i]`` so the bulk marker pass can address nodes by
        sorted position.
        """
        left, right, heights = self._left, self._right, self._node_height

        def build(lo: int, hi: int, parent: int) -> int:
            if lo > hi:
                return NIL
            mid = (lo + hi) // 2
            idx = self._new_node(ordered[mid], parent)
            slots[mid] = idx
            left[idx] = build(lo, mid - 1, idx)
            right[idx] = build(mid + 1, hi, idx)
            # a midpoint-balanced subtree over k values has height
            # floor(log2 k) + 1 = k.bit_length()
            heights[idx] = (hi - lo + 1).bit_length()
            return idx

        return build(0, len(ordered) - 1, NIL)

    def stab(self, x: Any) -> Set[Hashable]:
        """Identifiers of all intervals containing *x* (``findIntervals``)."""
        return set().union(*self._stab_sets(x))

    # The paper's name for the stabbing query.
    find_intervals = stab

    def stab_mask(self, x: Any) -> int:
        """The stabbing answer as a raw bitset (bit *k* = interval *k*).

        This is the flat backend's native answer shape: callers that
        combine several stabs (the batched matcher) can OR masks and
        decode identifiers once.
        """
        values = self._value
        left, right = self._left, self._right
        lt_bits, eq_bits, gt_bits = self._marks
        mask = 0
        node = self._root
        while node >= 0:
            value = values[node]
            if x == value:
                mask |= eq_bits[node]
                break
            if x < value:
                mask |= lt_bits[node]
                node = left[node]
            else:
                mask |= gt_bits[node]
                node = right[node]
        return mask

    def stab_into(self, x: Any, out: Set[Hashable]) -> Set[Hashable]:
        """Union the identifiers of all intervals containing *x* into *out*.

        All-or-nothing: if *x* is incomparable with a node value the
        ``TypeError`` propagates with *out* untouched.
        """
        out.update(*self._stab_sets(x))
        return out

    def _stab_sets(self, x: Any) -> List[frozenset]:
        """Decoded marker sets along the stab path of *x* (cached)."""
        values = self._value
        left, right = self._left, self._right
        lt_bits, eq_bits, gt_bits = self._marks
        slot_set = self._slot_set
        parts: List[frozenset] = []
        node = self._root
        while node >= 0:
            value = values[node]
            if x == value:
                if eq_bits[node]:
                    parts.append(slot_set(node, EQ, eq_bits[node]))
                break
            if x < value:
                if lt_bits[node]:
                    parts.append(slot_set(node, LT, lt_bits[node]))
                node = left[node]
            else:
                if gt_bits[node]:
                    parts.append(slot_set(node, GT, gt_bits[node]))
                node = right[node]
        return parts

    def stab_many(self, values: Iterable[Any]) -> Dict[Any, Optional[Set[Hashable]]]:
        """Stab several values in one shared-prefix descent.

        Returns ``{value: idents}`` with one entry per distinct input
        value.  Values incomparable with the tree's node values (where
        a lone :meth:`stab` would raise ``TypeError``) map to ``None``,
        and so does ``None`` itself, unconditionally: SQL NULL stabs
        nothing.  That NULL rule is part of the tree seam — the match
        pipeline skips NULL probes before ever reaching a tree, and
        ``stab_many`` answers the same way for callers that do not
        pre-filter, on empty and non-empty trees alike (a descent-based
        answer would accidentally return the empty set on an empty
        tree).  Unhashable values raise ``TypeError`` — the result is
        keyed by value — which is why the batched matcher routes tuples
        carrying them through the per-tuple path instead.

        Sorted inputs keep sibling groups adjacent, but any iterable
        works.  The descent visits each tree node at most once per
        value *group*, so the work shared by values with a common
        search-path prefix — the root's marker OR above all — is done
        once instead of once per value.
        """
        out: Dict[Any, Optional[Set[Hashable]]] = {}
        group: List[Any] = []
        for v in values:
            if v not in out:
                out[v] = None  # pre-claim; overwritten on success
                if v is None:
                    continue  # NULL rule: NULL stabs nothing, no descent
                group.append(v)
        if not group:
            return out
        values_arr = self._value
        left, right = self._left, self._right
        lt_bits, eq_bits, gt_bits = self._marks
        slot_set = self._slot_set
        empty: Tuple[frozenset, ...] = ()
        stack: List[Tuple[int, List[Any], Tuple[frozenset, ...]]] = [
            (self._root, group, empty)
        ]
        while stack:
            node, vals, parts = stack.pop()
            if node < 0:
                shared = set().union(*parts)
                for v in vals:
                    out[v] = set(shared)
                continue
            value = values_arr[node]
            less: List[Any] = []
            greater: List[Any] = []
            for x in vals:
                try:
                    if x == value:
                        if eq_bits[node]:
                            out[x] = set().union(
                                *parts, slot_set(node, EQ, eq_bits[node])
                            )
                        else:
                            out[x] = set().union(*parts)
                    elif x < value:
                        less.append(x)
                    else:
                        greater.append(x)
                except TypeError:
                    pass  # incomparable: stays None, as stab() raising
            if less:
                branch = parts
                if lt_bits[node]:
                    branch = parts + (slot_set(node, LT, lt_bits[node]),)
                stack.append((left[node], less, branch))
            if greater:
                branch = parts
                if gt_bits[node]:
                    branch = parts + (slot_set(node, GT, gt_bits[node]),)
                stack.append((right[node], greater, branch))
        return out

    def export_stab_plane(
        self,
    ) -> Tuple[List[Any], List[int], List[int], List[Optional[Hashable]]]:
        """Precompute every distinct stab outcome of the current tree.

        A stab descent over a fixed BST has only ``2n + 1`` distinct
        outcomes for ``n`` node values: one per exact value hit and one
        per gap between consecutive values (including the two outer
        gaps).  This walks the tree once, in order, carrying the
        accumulated path mask each descent would have OR-ed together,
        and returns::

            (values, eq_masks, gap_masks, ident_of)

        * ``values`` — the finite node values, ascending;
        * ``eq_masks[i]`` — the marker bitset a stab of exactly
          ``values[i]`` answers (path ``<``/``>`` marks plus the
          equality node's ``=`` marks);
        * ``gap_masks[i]`` — the answer for any query strictly between
          ``values[i-1]`` and ``values[i]`` (``gap_masks[0]`` below the
          smallest value, ``gap_masks[n]`` above the largest — also the
          outcome NaN-like values reach, since every ``x < value`` test
          on their descent is False);
        * ``ident_of`` — dense bit index -> identifier (``None`` for
          freed bits, which carry no marks).

        Infinity-sentinel nodes are folded away: a query value never
        compares equal to a sentinel, and a descent reaching one takes
        the branch the neighbouring gap outcome already accounts for.
        The export is a pure read — it works on mutable trees too, but
        the columnar plane built from it is only cached against an
        unchanged tree (callers key on the relation's mutation
        version).
        """
        values: List[Any] = []
        eq_masks: List[int] = []
        gap_masks: List[int] = []
        lt_bits, eq_bits, gt_bits = self._marks
        vals, left, right = self._value, self._left, self._right
        stack: List[Tuple[int, int]] = []
        node, acc = self._root, 0
        while True:
            while node >= 0:
                stack.append((node, acc))
                acc |= lt_bits[node]
                node = left[node]
            gap_masks.append(acc)
            if not stack:
                break
            node, acc = stack.pop()
            values.append(vals[node])
            eq_masks.append(acc | eq_bits[node])
            acc |= gt_bits[node]
            node = right[node]
        if values and values[0] is MINUS_INF:
            # queries land in the gap above the sentinel, never on it
            values.pop(0)
            eq_masks.pop(0)
            gap_masks.pop(0)
        if values and values[-1] is PLUS_INF:
            values.pop()
            eq_masks.pop()
            gap_masks.pop()
        return values, eq_masks, gap_masks, list(self._ident_of)

    def export_arrays(self) -> Dict[str, Any]:
        """The full array plane plus the interval table, in one pass.

        Everything a flat serializer (the disk tier's segment writer)
        needs to reproduce this tree's observable behaviour: the stab
        plane of :meth:`export_stab_plane`, the bit-aligned interval
        table, the interval count, and the epoch.  ``interval_of`` is
        index-aligned with ``ident_of`` — freed bits hold ``None`` in
        both.  Pure read, like the plane export.
        """
        values, eq_masks, gap_masks, ident_of = self.export_stab_plane()
        return {
            "values": values,
            "eq_masks": eq_masks,
            "gap_masks": gap_masks,
            "ident_of": ident_of,
            "interval_of": list(self._interval_of),
            "count": len(self._bit_of),
            "epoch": self.epoch,
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, Any]) -> "FlatIBSTree":
        """Rebuild a tree from an :meth:`export_arrays` export.

        The import path of the array plane: identifiers and intervals
        are bulk-loaded (balanced build, fresh bit assignment — bit
        *numbering* is an internal detail, only the ident/interval
        pairing is semantic) and the exported epoch is restored, so an
        imported tree is indistinguishable from the exporter through
        the ``IntervalIndex`` interface, stab-cache keys included.
        """
        tree = cls()
        ident_of = arrays["ident_of"]
        interval_of = arrays["interval_of"]
        tree.bulk_load(
            (interval, ident)
            for ident, interval in zip(ident_of, interval_of)
            if ident is not None and interval is not None
        )
        tree.epoch = arrays["epoch"]
        return tree

    def overlapping(self, query: Interval) -> Set[Hashable]:
        """Identifiers of all intervals overlapping the *query* interval."""
        mask = 0
        if not is_infinite(query.low):
            mask |= self.stab_mask(query.low)
        if not is_infinite(query.high):
            mask |= self.stab_mask(query.high)
        for value in self._values_in_range(query.low, query.high):
            for bit in self._endpoint_bits.get(value, ()):
                mask |= 1 << bit
        return {
            self._ident_of[bit]
            for bit in self._iter_bits(mask)
            if self._interval_of[bit].overlaps(query)
        }

    stab_interval = overlapping

    def get(self, ident: Hashable) -> Interval:
        """Return the interval registered under *ident*."""
        try:
            return self._interval_of[self._bit_of[ident]]
        except KeyError:
            raise UnknownIntervalError(ident) from None

    def __len__(self) -> int:
        return len(self._bit_of)

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._bit_of

    def __bool__(self) -> bool:
        return bool(self._bit_of)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._bit_of)

    def items(self) -> Iterator[Tuple[Hashable, Interval]]:
        """Iterate over ``(identifier, interval)`` pairs."""
        for ident, bit in self._bit_of.items():
            yield ident, self._interval_of[bit]

    def clear(self) -> None:
        """Remove every interval and node (the epoch survives, bumped)."""
        self._check_mutable()
        epoch = self.epoch
        self.__init__()
        self.epoch = epoch + 1

    # -- statistics ------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of endpoint nodes in the tree."""
        return len(self._endpoint_bits)

    @property
    def marker_count(self) -> int:
        """Total number of markers across all node slots."""
        return sum(len(self._marker_locs[bit]) for bit in self._bit_of.values())

    @property
    def height(self) -> int:
        """Height of the tree (0 when empty)."""
        return self._node_height[self._root] if self._root >= 0 else 0

    def markers_of(self, ident: Hashable) -> int:
        """Number of markers currently placed for *ident*."""
        try:
            return len(self._marker_locs[self._bit_of[ident]])
        except KeyError:
            raise UnknownIntervalError(ident) from None

    # ------------------------------------------------------------------
    # identifier interning and bit decoding
    # ------------------------------------------------------------------

    def _intern(self, ident: Hashable, interval: Interval) -> int:
        if self._free_bits:
            bit = self._free_bits.pop()
            self._ident_of[bit] = ident
            self._interval_of[bit] = interval
        else:
            bit = len(self._ident_of)
            self._ident_of.append(ident)
            self._interval_of.append(interval)
            self._marker_locs.append(set())
        self._bit_of[ident] = bit
        return bit

    @staticmethod
    def _iter_bits(mask: int) -> Iterator[int]:
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def _decode(self, mask: int) -> Set[Hashable]:
        ident_of = self._ident_of
        out: Set[Hashable] = set()
        while mask:
            low = mask & -mask
            out.add(ident_of[low.bit_length() - 1])
            mask ^= low
        return out

    def _decode_into(self, mask: int, out: Set[Hashable]) -> None:
        ident_of = self._ident_of
        while mask:
            low = mask & -mask
            out.add(ident_of[low.bit_length() - 1])
            mask ^= low

    def _slot_set(self, node: int, slot: int, mask: int) -> frozenset:
        """The decoded identifier set of one node slot, memoized.

        ``mask`` must be the slot's current bitset (callers already
        have it in hand); the cache is cleared on every mutation, so a
        cached entry is always in sync with it.
        """
        key = node * 3 + slot
        cache = self._slot_cache
        cached = cache.get(key)
        if cached is None:
            cached = cache[key] = frozenset(self._decode(mask))
        return cached

    # ------------------------------------------------------------------
    # node allocation
    # ------------------------------------------------------------------

    def _new_node(self, value: Any, parent: int) -> int:
        lt_bits, eq_bits, gt_bits = self._marks
        if self._free_nodes:
            idx = self._free_nodes.pop()
            self._value[idx] = value
            self._left[idx] = NIL
            self._right[idx] = NIL
            self._parent[idx] = parent
            self._node_height[idx] = 1
            lt_bits[idx] = eq_bits[idx] = gt_bits[idx] = 0
        else:
            idx = len(self._value)
            self._value.append(value)
            self._left.append(NIL)
            self._right.append(NIL)
            self._parent.append(parent)
            self._node_height.append(1)
            lt_bits.append(0)
            eq_bits.append(0)
            gt_bits.append(0)
        return idx

    def _update_heights_upward(self, node: int) -> None:
        heights = self._node_height
        left, right, parent = self._left, self._right, self._parent
        while node >= 0:
            lh = heights[left[node]] if left[node] >= 0 else 0
            rh = heights[right[node]] if right[node] >= 0 else 0
            heights[node] = 1 + (lh if lh >= rh else rh)
            node = parent[node]

    # ------------------------------------------------------------------
    # marker placement: the paper's addLeft / addRight on flat storage
    # ------------------------------------------------------------------

    def _place_markers(self, bit: int, interval: Interval) -> None:
        created = self._add_left(bit, interval)
        if created >= 0:
            self._update_heights_upward(self._parent[created])
        fault_point("tree.insert")
        created = self._add_right(bit, interval)
        if created >= 0:
            self._update_heights_upward(self._parent[created])

    def _add_left(self, bit: int, interval: Interval) -> int:
        low = interval.low
        high = interval.high
        created = NIL
        node = self._root
        right_bound: Any = PLUS_INF
        if node < 0:
            self._root = created = self._new_node(low, NIL)
            node = created
        values, left, right = self._value, self._left, self._right
        while True:
            value = values[node]
            if value == low or (is_infinite(low) and value is low):
                if right_bound <= high and value is not PLUS_INF:
                    self._add_mark(bit, node, GT)
                if interval.low_inclusive:
                    self._add_mark(bit, node, EQ)
                return created
            if value < low:
                if right[node] < 0:
                    right[node] = created = self._new_node(low, node)
                node = right[node]
                continue
            if interval.contains(value):
                self._add_mark(bit, node, EQ)
            if right_bound <= high and value is not PLUS_INF:
                self._add_mark(bit, node, GT)
            right_bound = value
            if left[node] < 0:
                left[node] = created = self._new_node(low, node)
            node = left[node]

    def _add_right(self, bit: int, interval: Interval) -> int:
        low = interval.low
        high = interval.high
        created = NIL
        node = self._root
        left_bound: Any = MINUS_INF
        if node < 0:
            self._root = created = self._new_node(high, NIL)
            node = created
        values, left, right = self._value, self._left, self._right
        while True:
            value = values[node]
            if value == high or (is_infinite(high) and value is high):
                if left_bound >= low and value is not MINUS_INF:
                    self._add_mark(bit, node, LT)
                if interval.high_inclusive:
                    self._add_mark(bit, node, EQ)
                return created
            if value > high:
                if left[node] < 0:
                    left[node] = created = self._new_node(high, node)
                node = left[node]
                continue
            if interval.contains(value):
                self._add_mark(bit, node, EQ)
            if left_bound >= low and value is not MINUS_INF:
                self._add_mark(bit, node, LT)
            left_bound = value
            if right[node] < 0:
                right[node] = created = self._new_node(high, node)
            node = right[node]

    # -- marker bookkeeping ---------------------------------------------

    def _add_mark(self, bit: int, node: int, slot: int) -> None:
        marks = self._marks[slot]
        mask = 1 << bit
        if not marks[node] & mask:
            marks[node] |= mask
            self._marker_locs[bit].add((node, slot))

    def _remove_markers(self, bit: int) -> None:
        mask = ~(1 << bit)
        marks = self._marks
        for node, slot in self._marker_locs[bit]:
            marks[slot][node] &= mask
        self._marker_locs[bit].clear()

    def _lift_markers(self, node: int, lifted: Dict[int, Interval]) -> None:
        lt_bits, eq_bits, gt_bits = self._marks
        union = lt_bits[node] | eq_bits[node] | gt_bits[node]
        for bit in self._iter_bits(union):
            if bit not in lifted:
                lifted[bit] = self._interval_of[bit]
                self._remove_markers(bit)

    # ------------------------------------------------------------------
    # structural deletion of endpoint nodes
    # ------------------------------------------------------------------

    def _delete_endpoint_node(self, value: Any) -> None:
        node = self._find_node(value)
        if node < 0:
            raise TreeInvariantError(
                f"endpoint node for value {value!r} not found during delete"
            )
        lifted: Dict[int, Interval] = {}
        self._lift_markers(node, lifted)
        left, right = self._left, self._right
        if left[node] >= 0 and right[node] >= 0:
            pred = left[node]
            while right[pred] >= 0:
                pred = right[pred]
            self._lift_markers(pred, lifted)
            self._value[node] = self._value[pred]
            node = pred  # splice out the (now markerless) predecessor slot
        self._splice(node)
        fault_point("tree.delete")
        for bit, interval in lifted.items():
            self._place_markers(bit, interval)

    def _find_node(self, value: Any) -> int:
        values = self._value
        left, right = self._left, self._right
        node = self._root
        while node >= 0:
            current = values[node]
            if value == current or (is_infinite(value) and current is value):
                return node
            if is_infinite(current):
                node = right[node] if current is MINUS_INF else left[node]
            elif value < current:
                node = left[node]
            else:
                node = right[node]
        return NIL

    def _splice(self, node: int) -> None:
        left, right, parent = self._left, self._right, self._parent
        child = left[node] if left[node] >= 0 else right[node]
        up = parent[node]
        if child >= 0:
            parent[child] = up
        if up < 0:
            self._root = child
        elif left[up] == node:
            left[up] = child
        else:
            right[up] = child
        left[node] = right[node] = parent[node] = NIL
        self._value[node] = None
        self._free_nodes.append(node)
        self._update_heights_upward(up)

    # ------------------------------------------------------------------
    # in-order range iteration (for overlapping queries)
    # ------------------------------------------------------------------

    def _values_in_range(self, low: Any, high: Any) -> Iterator[Any]:
        """Node values v with low <= v <= high, in-order (sentinel-aware)."""
        values = self._value
        left, right = self._left, self._right
        node = self._root
        stack: List[int] = []
        while stack or node >= 0:
            if node >= 0:
                if _strictly_less(values[node], low):
                    node = right[node]
                else:
                    stack.append(node)
                    node = left[node]
                continue
            node = stack.pop()
            if not _strictly_less(high, values[node]):
                if not _strictly_less(values[node], low):
                    yield values[node]
                node = right[node]
            else:
                node = NIL

    # ------------------------------------------------------------------
    # validation (used by the test suite)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural and marker invariant; raise on violation.

        Performs the same checks as :meth:`IBSTree.validate` — BST
        ordering, parent/height consistency, marker soundness, registry
        sync, endpoint reference counts — plus flat-storage checks:
        free-list disjointness and dense-bit interning consistency.
        """
        live_nodes = self._collect_live_nodes()
        free = set(self._free_nodes)
        if live_nodes & free:
            raise TreeInvariantError("free-list node still linked into the tree")
        if len(live_nodes) + len(free) != len(self._value):
            raise TreeInvariantError("node arrays leak slots")
        for ident, bit in self._bit_of.items():
            if self._ident_of[bit] != ident:
                raise TreeInvariantError(f"bit interning out of sync for {ident!r}")
        for bit in self._free_bits:
            if self._ident_of[bit] is not None or self._marker_locs[bit]:
                raise TreeInvariantError(f"freed bit {bit} still carries state")
        seen_locs: Dict[int, Set[Tuple[int, int]]] = {
            bit: set() for bit in self._bit_of.values()
        }
        self._validate_node(self._root, NIL, None, None, seen_locs)
        for bit, locs in seen_locs.items():
            if locs != self._marker_locs[bit]:
                raise TreeInvariantError(
                    f"marker registry out of sync for interval {self._ident_of[bit]!r}"
                )
        expected: Dict[Any, Set[int]] = {}
        for bit in self._bit_of.values():
            interval = self._interval_of[bit]
            for value in {interval.low, interval.high}:
                expected.setdefault(value, set()).add(bit)
        if expected != self._endpoint_bits:
            raise TreeInvariantError("endpoint bit registry out of sync")

    def check_invariants(self) -> bool:
        """Public invariant check shared by every tree backend.

        Returns True when every structural, marker, and flat-storage
        invariant holds; raises
        :class:`~repro.errors.TreeInvariantError` otherwise.
        """
        self.validate()
        return True

    def audit(self) -> List[str]:
        """Non-raising invariant check: a list of problem descriptions.

        An empty list means the tree is healthy.  Structural wreckage
        severe enough to crash the validator itself (link cycles,
        incomparable values, dangling registry entries) is reported as
        a problem rather than propagated.
        """
        try:
            self.validate()
        except TreeInvariantError as exc:
            return [str(exc)]
        except (RecursionError, TypeError, KeyError, IndexError, AttributeError) as exc:
            return [f"validator crashed: {type(exc).__name__}: {exc}"]
        return []

    def _collect_live_nodes(self) -> Set[int]:
        live: Set[int] = set()
        stack = [self._root] if self._root >= 0 else []
        while stack:
            node = stack.pop()
            if node in live:
                raise TreeInvariantError("cycle in tree links")
            live.add(node)
            for child in (self._left[node], self._right[node]):
                if child >= 0:
                    stack.append(child)
        return live

    def _validate_node(
        self,
        node: int,
        parent: int,
        low_bound: Any,
        high_bound: Any,
        seen_locs: Dict[int, Set[Tuple[int, int]]],
    ) -> int:
        if node < 0:
            return 0
        if self._parent[node] != parent:
            raise TreeInvariantError(f"bad parent link at node {self._value[node]!r}")
        value = self._value[node]
        low_ok = low_bound is None or _strictly_less(low_bound, value)
        high_ok = high_bound is None or _strictly_less(value, high_bound)
        if not (low_ok and high_ok):
            raise TreeInvariantError(
                f"BST ordering violated at node {value!r} "
                f"(bounds {low_bound!r}..{high_bound!r})"
            )
        for slot, marks in enumerate(self._marks):
            for bit in self._iter_bits(marks[node]):
                if self._ident_of[bit] is None or bit not in seen_locs:
                    raise TreeInvariantError(f"stale marker bit {bit} at {value!r}")
                seen_locs[bit].add((node, slot))
                interval = self._interval_of[bit]
                if slot == EQ:
                    if not interval.contains(value):
                        raise TreeInvariantError(
                            f"unsound '=' marker {self._ident_of[bit]!r} at {value!r}"
                        )
                elif slot == LT:
                    self._check_range_mark(bit, interval, low_bound, value)
                else:
                    self._check_range_mark(bit, interval, value, high_bound)
        left_h = self._validate_node(self._left[node], node, low_bound, value, seen_locs)
        right_h = self._validate_node(self._right[node], node, value, high_bound, seen_locs)
        height = 1 + max(left_h, right_h)
        if self._node_height[node] != height:
            raise TreeInvariantError(f"stale height at node {value!r}")
        return height

    def _check_range_mark(
        self, bit: int, interval: Interval, low: Any, high: Any
    ) -> None:
        if low is None:
            low = MINUS_INF
        if high is None:
            high = PLUS_INF
        if not _strictly_less(low, high):
            return  # empty range: vacuously covered
        covered = Interval(low, high, False, False)
        if not interval.covers(covered):
            raise TreeInvariantError(
                f"unsound range marker {self._ident_of[bit]!r}: {interval} does "
                f"not cover open range ({low!r}, {high!r})"
            )

    # -- debugging helpers ----------------------------------------------

    def dump(self) -> str:
        """Return an indented textual rendering of the tree (for debugging)."""
        lines: List[str] = []

        def walk(node: int, depth: int) -> None:
            if node < 0:
                return
            walk(self._right[node], depth + 1)
            sets = " ".join(
                f"{name}{{{','.join(sorted(str(self._ident_of[b]) for b in self._iter_bits(marks[node])))}}}"
                for name, marks in zip(_SLOT_NAMES, self._marks)
                if marks[node]
            )
            lines.append("    " * depth + f"{self._value[node]!r} {sets}".rstrip())
            walk(self._left[node], depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<FlatIBSTree {len(self._bit_of)} intervals, "
            f"{self.node_count} nodes, height {self.height}>"
        )
