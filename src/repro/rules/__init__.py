"""Forward-chaining rule system (triggers) over the database substrate.

The engine matches every inserted/updated tuple against its rules'
selection conditions through a pluggable predicate matcher — by default
the paper's IBS-tree index — and fires actions in conflict-resolution
order.  Two-relation rules are handled by the TREAT-style join layer
(the paper's Section 6 "two-layer network" future work).
"""

from .actions import (
    AbortAction,
    CollectAction,
    DeleteAction,
    InsertAction,
    UpdateAction,
    chain,
)
from .agenda import Agenda, DeadLetterQueue
from .bridge import DatabaseProductionBridge
from .engine import MATCHER_STRATEGIES, RuleEngine
from .failures import ActionFailure, RetryPolicy
from .join_layer import JoinClause, JoinLayer, JoinRule
from .monitor import Monitor
from .rule import Rule, RuleContext

__all__ = [
    "RuleEngine",
    "MATCHER_STRATEGIES",
    "Rule",
    "RuleContext",
    "Agenda",
    "RetryPolicy",
    "ActionFailure",
    "DeadLetterQueue",
    "JoinRule",
    "JoinClause",
    "JoinLayer",
    "Monitor",
    "DatabaseProductionBridge",
    "InsertAction",
    "UpdateAction",
    "DeleteAction",
    "AbortAction",
    "CollectAction",
    "chain",
]
