"""Two-layer discrimination network: selection layer + join layer.

The paper's Section 6: "the discrimination network described in this
paper will be used as the first layer of a two-layer network which will
test both the selection and the join conditions of rules.  This
two-layer approach is being implemented in the rule processing engine
of the Ariel database system."

This module implements that second layer for **two-relation rules**, in
the TREAT style [Mir87]: no intermediate beta memories, just one *alpha
memory* per rule side holding the tuples that pass the side's selection
condition, probed on each event.

How a join rule is processed:

1. the condition is split into three parts: selection clauses on the
   left relation, selection clauses on the right relation, and *join
   clauses* (comparisons between attributes of the two relations);
2. each side's selection part compiles into ordinary predicates that
   enter the engine's matcher — the IBS-tree index is literally the
   first layer;
3. when a tuple event passes a side's selection, the side's alpha
   memory is updated, and the other side's memory is probed for join
   partners: by hash on the equi-join key when at least one join
   clause is an equality, by scan otherwise;
4. the rule fires once per new joined pair, with both tuples available
   to the action through ``ctx.bindings``.

Self-joins are not supported (the two sides must name distinct
relations); conditions must be a conjunction at the top level (no
``or`` spanning both relations).
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..db.events import Event
from ..errors import ParseError, RuleError
from ..lang.ast_nodes import AndNode, ComparisonNode, LiteralNode, Node
from ..lang.compiler import compile_ast
from ..lang.parser import parse_condition
from ..predicates.predicate import Predicate
from .rule import Rule, RuleContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import RuleEngine

__all__ = ["JoinRule", "JoinClause", "JoinLayer"]

_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_MIRRORED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class JoinClause:
    """One inter-relation comparison: ``left.attr op right.attr``."""

    __slots__ = ("left_attr", "op", "right_attr")

    def __init__(self, left_attr: str, op: str, right_attr: str):
        if op not in _COMPARATORS:
            raise RuleError(f"unsupported join operator {op!r}")
        self.left_attr = left_attr
        self.op = op
        self.right_attr = right_attr

    @property
    def is_equi(self) -> bool:
        return self.op == "="

    def test(self, left_tup: Mapping[str, Any], right_tup: Mapping[str, Any]) -> bool:
        left = left_tup.get(self.left_attr)
        right = right_tup.get(self.right_attr)
        if left is None or right is None:
            return False
        return _COMPARATORS[self.op](left, right)

    def __str__(self) -> str:
        return f"left.{self.left_attr} {self.op} right.{self.right_attr}"


class JoinRule:
    """A compiled two-relation rule."""

    __slots__ = (
        "name",
        "left",
        "right",
        "join_clauses",
        "action",
        "priority",
        "enabled",
        "source",
        "fire_count",
        "left_memory",
        "right_memory",
        "left_hash",
        "right_hash",
        "equi_clauses",
    )

    def __init__(
        self,
        name: str,
        left: str,
        right: str,
        join_clauses: List[JoinClause],
        action: Callable[[RuleContext], Any],
        priority: int = 0,
        source: Optional[str] = None,
    ):
        if not callable(action):
            raise RuleError(f"join rule {name!r} action must be callable")
        self.name = name
        self.left = left
        self.right = right
        self.join_clauses = join_clauses
        self.equi_clauses = [c for c in join_clauses if c.is_equi]
        self.action = action
        self.priority = priority
        self.enabled = True
        self.source = source
        self.fire_count = 0
        #: alpha memories: tid -> tuple image passing the side's selection
        self.left_memory: Dict[int, Dict[str, Any]] = {}
        self.right_memory: Dict[int, Dict[str, Any]] = {}
        #: equi-join hash indexes: join key -> set of tids
        self.left_hash: Dict[Tuple, Set[int]] = {}
        self.right_hash: Dict[Tuple, Set[int]] = {}

    # -- alpha memory maintenance ----------------------------------------

    def _key(self, tup: Mapping[str, Any], side: str) -> Optional[Tuple]:
        """The equi-join key of a tuple, or None if any part is NULL."""
        values = []
        for clause in self.equi_clauses:
            attr = clause.left_attr if side == "left" else clause.right_attr
            value = tup.get(attr)
            if value is None:
                return None
            values.append(value)
        return tuple(values)

    def remember(self, side: str, tid: int, tup: Dict[str, Any]) -> None:
        """Install a tuple in the side's alpha memory."""
        memory = self.left_memory if side == "left" else self.right_memory
        hash_index = self.left_hash if side == "left" else self.right_hash
        memory[tid] = tup
        if self.equi_clauses:
            key = self._key(tup, side)
            if key is not None:
                hash_index.setdefault(key, set()).add(tid)

    def forget(self, side: str, tid: int) -> None:
        """Remove a tuple from the side's alpha memory (if present)."""
        memory = self.left_memory if side == "left" else self.right_memory
        hash_index = self.left_hash if side == "left" else self.right_hash
        tup = memory.pop(tid, None)
        if tup is None or not self.equi_clauses:
            return
        key = self._key(tup, side)
        if key is not None:
            bucket = hash_index.get(key)
            if bucket is not None:
                bucket.discard(tid)
                if not bucket:
                    del hash_index[key]

    def partners(
        self, side: str, tup: Mapping[str, Any]
    ) -> Iterable[Tuple[int, Dict[str, Any]]]:
        """Tuples of the *other* side joining with *tup*.

        Uses the equi-join hash when available, narrowing with the
        remaining clauses; falls back to a memory scan for pure theta
        joins.
        """
        other_memory = self.right_memory if side == "left" else self.left_memory
        other_hash = self.right_hash if side == "left" else self.left_hash
        if self.equi_clauses:
            key = self._key(tup, side)
            if key is None:
                return
            candidates = other_hash.get(key, ())
            items = ((tid, other_memory[tid]) for tid in candidates)
        else:
            items = iter(other_memory.items())
        for tid, other in items:
            left_tup, right_tup = (tup, other) if side == "left" else (other, tup)
            if all(clause.test(left_tup, right_tup) for clause in self.join_clauses):
                yield tid, other

    def __repr__(self) -> str:
        return f"<JoinRule {self.name!r} {self.left} x {self.right}>"


class _SideHook:
    """One join-rule side: its selection predicates and their idents."""

    __slots__ = ("rule", "side", "idents", "predicates")

    def __init__(self, rule: JoinRule, side: str):
        self.rule = rule
        self.side = side
        self.idents: Set[Hashable] = set()
        self.predicates: List[Predicate] = []


class JoinLayer:
    """Hosts all join rules of one engine and reacts to tuple events."""

    def __init__(self, engine: "RuleEngine"):
        self._engine = engine
        self._rules: Dict[str, JoinRule] = {}
        #: relation name -> side hooks watching it
        self._watchers: Dict[str, List[_SideHook]] = {}

    def __len__(self) -> int:
        return len(self._rules)

    def rules(self) -> List[JoinRule]:
        return list(self._rules.values())

    def rule(self, name: str) -> JoinRule:
        try:
            return self._rules[name]
        except KeyError:
            from ..errors import UnknownRuleError

            raise UnknownRuleError(name) from None

    # -- rule creation ----------------------------------------------------

    def create_rule(
        self,
        name: str,
        left: str,
        right: str,
        condition: str,
        action: Callable[[RuleContext], Any],
        priority: int = 0,
    ) -> JoinRule:
        """Split, compile, and register a two-relation rule.

        The condition must qualify every attribute with its relation
        name (``emp.dept = dept.name and emp.salary > 50000``) and be a
        conjunction at the top level.
        """
        if name in self._rules or name in self._engine._rules:
            from ..errors import DuplicateRuleError

            raise DuplicateRuleError(name)
        if left == right:
            raise RuleError(
                f"join rule {name!r}: self-joins are not supported "
                f"(both sides are {left!r})"
            )
        self._engine.db.relation(left)
        self._engine.db.relation(right)
        selections, join_clauses = self._split(condition, left, right)
        if not join_clauses:
            raise RuleError(
                f"join rule {name!r} has no inter-relation comparison; "
                f"use create_rule() for single-relation conditions"
            )
        rule = JoinRule(
            name, left, right, join_clauses, action, priority, source=condition
        )
        hooks: List[_SideHook] = []
        registered: List[Hashable] = []
        try:
            for side, relation in (("left", left), ("right", right)):
                hook = _SideHook(rule, side)
                compiled = compile_ast(
                    relation, selections[side], self._engine.functions, source=condition
                )
                if compiled.group.is_empty:
                    raise RuleError(
                        f"join rule {name!r}: the selection on {relation!r} "
                        f"can never match"
                    )
                for predicate in compiled.group:
                    self._engine.matcher.add(predicate)
                    registered.append(predicate.ident)
                    hook.idents.add(predicate.ident)
                    hook.predicates.append(predicate)
                hooks.append(hook)
        except Exception:
            for ident in registered:
                self._engine.matcher.remove(ident)
            raise
        for hook in hooks:
            relation = rule.left if hook.side == "left" else rule.right
            self._watchers.setdefault(relation, []).append(hook)
        self._rules[name] = rule
        self._seed(rule, hooks)
        return rule

    def drop_rule(self, name: str) -> None:
        """Unregister a join rule and its selection predicates."""
        rule = self.rule(name)
        del self._rules[name]
        for relation in (rule.left, rule.right):
            watchers = self._watchers.get(relation, [])
            for hook in watchers:
                if hook.rule is rule:
                    for ident in hook.idents:
                        self._engine.matcher.remove(ident)
            self._watchers[relation] = [h for h in watchers if h.rule is not rule]

    def _split(
        self, condition: str, left: str, right: str
    ) -> Tuple[Dict[str, Node], List[JoinClause]]:
        """Partition a conjunction into per-side selections + join clauses."""
        ast = parse_condition(condition)
        conjuncts = ast.children if isinstance(ast, AndNode) else (ast,)
        left_parts: List[Node] = []
        right_parts: List[Node] = []
        join_clauses: List[JoinClause] = []
        for conjunct in conjuncts:
            owner = self._classify(conjunct, left, right)
            if owner == "join":
                join_clauses.append(self._to_join_clause(conjunct, left, right))
            elif owner == "left":
                left_parts.append(conjunct)
            elif owner == "right":
                right_parts.append(conjunct)
            else:  # constant conjunct: attach anywhere
                left_parts.append(conjunct)
        return (
            {
                "left": self._conjunction(left_parts),
                "right": self._conjunction(right_parts),
            },
            join_clauses,
        )

    @staticmethod
    def _conjunction(parts: List[Node]) -> Node:
        if not parts:
            return LiteralNode(True)
        if len(parts) == 1:
            return parts[0]
        return AndNode(tuple(parts))

    def _classify(self, node: Node, left: str, right: str) -> str:
        """Which relation(s) a conjunct references: left/right/join/const."""
        refs = {qualifier for qualifier in self._qualifiers(node)}
        unqualified = self._has_unqualified(node)
        if unqualified:
            raise ParseError(
                "join rule conditions must qualify every attribute "
                f"(e.g. {left}.attr); found unqualified reference in {node}"
            )
        unknown = refs - {left, right}
        if unknown:
            raise ParseError(
                f"condition references unknown relation(s) {sorted(unknown)}; "
                f"the rule joins {left!r} and {right!r}"
            )
        if refs == {left}:
            return "left"
        if refs == {right}:
            return "right"
        if refs == {left, right}:
            return "join"
        return "const"

    def _qualifiers(self, node: Node) -> Iterable[str]:
        for ref in self._attr_refs(node):
            if "." in ref:
                yield ref.split(".", 1)[0]

    def _has_unqualified(self, node: Node) -> bool:
        return any("." not in ref for ref in self._attr_refs(node))

    def _attr_refs(self, node: Node) -> Iterable[str]:
        from ..lang.ast_nodes import FunctionNode, NotNode, OrNode

        if isinstance(node, ComparisonNode):
            for position in node.attr_positions:
                yield node.operands[position]
        elif isinstance(node, FunctionNode):
            yield node.attribute
        elif isinstance(node, (AndNode, OrNode)):
            for child in node.children:
                yield from self._attr_refs(child)
        elif isinstance(node, NotNode):
            yield from self._attr_refs(node.child)

    def _to_join_clause(self, node: Node, left: str, right: str) -> JoinClause:
        if not isinstance(node, ComparisonNode) or len(node.operators) != 1:
            raise ParseError(
                f"inter-relation conjunct {node} must be a simple binary "
                f"comparison between one attribute of each relation"
            )
        if len(node.attr_positions) != 2:
            raise ParseError(
                f"join comparison {node} must reference exactly two attributes"
            )
        lhs, rhs = node.operands
        op = node.operators[0]
        lhs_rel, lhs_attr = lhs.split(".", 1)
        rhs_rel, rhs_attr = rhs.split(".", 1)
        if lhs_rel == left and rhs_rel == right:
            return JoinClause(lhs_attr, op, rhs_attr)
        if lhs_rel == right and rhs_rel == left:
            return JoinClause(rhs_attr, _MIRRORED_OP[op], lhs_attr)
        raise ParseError(
            f"join comparison {node} must compare {left!r} with {right!r}"
        )

    # -- runtime -------------------------------------------------------------

    def _seed(self, rule: JoinRule, hooks: List[_SideHook]) -> None:
        """Populate alpha memories from tuples already in the database.

        Rules created after data has loaded see consistent join state;
        no pairs are *fired* for pre-existing data (triggers react to
        future events), but pre-existing tuples can join with future
        ones.
        """
        for hook in hooks:
            relation_name = rule.left if hook.side == "left" else rule.right
            relation = self._engine.db.relation(relation_name)
            for tid, tup in relation.scan():
                if any(pred.matches(tup) for pred in hook.predicates):
                    rule.remember(hook.side, tid, dict(tup))

    def process(
        self, event: Event, matched_idents: Set[Hashable], post: bool = True
    ) -> int:
        """React to a tuple event; returns the number of pairs posted.

        ``matched_idents`` are the predicate identifiers the selection
        layer reported for the event's tuple image.  Joined pairs are
        posted to the engine's agenda, which fires them in
        conflict-resolution order alongside ordinary rules.

        With ``post=False`` only the alpha memories are maintained and
        nothing reaches the agenda — used for compensating (rollback)
        events, whose restored images must be remembered but must not
        trigger firings.
        """
        watchers = self._watchers.get(event.relation)
        if not watchers:
            return 0
        posted = 0
        for hook in watchers:
            posted += self._process_side(hook, event, matched_idents, post)
        return posted

    def _process_side(
        self,
        hook: _SideHook,
        event: Event,
        matched_idents: Set[Hashable],
        post: bool = True,
    ) -> int:
        rule = hook.rule
        side = hook.side
        if not rule.enabled:
            return 0
        tid = event.tid
        if event.kind == "delete" or not (hook.idents & matched_idents):
            rule.forget(side, tid)
            return 0
        tup = dict(event.tuple)
        rule.forget(side, tid)  # refresh the image on updates
        rule.remember(side, tid, tup)
        if not post:
            return 0
        posted = 0
        for _, other in list(rule.partners(side, tup)):
            bindings = (
                {rule.left: tup, rule.right: other}
                if side == "left"
                else {rule.left: other, rule.right: tup}
            )
            context = RuleContext(
                self._engine.db,
                self._engine,
                rule,  # type: ignore[arg-type]
                event,
                tup,
                getattr(event, "old", None),
                bindings,
            )
            self._engine.agenda.post(rule, context)  # type: ignore[arg-type]
            posted += 1
        return posted
