"""Bridge: mirror database relations into a production system.

The trigger engine handles selection rules and two-relation joins; the
production system handles n-way joins, variables, and negation — but
over its own working memory.  :class:`DatabaseProductionBridge` wires
them together: tuples of chosen relations are mirrored into working
memory (one WME type per relation, attributes copied verbatim, plus a
``_tid`` attribute carrying the tuple id), and every database
insert/update/delete becomes the corresponding working-memory
operation.  Production rules can then reason over live relational data
with the full OPS5 feature set::

    db = Database()
    ...
    ps = ProductionSystem()
    bridge = DatabaseProductionBridge(db, ps, relations=["emp", "dept", "proj"])
    ps.add_rule(
        "staffed-everywhere",
        '(emp ^name ?n ^dept ?d) (dept ^dname ?d ^floor ?f)'
        ' (proj ^floor ?f)',
        action,
    )
    db.insert("emp", {...})     # flows straight into the match network
    ps.run()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..db.database import Database
from ..db.events import Event
from ..errors import RuleError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..production.memory import WME
    from ..production.system import ProductionSystem

__all__ = ["DatabaseProductionBridge"]


class DatabaseProductionBridge:
    """Keeps a production system's working memory in sync with a database.

    Parameters
    ----------
    db:
        The source database.
    production_system:
        The production system whose working memory mirrors the data.
    relations:
        The relations to mirror.  Existing tuples are mirrored
        immediately; subsequent mutations stream through.
    auto_run:
        When True (default), the production system's recognize–act
        cycle runs after every mirrored mutation, so productions fire
        as eagerly as database triggers do.
    """

    def __init__(
        self,
        db: Database,
        production_system: "ProductionSystem",
        relations: Iterable[str],
        auto_run: bool = True,
    ):
        self.db = db
        self.production_system = production_system
        self.relations = frozenset(relations)
        if not self.relations:
            raise RuleError("bridge needs at least one relation to mirror")
        for name in self.relations:
            db.relation(name)  # validates existence
        self.auto_run = auto_run
        #: (relation, tid) -> mirrored WME
        self._mirrored: Dict[tuple, "WME"] = {}
        # seed from current contents
        for name in self.relations:
            for tid, tup in db.relation(name).scan():
                self._mirror_insert(name, tid, dict(tup))
        self._unsubscribe = db.subscribe(self._on_event)
        if self.auto_run:
            self.production_system.run()

    def close(self) -> None:
        """Stop mirroring (working memory keeps its current facts)."""
        self._unsubscribe()

    # -- event handling ----------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if event.relation not in self.relations:
            return
        key = (event.relation, event.tid)
        if event.kind == "insert":
            self._mirror_insert(event.relation, event.tid, dict(event.new))
        elif event.kind == "update":
            wme = self._mirrored.get(key)
            if wme is not None:
                self.production_system.retract(wme)
            self._mirror_insert(event.relation, event.tid, dict(event.new))
        else:  # delete
            wme = self._mirrored.pop(key, None)
            if wme is not None:
                self.production_system.retract(wme)
        if self.auto_run:
            self.production_system.run()

    def _mirror_insert(self, relation: str, tid: int, tup: Dict) -> None:
        attributes = dict(tup)
        attributes["_tid"] = tid
        wme = self.production_system.assert_fact(relation, **attributes)
        self._mirrored[(relation, tid)] = wme

    # -- introspection -------------------------------------------------------

    def wme_for(self, relation: str, tid: int) -> Optional["WME"]:
        """The WME mirroring a tuple, or None."""
        return self._mirrored.get((relation, tid))

    def __len__(self) -> int:
        return len(self._mirrored)

    def __repr__(self) -> str:
        return (
            f"<DatabaseProductionBridge {sorted(self.relations)} "
            f"({len(self._mirrored)} mirrored)>"
        )
