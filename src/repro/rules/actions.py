"""Declarative rule actions.

Any callable accepting a :class:`~repro.rules.rule.RuleContext` can be a
rule action.  This module adds composable declarative actions for the
common trigger idioms:

* :class:`InsertAction` — derive and insert a tuple into a relation
  (audit trails, materialised alerts);
* :class:`UpdateAction` — modify the triggering tuple;
* :class:`DeleteAction` — remove the triggering tuple;
* :class:`AbortAction` — veto the triggering mutation (integrity
  constraints): the database rolls back and the caller sees an
  :class:`~repro.db.database.AbortMutation`;
* :class:`CollectAction` — append match records to a list (testing,
  monitoring);
* :func:`chain` — run several actions in order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..db.database import AbortMutation
from ..errors import RuleError
from .rule import RuleContext

__all__ = [
    "InsertAction",
    "UpdateAction",
    "DeleteAction",
    "AbortAction",
    "CollectAction",
    "chain",
]

TupleSource = Union[
    Mapping[str, Any], Callable[[RuleContext], Mapping[str, Any]]
]


def _resolve(source: TupleSource, ctx: RuleContext) -> Dict[str, Any]:
    if callable(source):
        return dict(source(ctx))
    return dict(source)


class InsertAction:
    """Insert a derived tuple into *relation* when the rule fires.

    ``values`` is either a constant mapping or a function of the rule
    context returning one, e.g.::

        InsertAction("alerts", lambda ctx: {
            "message": f"low stock: {ctx.tuple['item']}",
        })
    """

    def __init__(self, relation: str, values: TupleSource):
        self.relation = relation
        self.values = values

    def __call__(self, ctx: RuleContext) -> int:
        return ctx.db.insert(self.relation, _resolve(self.values, ctx))

    def __repr__(self) -> str:
        return f"InsertAction({self.relation!r})"


class UpdateAction:
    """Update the triggering tuple with derived changes.

    Guarded against trivial self-triggering: if the computed changes
    leave every attribute unchanged, no update is issued.  (Rules whose
    updates keep genuinely changing values will re-trigger; the
    engine's firing limit turns runaway loops into
    :class:`~repro.errors.RuleCycleError`.)
    """

    def __init__(self, changes: TupleSource):
        self.changes = changes

    def __call__(self, ctx: RuleContext) -> None:
        changes = _resolve(self.changes, ctx)
        current = ctx.tuple
        if all(current.get(key) == value for key, value in changes.items()):
            return
        ctx.db.update(ctx.relation, ctx.tid, changes)

    def __repr__(self) -> str:
        return "UpdateAction(...)"


class DeleteAction:
    """Delete the triggering tuple."""

    def __call__(self, ctx: RuleContext) -> None:
        ctx.db.delete(ctx.relation, ctx.tid)

    def __repr__(self) -> str:
        return "DeleteAction()"


class AbortAction:
    """Veto the triggering mutation (integrity-constraint rules).

    Only meaningful in ``immediate`` firing mode, where rule actions run
    inside the mutation call; in deferred mode the mutation has already
    committed by the time rules fire, and aborting raises
    :class:`~repro.errors.RuleError` instead.
    """

    def __init__(self, reason: Optional[str] = None):
        self.reason = reason

    def __call__(self, ctx: RuleContext) -> None:
        if ctx.engine.mode != "immediate":
            raise RuleError(
                f"rule {ctx.rule.name!r}: AbortAction requires immediate mode"
            )
        reason = self.reason or f"aborted by rule {ctx.rule.name!r}"
        raise AbortMutation(reason)

    def __repr__(self) -> str:
        return f"AbortAction({self.reason!r})"


class CollectAction:
    """Append ``(rule_name, tuple)`` records to a list as matches occur."""

    def __init__(self, sink: Optional[List] = None):
        self.records: List = sink if sink is not None else []

    def __call__(self, ctx: RuleContext) -> None:
        self.records.append((ctx.rule.name, dict(ctx.tuple)))

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()

    def __repr__(self) -> str:
        return f"CollectAction({len(self.records)} records)"


def chain(*actions: Callable[[RuleContext], Any]) -> Callable[[RuleContext], None]:
    """Compose actions left to right into a single action."""
    for action in actions:
        if not callable(action):
            raise RuleError(f"chain() argument {action!r} is not callable")

    def run(ctx: RuleContext) -> None:
        for action in actions:
            action(ctx)

    return run
