"""Live monitors: continuous queries maintained by the rule engine.

A :class:`Monitor` is a continuously maintained view over one
relation: the set of tuples currently satisfying a condition, kept up
to date as inserts, updates, and deletes flow through the predicate
index — the "monitoring capability" the paper lists among the rule
system's applications (Section 3).

::

    monitor = engine.monitor("hot", on="reading", condition="value > 90")
    db.insert("reading", {...})           # may enter the view
    monitor.tids                           # live tid set
    monitor.rows()                         # current matching tuples
    monitor.on_enter = lambda tid, tup: ...
    monitor.on_leave = lambda tid, tup: ...

Entering/leaving is edge-triggered: ``on_enter`` fires when a tuple
starts matching (insert or update), ``on_leave`` when it stops
(update out of the condition, or delete).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..db.events import Event
from ..lang.compiler import CompiledCondition, compile_condition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import RuleEngine

__all__ = ["Monitor"]

ChangeHook = Optional[Callable[[int, Dict[str, Any]], Any]]


class Monitor:
    """A live set of tuples matching a condition (continuous query)."""

    def __init__(
        self,
        engine: "RuleEngine",
        name: str,
        relation: str,
        compiled: CompiledCondition,
    ):
        self.name = name
        self.relation = relation
        self._engine = engine
        self._compiled = compiled
        self._members: Dict[int, Dict[str, Any]] = {}
        self.on_enter: ChangeHook = None
        self.on_leave: ChangeHook = None
        self.active = True
        # seed from current contents
        for tid, tup in engine.db.relation(relation).scan():
            if compiled.matches(tup):
                self._members[tid] = dict(tup)

    # -- view access -----------------------------------------------------

    @property
    def tids(self) -> List[int]:
        """Tuple ids currently in the view."""
        return list(self._members)

    def rows(self) -> List[Dict[str, Any]]:
        """Copies of the tuples currently in the view."""
        return [dict(tup) for tup in self._members.values()]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, tid: int) -> bool:
        return tid in self._members

    def close(self) -> None:
        """Stop maintaining the view (it freezes at its current state)."""
        if self.active:
            self.active = False
            self._engine._drop_monitor(self)

    # -- maintenance (driven by the engine) ---------------------------------

    def _handle(self, event: Event) -> None:
        if not self.active or event.relation != self.relation:
            return
        tid = event.tid
        if event.kind == "delete":
            self._exit(tid)
            return
        image = event.tuple
        if image is not None and self._compiled.matches(image):
            self._enter(tid, dict(image))
        else:
            self._exit(tid)

    def _enter(self, tid: int, tup: Dict[str, Any]) -> None:
        was_member = tid in self._members
        self._members[tid] = tup
        if not was_member and self.on_enter is not None:
            self.on_enter(tid, dict(tup))

    def _exit(self, tid: int) -> None:
        tup = self._members.pop(tid, None)
        if tup is not None and self.on_leave is not None:
            self.on_leave(tid, dict(tup))

    def __repr__(self) -> str:
        state = "live" if self.active else "closed"
        return (
            f"<Monitor {self.name!r} on {self.relation} "
            f"({len(self._members)} rows, {state})>"
        )
