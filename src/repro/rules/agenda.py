"""The agenda (conflict set) of a forward-chaining rule engine.

When a tuple event matches several rules, their instantiations enter
the agenda and fire in *conflict-resolution order*: higher priority
first, and among equal priorities most-recent-first (the OPS5 recency
heuristic, which makes rule cascades depth-first).

The agenda also enforces the engine's firing limit: a rule cascade that
exceeds it raises :class:`~repro.errors.RuleCycleError` rather than
looping forever.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Iterator, List, Optional, Tuple

from ..errors import RuleCycleError
from .rule import Rule, RuleContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .failures import ActionFailure

__all__ = ["Agenda", "DeadLetterQueue"]


class Agenda:
    """A priority queue of pending rule instantiations."""

    def __init__(self, max_firings: int = 10_000):
        # heap entries: (-priority, -recency, seq, rule, context)
        self._heap: List[Tuple[int, int, int, Rule, RuleContext]] = []
        self._seq = itertools.count()
        self.max_firings = max_firings
        self.total_fired = 0

    def post(self, rule: Rule, context: RuleContext) -> None:
        """Add one instantiation to the agenda."""
        seq = next(self._seq)
        heapq.heappush(self._heap, (-rule.priority, -seq, seq, rule, context))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def pop(self) -> Tuple[Rule, RuleContext]:
        """Remove and return the next instantiation to fire."""
        _, _, _, rule, context = heapq.heappop(self._heap)
        return rule, context

    def drain(self) -> Iterator[Tuple[Rule, RuleContext]]:
        """Yield instantiations in firing order until the agenda is empty.

        New instantiations posted while draining (by rule actions) are
        included.  Raises :class:`~repro.errors.RuleCycleError` when the
        cumulative firing count passes :attr:`max_firings`.
        """
        while self._heap:
            self.total_fired += 1
            if self.total_fired > self.max_firings:
                self._heap.clear()
                raise RuleCycleError(
                    f"rule firing did not reach a fixpoint within "
                    f"{self.max_firings} firings (likely a rule cycle)"
                )
            yield self.pop()

    def clear(self) -> None:
        """Discard all pending instantiations."""
        self._heap.clear()

    def reset_counter(self) -> None:
        """Reset the cumulative firing count (new top-level transaction)."""
        self.total_fired = 0


class DeadLetterQueue:
    """Quarantined rule firings, in quarantine order.

    A bounded deque: when *capacity* is exceeded the **oldest** failure
    is dropped, so a rule failing in a tight loop cannot grow memory
    without bound — the most recent evidence is what debugging needs.
    """

    def __init__(self, capacity: int = 1000):
        if capacity < 1:
            raise ValueError("dead-letter capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque["ActionFailure"] = deque(maxlen=capacity)
        self.total_quarantined = 0
        self.dropped = 0

    def add(self, failure: "ActionFailure") -> None:
        """Record one quarantined firing."""
        if len(self._entries) == self.capacity:
            self.dropped += 1
        self._entries.append(failure)
        self.total_quarantined += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator["ActionFailure"]:
        return iter(list(self._entries))

    def by_rule(self) -> Dict[str, List["ActionFailure"]]:
        """Failures grouped by rule name, preserving quarantine order."""
        grouped: Dict[str, List["ActionFailure"]] = {}
        for failure in self._entries:
            grouped.setdefault(failure.rule_name, []).append(failure)
        return grouped

    def drain_entries(self) -> List["ActionFailure"]:
        """Remove and return all failures, oldest first."""
        entries = list(self._entries)
        self._entries.clear()
        return entries

    def clear(self) -> None:
        """Discard all recorded failures."""
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"<DeadLetterQueue {len(self._entries)}/{self.capacity} "
            f"(total {self.total_quarantined}, dropped {self.dropped})>"
        )
