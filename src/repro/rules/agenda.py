"""The agenda (conflict set) of a forward-chaining rule engine.

When a tuple event matches several rules, their instantiations enter
the agenda and fire in *conflict-resolution order*: higher priority
first, and among equal priorities most-recent-first (the OPS5 recency
heuristic, which makes rule cascades depth-first).

The agenda also enforces the engine's firing limit: a rule cascade that
exceeds it raises :class:`~repro.errors.RuleCycleError` rather than
looping forever.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Tuple

from ..errors import RuleCycleError
from .rule import Rule, RuleContext

__all__ = ["Agenda"]


class Agenda:
    """A priority queue of pending rule instantiations."""

    def __init__(self, max_firings: int = 10_000):
        # heap entries: (-priority, -recency, seq, rule, context)
        self._heap: List[Tuple[int, int, int, Rule, RuleContext]] = []
        self._seq = itertools.count()
        self.max_firings = max_firings
        self.total_fired = 0

    def post(self, rule: Rule, context: RuleContext) -> None:
        """Add one instantiation to the agenda."""
        seq = next(self._seq)
        heapq.heappush(self._heap, (-rule.priority, -seq, seq, rule, context))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def pop(self) -> Tuple[Rule, RuleContext]:
        """Remove and return the next instantiation to fire."""
        _, _, _, rule, context = heapq.heappop(self._heap)
        return rule, context

    def drain(self) -> Iterator[Tuple[Rule, RuleContext]]:
        """Yield instantiations in firing order until the agenda is empty.

        New instantiations posted while draining (by rule actions) are
        included.  Raises :class:`~repro.errors.RuleCycleError` when the
        cumulative firing count passes :attr:`max_firings`.
        """
        while self._heap:
            self.total_fired += 1
            if self.total_fired > self.max_firings:
                self._heap.clear()
                raise RuleCycleError(
                    f"rule firing did not reach a fixpoint within "
                    f"{self.max_firings} firings (likely a rule cycle)"
                )
            yield self.pop()

    def clear(self) -> None:
        """Discard all pending instantiations."""
        self._heap.clear()

    def reset_counter(self) -> None:
        """Reset the cumulative firing count (new top-level transaction)."""
        self.total_fired = 0
