"""The forward-chaining rule engine (trigger subsystem).

:class:`RuleEngine` subscribes to a
:class:`~repro.db.database.Database`'s mutation events and, for every
inserted or modified tuple, finds the matching rules through a
pluggable *predicate matcher* — by default the paper's two-level
IBS-tree index, optionally any of the Section 2 baselines — and fires
their actions in conflict-resolution order.

Firing modes:

``immediate`` (default)
    Rules fire synchronously inside the mutation call, and their
    actions' own mutations cascade until a fixpoint.  Integrity rules
    may veto the outermost mutation with
    :class:`~repro.rules.actions.AbortAction`.

``deferred``
    Matches accumulate on the agenda; nothing fires until
    :meth:`RuleEngine.run` is called (set-oriented batch processing).

Example::

    db = Database()
    db.create_relation("emp", ["name", "age", "salary", "dept"])
    engine = RuleEngine(db)
    engine.create_rule(
        "well_paid",
        on="emp",
        condition="20000 <= salary <= 30000",
        action=lambda ctx: print("matched", ctx.tuple["name"]),
    )
    db.insert("emp", {"name": "Lee", "age": 41, "salary": 25000,
                      "dept": "Shoe"})     # prints: matched Lee
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Union,
)

from ..baselines.base import PredicateMatcher
from ..core.selectivity import StatisticsEstimator
from ..db.database import AbortMutation, Database
from ..db.events import BatchEvent, Event
from ..errors import (
    ActionQuarantinedError,
    DuplicateRuleError,
    RegistryError,
    RuleCycleError,
    RuleError,
    UnknownRuleError,
)
from ..match.registry import DEFAULT_REGISTRY
from ..lang.compiler import compile_condition
from ..testing.faults import fault_point
from .agenda import Agenda, DeadLetterQueue
from .failures import ActionFailure, RetryPolicy
from .rule import Rule, RuleContext

__all__ = ["RuleEngine", "MATCHER_STRATEGIES"]

#: Named matcher strategies accepted by ``RuleEngine(matcher=...)`` —
#: every matcher registered in the
#: :data:`~repro.match.registry.DEFAULT_REGISTRY` at import time.
MATCHER_STRATEGIES = tuple(DEFAULT_REGISTRY.matchers())


class RuleEngine:
    """Forward-chaining trigger engine over a database.

    Parameters
    ----------
    db:
        The database to watch.
    matcher:
        A strategy name from :data:`MATCHER_STRATEGIES` or a ready
        :class:`~repro.baselines.base.PredicateMatcher` instance.
        ``None`` (the default) uses the database's
        ``Database(matcher=...)`` default when one was configured,
        falling back to ``"ibs"`` — the paper's algorithm with
        data-driven selectivity estimates.  Strategy names resolve
        through the :data:`~repro.match.registry.DEFAULT_REGISTRY`.
    functions:
        Opaque boolean functions available to rule conditions, by name.
    mode:
        ``"immediate"`` or ``"deferred"`` (see module docstring).
    max_firings:
        Cascade limit before :class:`~repro.errors.RuleCycleError`.
    retry_policy:
        How failing actions are retried before quarantine; defaults to
        :class:`~repro.rules.failures.RetryPolicy` (no retries, poison
        after 3 consecutive quarantines).
    on_error:
        ``"quarantine"`` (default): a rule action that raises is
        retried per the policy, then recorded on the dead-letter queue
        (see :meth:`failures`) while the drain continues — one bad rule
        cannot abort the agenda.  Each action runs in a nested database
        transaction, so a failed action's own mutations are rolled back
        before quarantine.  ``"propagate"``: legacy behaviour — the
        exception aborts the drain and reaches the mutating caller
        (the action's mutations are still rolled back).
        :class:`~repro.db.database.AbortMutation` and
        :class:`~repro.errors.RuleCycleError` always propagate; they
        are control flow, not failures.
    dead_letter_capacity:
        Bound on retained failures; beyond it the oldest are dropped.
    """

    def __init__(
        self,
        db: Database,
        matcher: Optional[Union[str, PredicateMatcher]] = None,
        functions: Optional[Mapping[str, Callable[[Any], bool]]] = None,
        mode: str = "immediate",
        max_firings: int = 10_000,
        retry_policy: Optional[RetryPolicy] = None,
        on_error: str = "quarantine",
        dead_letter_capacity: int = 1000,
    ):
        if mode not in ("immediate", "deferred"):
            raise RuleError(f"unknown firing mode {mode!r}")
        if on_error not in ("quarantine", "propagate"):
            raise RuleError(f"unknown on_error policy {on_error!r}")
        self.db = db
        self.mode = mode
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.on_error = on_error
        self.dead_letters = DeadLetterQueue(dead_letter_capacity)
        self._failure_seq = 0
        self._failure_streaks: Dict[str, int] = {}
        self.functions: Dict[str, Callable[[Any], bool]] = dict(functions or {})
        if matcher is None:
            matcher = getattr(db, "default_matcher", None)
            if matcher is None:
                matcher = "ibs"
        self.matcher = self._build_matcher(matcher)
        self.agenda = Agenda(max_firings=max_firings)
        self._rules: Dict[str, Rule] = {}
        self._rule_of_ident: Dict[Hashable, Rule] = {}
        self._idents_of_rule: Dict[str, List[Hashable]] = {}
        self._draining = False
        #: optional tracer called with (rule, context) as each rule fires
        self.on_fire: Optional[Callable[[Any, RuleContext], Any]] = None
        from .join_layer import JoinLayer

        self.joins = JoinLayer(self)
        self._monitors: Dict[str, Any] = {}
        self._unsubscribe = db.subscribe(self._on_event)

    def _build_matcher(self, matcher: Union[str, PredicateMatcher]) -> PredicateMatcher:
        options: Dict[str, Any] = {"estimator": StatisticsEstimator(self.db)}
        # A database-level maintenance policy rides along to every
        # matcher built for it; builders that have no maintenance plane
        # (the sequential baselines) simply drop the option.
        maintenance = getattr(self.db, "default_maintenance", None)
        if maintenance is not None:
            options["maintenance"] = maintenance
        try:
            return DEFAULT_REGISTRY.create_matcher(matcher, **options)
        except RegistryError:
            raise RuleError(
                f"unknown matcher strategy {matcher!r}; "
                f"choose one of {', '.join(DEFAULT_REGISTRY.matchers())}"
            ) from None

    # -- rule management -------------------------------------------------

    def create_rule(
        self,
        name: str,
        on: str,
        condition: Optional[str],
        action: Callable[[RuleContext], Any],
        priority: int = 0,
        on_events: Optional[Iterable[str]] = None,
        when_old: Optional[str] = None,
    ) -> Rule:
        """Compile and register a trigger; returns the Rule.

        ``condition`` of None (or ``"true"``) matches every tuple of the
        relation.  A condition that can never match (e.g.
        ``"age > 9 and age < 3"``) is rejected, since the rule would be
        dead weight in the index.

        ``when_old`` turns the rule into an Ariel-style *transition*
        rule: it fires only on updates whose **pre-update** image
        matched ``when_old`` and whose new image matches ``condition``
        — e.g. ``condition="salary > 30000",
        when_old="salary <= 30000"`` fires exactly when a salary
        crosses the threshold upward.  Transition rules default to
        update events only.
        """
        if name in self._rules:
            raise DuplicateRuleError(name)
        self.db.relation(on)  # validates the relation exists
        source = condition if condition is not None else "true"
        compiled = compile_condition(on, source, self.functions)
        group = compiled.group
        if group.is_empty:
            raise RuleError(
                f"rule {name!r} condition {source!r} can never match any tuple"
            )
        old_group = None
        if when_old is not None:
            old_compiled = compile_condition(on, when_old, self.functions)
            old_group = old_compiled.group
            if old_group.is_empty:
                raise RuleError(
                    f"rule {name!r} old-condition {when_old!r} can never match"
                )
            if on_events is None:
                on_events = ("update",)
        events = frozenset(on_events) if on_events is not None else None
        rule = Rule(
            name,
            on,
            group,
            action,
            priority=priority,
            on_events=events,
            source=source,
            old_group=old_group,
            old_source=when_old,
        )
        idents: List[Hashable] = []
        try:
            for predicate in group:
                self.matcher.add(predicate)
                idents.append(predicate.ident)
        except Exception:
            for ident in idents:
                self.matcher.remove(ident)
            raise
        for ident in idents:
            self._rule_of_ident[ident] = rule
        self._idents_of_rule[name] = idents
        self._rules[name] = rule
        return rule

    def drop_rule(self, name: str) -> None:
        """Unregister a rule and all its predicates."""
        try:
            del self._rules[name]
        except KeyError:
            raise UnknownRuleError(name) from None
        for ident in self._idents_of_rule.pop(name):
            self.matcher.remove(ident)
            del self._rule_of_ident[ident]

    def rule(self, name: str) -> Rule:
        """Look up a rule by name."""
        try:
            return self._rules[name]
        except KeyError:
            raise UnknownRuleError(name) from None

    def rules(self) -> List[Rule]:
        """All registered rules, in creation order."""
        return list(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def close(self) -> None:
        """Detach from the database's event bus.

        Also releases matcher-held resources (the concurrent matcher's
        worker pool); matchers without a ``close`` are unaffected.
        """
        self._unsubscribe()
        closer = getattr(self.matcher, "close", None)
        if closer is not None:
            closer()

    # -- matching and firing -------------------------------------------------

    def match_tuple(self, relation: str, tup: Mapping[str, Any]) -> List[Rule]:
        """The rules whose condition matches *tup* (no firing).

        A rule matches if any of its disjunct predicates matches; each
        rule is reported once.
        """
        matched: List[Rule] = []
        seen: Set[str] = set()
        for predicate in self.matcher.match(relation, tup):
            rule = self._rule_of_ident.get(predicate.ident)
            if rule is not None and rule.name not in seen:
                seen.add(rule.name)
                matched.append(rule)
        return matched

    def create_join_rule(
        self,
        name: str,
        left: str,
        right: str,
        condition: str,
        action: Callable[[RuleContext], Any],
        priority: int = 0,
    ):
        """Register a two-relation rule (see :mod:`repro.rules.join_layer`).

        The condition must qualify every attribute with its relation
        (``"emp.dept = dept.name and emp.salary > 50000"``); the
        single-relation parts enter the selection index and the
        inter-relation comparisons are tested TREAT-style against alpha
        memories.
        """
        return self.joins.create_rule(name, left, right, condition, action, priority)

    def drop_join_rule(self, name: str) -> None:
        """Unregister a join rule."""
        self.joins.drop_rule(name)

    def explain(self, relation: str, tup: Mapping[str, Any]) -> List[Dict[str, Any]]:
        """Explain how *tup* would match: one record per rule of *relation*.

        Each record reports whether the rule's condition matches and,
        when it does, the disjunct predicate(s) it matched through —
        handy when debugging why a trigger did or did not fire::

            >>> engine.explain("emp", {"age": 60, "salary": 1000})
            [{'rule': 'senior_low_pay', 'matched': True,
              'via': ['emp: salary < 20000 and age > 50'], ...}]
        """
        matched_idents = {
            pred.ident for pred in self.matcher.match(relation, tup)
        }
        report: List[Dict[str, Any]] = []
        for rule in self._rules.values():
            if rule.relation != relation:
                continue
            via = [
                str(predicate)
                for predicate in rule.group
                if predicate.ident in matched_idents
            ]
            report.append(
                {
                    "rule": rule.name,
                    "matched": bool(via),
                    "via": via,
                    "enabled": rule.enabled,
                    "events": sorted(rule.on_events),
                    "condition": rule.source,
                }
            )
        return report

    def monitor(self, name: str, on: str, condition: Optional[str] = None):
        """Create a live view of *on* tuples satisfying *condition*.

        Returns a :class:`~repro.rules.monitor.Monitor` that tracks the
        matching tuple set continuously (seeded from current contents)
        and offers edge-triggered ``on_enter`` / ``on_leave`` hooks.
        """
        from .monitor import Monitor

        if name in self._monitors:
            raise DuplicateRuleError(name)
        self.db.relation(on)
        compiled = compile_condition(on, condition or "true", self.functions)
        live = Monitor(self, name, on, compiled)
        self._monitors[name] = live
        return live

    def _drop_monitor(self, live) -> None:
        self._monitors.pop(live.name, None)

    def monitors(self) -> List[Any]:
        """The currently active monitors."""
        return list(self._monitors.values())

    def _on_event(self, event: Event) -> None:
        if isinstance(event, BatchEvent):
            self._on_batch(event)
            return
        for live in list(self._monitors.values()):
            live._handle(event)
        image = event.tuple
        if image is None:
            return
        matched_predicates = self.matcher.match(event.relation, image)
        matched_idents = {pred.ident for pred in matched_predicates}
        if event.compensating:
            # A rollback notification: bring derived state (join alpha
            # memories; monitors already handled above) back in line
            # with the restored relation contents, but fire no rules —
            # the mutation being compensated officially never happened.
            self.joins.process(event, matched_idents, post=False)
            return
        posted = False
        old = getattr(event, "old", None)
        seen: Set[str] = set()
        for predicate in matched_predicates:
            rule = self._rule_of_ident.get(predicate.ident)
            if rule is None or rule.name in seen or not rule.reacts_to(event):
                continue
            seen.add(rule.name)
            context = RuleContext(self.db, self, rule, event, dict(image), old)
            self.agenda.post(rule, context)
            posted = True
        if self.joins.process(event, matched_idents):
            posted = True
        if posted and self.mode == "immediate":
            self._drain()

    def _on_batch(self, batch: BatchEvent) -> None:
        """Consume a bulk mutation: one matching pass, one agenda drain.

        Monitors and the join layer still see the per-tuple sub-events
        (their semantics are inherently per tuple), but predicate
        matching runs once over the whole batch through the matcher's
        :meth:`~repro.baselines.base.PredicateMatcher.match_batch`, and
        in immediate mode the agenda is drained once after the entire
        batch is posted — the set-oriented processing the bulk APIs
        exist for.
        """
        events = batch.events
        for live in list(self._monitors.values()):
            for event in events:
                live._handle(event)
        images = [event.tuple for event in events]
        matched_lists = self.matcher.match_batch(batch.relation, images)
        posted = False
        for event, image, matched_predicates in zip(events, images, matched_lists):
            matched_idents = {pred.ident for pred in matched_predicates}
            old = getattr(event, "old", None)
            seen: Set[str] = set()
            for predicate in matched_predicates:
                rule = self._rule_of_ident.get(predicate.ident)
                if rule is None or rule.name in seen or not rule.reacts_to(event):
                    continue
                seen.add(rule.name)
                context = RuleContext(self.db, self, rule, event, dict(image), old)
                self.agenda.post(rule, context)
                posted = True
            if self.joins.process(event, matched_idents):
                posted = True
        if posted and self.mode == "immediate":
            self._drain()

    def _drain(self) -> int:
        """Fire until the agenda is empty; returns the number fired.

        Reentrancy-safe: rule actions whose mutations re-enter
        ``_on_event`` merely post to the agenda, and the outer drain
        loop picks the new instantiations up.  Each top-level drain
        gets a fresh firing budget.

        Each firing is *isolated*: the action runs inside a nested
        database transaction and, under the default
        ``on_error="quarantine"`` policy, an action that raises is
        retried per :attr:`retry_policy` and then quarantined onto
        :attr:`dead_letters` — its mutations rolled back, the drain
        continuing with the next instantiation.
        """
        if self._draining:
            return 0
        self._draining = True
        self.agenda.reset_counter()
        try:
            for rule, context in self.agenda.drain():
                rule.fire_count += 1
                if self.on_fire is not None:
                    self.on_fire(rule, context)
                self._fire_isolated(rule, context)
        finally:
            self._draining = False
        return self.agenda.total_fired

    def _fire_isolated(self, rule: Any, context: RuleContext) -> None:
        """Run one action: transactional, retried, quarantined on failure."""
        policy = self.retry_policy
        attempt = 0
        while True:
            attempt += 1
            try:
                with self.db.transaction():
                    fault_point("engine.action")
                    rule.action(context)
            except (AbortMutation, RuleCycleError, RuleError):
                # control flow (vetoes, firing limit) and rule-system
                # misconfiguration are not action failures: propagate
                raise
            except Exception as exc:
                if self.on_error == "propagate":
                    raise
                if attempt < policy.max_attempts:
                    delay = policy.delay(attempt + 1)
                    if delay > 0:
                        policy.sleep(delay)
                    continue
                self._quarantine(rule, context, exc, attempt)
                return
            else:
                self._failure_streaks.pop(rule.name, None)
                return

    def _quarantine(
        self, rule: Any, context: RuleContext, error: BaseException, attempts: int
    ) -> None:
        self._failure_seq += 1
        streak = self._failure_streaks.get(rule.name, 0) + 1
        self._failure_streaks[rule.name] = streak
        poisoned = streak >= self.retry_policy.poison_threshold
        if poisoned:
            # poison pill: this rule keeps failing; stop feeding it the
            # agenda so it cannot starve everyone else
            rule.enabled = False
        self.dead_letters.add(
            ActionFailure(
                seq=self._failure_seq,
                rule_name=rule.name,
                context=context,
                error=error,
                attempts=attempts,
                poisoned=poisoned,
            )
        )

    # -- failure inspection and recovery ---------------------------------

    def failures(self) -> List[ActionFailure]:
        """Quarantined firings, oldest first (see :class:`ActionFailure`)."""
        return list(self.dead_letters)

    def clear_failures(self) -> None:
        """Forget all quarantined firings (keeps rules' enabled state)."""
        self.dead_letters.clear()
        self._failure_streaks.clear()

    def requeue_failures(self, strict: bool = False) -> int:
        """Re-fire quarantined instantiations; returns how many were queued.

        Failures whose rule is still disabled (poisoned) stay on the
        dead-letter queue — re-enable the rule first.  Requeued rules
        get a fresh poison budget.  In immediate mode the agenda drains
        right away; with ``strict=True`` a firing that fails *again*
        raises :class:`~repro.errors.ActionQuarantinedError` instead of
        being silently re-quarantined.
        """
        entries = self.dead_letters.drain_entries()
        requeued = 0
        for failure in entries:
            rule = self._rules.get(failure.rule_name) or self.joins._rules.get(
                failure.rule_name
            )
            if rule is None or not rule.enabled:
                self.dead_letters.add(failure)
                continue
            self._failure_streaks.pop(failure.rule_name, None)
            self.agenda.post(rule, failure.context)
            requeued += 1
        before = self.dead_letters.total_quarantined
        if requeued and self.mode == "immediate":
            self._drain()
            if strict and self.dead_letters.total_quarantined > before:
                refailed = self.failures()[-1]
                raise ActionQuarantinedError(refailed.describe()) from refailed.error
        return requeued

    def run(self) -> int:
        """Deferred mode: fire everything on the agenda; returns the count."""
        return self._drain()

    def __repr__(self) -> str:
        return (
            f"<RuleEngine {len(self._rules)} rules, "
            f"matcher={getattr(self.matcher, 'name', type(self.matcher).__name__)}, "
            f"mode={self.mode}>"
        )
