"""Action-failure policy and records for the rule engine.

A production trigger system cannot let one buggy rule action take down
the whole agenda: the engine retries a failing action under a bounded
:class:`RetryPolicy`, then *quarantines* the instantiation — records it
as an :class:`ActionFailure` on the engine's dead-letter queue and
moves on to the next firing.  Repeated quarantines of the same rule
(a *poison pill*) disable the rule so it cannot starve the agenda.

Two exception families are never quarantined, because they are control
flow rather than failures: :class:`~repro.db.database.AbortMutation`
(an integrity veto that must reach the mutation that triggered it) and
:class:`~repro.errors.RuleCycleError` (the firing-limit breaker).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .rule import RuleContext

__all__ = ["RetryPolicy", "ActionFailure"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats a rule action that raises.

    Attributes
    ----------
    max_attempts:
        Total tries per firing, including the first.  The default of 1
        means a failing action is quarantined immediately; transient
        failures (e.g. an action calling a flaky external service)
        warrant 2–3.
    backoff / multiplier / max_backoff:
        Sleep ``backoff`` seconds before the second attempt, growing by
        ``multiplier`` per further attempt, capped at ``max_backoff``.
        The default backoff of 0 retries immediately — right for pure
        in-memory actions, where waiting buys nothing.
    poison_threshold:
        Consecutive quarantined *firings* of the same rule before the
        rule is disabled (``rule.enabled = False``).  A successful
        firing resets the count.
    sleep:
        Injectable clock for tests; defaults to :func:`time.sleep`.
    """

    max_attempts: int = 1
    backoff: float = 0.0
    multiplier: float = 2.0
    max_backoff: float = 1.0
    poison_threshold: int = 3
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.max_backoff < 0 or self.multiplier <= 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before *attempt* (2-based; attempt 1 never waits)."""
        if attempt <= 1 or self.backoff == 0:
            return 0.0
        return min(self.backoff * self.multiplier ** (attempt - 2), self.max_backoff)


@dataclass
class ActionFailure:
    """One quarantined rule firing, kept on the dead-letter queue.

    The original :class:`~repro.rules.rule.RuleContext` is retained so
    the firing can be re-run (:meth:`RuleEngine.requeue_failures`) once
    the underlying problem is fixed.
    """

    seq: int
    rule_name: str
    context: RuleContext
    error: BaseException
    attempts: int
    #: True when this failure tripped the poison threshold and the rule
    #: was disabled as a result.
    poisoned: bool = False

    @property
    def relation(self) -> str:
        return self.context.relation

    @property
    def tid(self) -> int:
        return self.context.tid

    def describe(self) -> str:
        status = " [rule disabled]" if self.poisoned else ""
        return (
            f"#{self.seq} rule {self.rule_name!r} on "
            f"{self.relation}#{self.tid}: "
            f"{type(self.error).__name__}: {self.error} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''}){status}"
        )

    def __repr__(self) -> str:
        return f"<ActionFailure {self.describe()}>"
