"""Rule and rule-context objects.

A rule in this system is a trigger of the paper's form::

    if condition then action

where the condition is a single-relation selection (compiled into a
:class:`~repro.predicates.PredicateGroup`) and the action is a Python
callable or a declarative action from :mod:`repro.rules.actions`.
Join rules — two-relation conditions — are handled by the extension in
:mod:`repro.rules.join_layer`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, Optional

from ..db.events import Event
from ..errors import RuleError
from ..predicates.predicate import PredicateGroup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.database import Database
    from .engine import RuleEngine

__all__ = ["Rule", "RuleContext", "VALID_EVENT_KINDS"]

VALID_EVENT_KINDS: FrozenSet[str] = frozenset({"insert", "update", "delete"})


class RuleContext:
    """Everything an action needs: the event, the tuple, and handles.

    Attributes
    ----------
    db / engine / rule:
        The database, the engine that fired the rule, and the rule.
    event:
        The triggering :class:`~repro.db.events.Event`.
    tuple:
        The tuple image the condition matched (the new image for
        inserts/updates, the old image for deletes).
    old:
        The pre-update image (None for inserts).
    bindings:
        For join rules, the matched tuple of the *other* relation;
        empty for selection rules.
    """

    __slots__ = ("db", "engine", "rule", "event", "tuple", "old", "bindings")

    def __init__(
        self,
        db: "Database",
        engine: "RuleEngine",
        rule: "Rule",
        event: Event,
        matched_tuple: Dict[str, Any],
        old: Optional[Dict[str, Any]] = None,
        bindings: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        self.db = db
        self.engine = engine
        self.rule = rule
        self.event = event
        self.tuple = matched_tuple
        self.old = old
        self.bindings = bindings or {}

    @property
    def tid(self) -> int:
        """Tuple identifier of the triggering tuple."""
        return self.event.tid

    @property
    def relation(self) -> str:
        """Relation of the triggering tuple."""
        return self.event.relation

    def __repr__(self) -> str:
        return (
            f"<RuleContext rule={self.rule.name!r} {self.event.kind} "
            f"{self.relation}#{self.tid}>"
        )


class Rule:
    """A compiled trigger: name, condition group, action, priority.

    Rules are created through :meth:`repro.rules.RuleEngine.create_rule`
    rather than directly, so that their predicates are registered with
    the engine's matcher.
    """

    __slots__ = (
        "name",
        "relation",
        "group",
        "old_group",
        "action",
        "priority",
        "on_events",
        "enabled",
        "source",
        "old_source",
        "fire_count",
    )

    def __init__(
        self,
        name: str,
        relation: str,
        group: PredicateGroup,
        action: Callable[[RuleContext], Any],
        priority: int = 0,
        on_events: Optional[FrozenSet[str]] = None,
        source: Optional[str] = None,
        old_group: Optional[PredicateGroup] = None,
        old_source: Optional[str] = None,
    ):
        if not callable(action):
            raise RuleError(f"rule {name!r} action must be callable")
        events = frozenset(on_events) if on_events is not None else frozenset(
            {"insert", "update"}
        )
        bad = events - VALID_EVENT_KINDS
        if bad:
            raise RuleError(f"rule {name!r} has unknown event kinds {sorted(bad)}")
        if not events:
            raise RuleError(f"rule {name!r} must subscribe to at least one event kind")
        self.name = name
        self.relation = relation
        self.group = group
        self.old_group = old_group
        self.action = action
        self.priority = priority
        self.on_events = events
        self.enabled = True
        self.source = source
        self.old_source = old_source
        self.fire_count = 0

    @property
    def is_transition(self) -> bool:
        """True if this rule also constrains the *pre-update* image.

        Transition rules (Ariel-style ``when_old``) fire only when a
        tuple crosses from the old condition into the new one — e.g.
        "salary was <= 30000 and is now > 30000".
        """
        return self.old_group is not None

    def reacts_to(self, event: Event) -> bool:
        """True if this rule listens for the event's kind (and is enabled).

        A transition rule additionally requires a pre-update image
        matching its old-condition — so it can only fire on updates
        (and deletes, where the final image plays the new role is not
        meaningful; inserts have no old image at all).
        """
        if not (self.enabled and event.kind in self.on_events):
            return False
        if self.old_group is None:
            return True
        old = getattr(event, "old", None)
        return old is not None and self.old_group.matches(old)

    def __repr__(self) -> str:
        return (
            f"<Rule {self.name!r} on {self.relation} "
            f"({'/'.join(sorted(self.on_events))}) priority={self.priority}>"
        )
