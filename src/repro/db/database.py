"""The main-memory database: catalog, mutations, and event delivery.

:class:`Database` is the substrate the rule system sits on: a catalog of
:class:`~repro.db.relation.Relation` objects plus a synchronous event
bus.  Every successful insert/update/delete produces an event delivered
to subscribers in registration order — the rule engine subscribes to
drive predicate matching, exactly the "inserted or deleted tuples enter
here" arrow at the top of the paper's Figure 1.

A subscriber may veto a mutation by raising
:class:`~repro.db.database.AbortMutation` (used by integrity rules):
the database rolls the mutation back and re-raises, so the caller sees
the mutation never happened.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import (
    DatabaseError,
    RegistryError,
    SchemaError,
    TransactionError,
    UnknownRelationError,
)
from .events import BatchEvent, DeleteEvent, Event, InsertEvent, UpdateEvent, as_compensating
from .relation import Relation
from .schema import AttributeSpec, Schema

__all__ = ["Database", "AbortMutation", "Transaction"]

#: Subscribers receive every per-tuple :class:`Event` — and, from the
#: bulk mutation APIs, a single :class:`BatchEvent` wrapping the batch.
Subscriber = Callable[[Any], None]


class AbortMutation(DatabaseError):
    """Raised by a subscriber (e.g. an integrity rule) to veto a mutation.

    The database undoes the mutation before propagating this exception,
    so state is as if the call never happened.
    """

    def __init__(self, reason: str = "mutation aborted by rule"):
        super().__init__(reason)
        self.reason = reason


class Transaction:
    """A journal of applied mutations supporting all-or-nothing rollback.

    Obtained from :meth:`Database.transaction`; while active, every
    mutation on the database — including cascades triggered by rule
    actions — appends an undo record *before* its event is delivered,
    so :meth:`rollback_to` can restore any earlier state by undoing
    records in strict LIFO order (a cascade that updates a tuple the
    outer operation created is unwound update-first).

    Undoing an operation fires a *compensating* event (the inverse
    image, flagged ``compensating=True``) so subscribers that maintain
    derived state — rule-engine monitors, join alpha memories — track
    the restored contents instead of silently drifting.  Compensating
    events cannot be vetoed: an :class:`AbortMutation` raised against
    one is ignored, because the rollback it announces already happened.
    """

    __slots__ = ("_db", "_ops", "state")

    def __init__(self, db: "Database"):
        self._db = db
        self._ops: List[Tuple] = []
        #: ``"active"`` -> ``"committed"`` or ``"rolled-back"``
        self.state = "active"

    @property
    def active(self) -> bool:
        return self.state == "active"

    def __len__(self) -> int:
        """Number of not-yet-undone operations journaled so far."""
        return len(self._ops)

    def savepoint(self) -> int:
        """A marker for partial rollback: the current journal length."""
        return len(self._ops)

    def _record(self, op: Tuple) -> None:
        if self.state != "active":
            raise TransactionError(
                f"cannot mutate through a {self.state} transaction"
            )
        self._ops.append(op)

    def rollback(self) -> None:
        """Undo every journaled operation and close the transaction."""
        self.rollback_to(0)
        self.state = "rolled-back"

    def rollback_to(self, savepoint: int) -> None:
        """Undo journaled operations back to *savepoint*, newest first.

        Each undo restores the relation's stored tuple (and its
        statistics) and fires the matching compensating event.  A
        subscriber error during compensation does not stop the
        rollback — every remaining operation is still undone, and the
        first such error is re-raised wrapped in
        :class:`~repro.errors.TransactionError` once the state is
        restored.
        """
        if self.state != "active":
            raise TransactionError(f"cannot roll back a {self.state} transaction")
        if savepoint < 0 or savepoint > len(self._ops):
            raise TransactionError(
                f"savepoint {savepoint} out of range (journal has {len(self._ops)} ops)"
            )
        db = self._db
        first_error: Optional[BaseException] = None
        while len(self._ops) > savepoint:
            op = self._ops.pop()
            kind = op[0]
            if kind == "insert":
                _, relation, name, tid = op
                old = relation.delete(tid)
                event: Event = DeleteEvent(name, tid, dict(old))
            elif kind == "update":
                _, relation, name, tid, old, new = op
                relation._tuples[tid] = old
                if relation.track_statistics:
                    relation.statistics.observe_update(new, old)
                event = UpdateEvent(name, tid, dict(new), dict(old))
            else:  # "delete"
                _, relation, name, tid, old = op
                relation.restore(tid, old)
                event = InsertEvent(name, tid, dict(old))
            try:
                db._notify(as_compensating(event))
            except AbortMutation:
                pass  # a rollback cannot be vetoed
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise TransactionError(
                "a subscriber failed while handling a compensating event; "
                "relation state was fully rolled back regardless"
            ) from first_error

    def __repr__(self) -> str:
        return f"<Transaction {self.state}, {len(self._ops)} ops>"


class Database:
    """A catalog of main-memory relations with synchronous mutation events.

    Parameters
    ----------
    threadsafe:
        When set, every mutation (and every open :meth:`transaction`
        scope) runs under one reentrant mutation lock, so concurrent
        threads cannot interleave half-applied mutations or their event
        deliveries.  Reentrancy keeps rule-action cascades working: a
        subscriber reacting to an event may mutate again on the same
        thread.  Reads are not locked — pair this with a matcher that
        reads published snapshots (``"ibs-concurrent"``) for a fully
        thread-safe rule system.  Off by default: the single-threaded
        paper configuration pays no locking overhead.
    matcher:
        Default predicate-matcher strategy for rule engines created
        over this database: a name registered in the
        :data:`~repro.match.registry.DEFAULT_REGISTRY` (``"ibs"``,
        ``"ibs-concurrent"``, ``"sequential"``, …) or a ready
        :class:`~repro.baselines.base.PredicateMatcher` instance.  A
        :class:`~repro.rules.engine.RuleEngine` constructed without an
        explicit ``matcher`` picks this up; ``None`` (the default)
        leaves the engine's own default (``"ibs"``) in charge.  Unknown
        names raise :class:`~repro.errors.RegistryError` here, at
        configuration time, rather than when the first engine attaches.
    maintenance:
        A :class:`~repro.maintenance.MaintenancePolicy` forwarded (via
        the registry) to every matcher a rule engine builds over this
        database, routing its periodic work — retune, backend
        auto-selection, shard compaction, disk checkpoints, eviction —
        through one deterministic scheduler.  ``None`` (the default)
        leaves every mechanism manual or on its legacy per-matcher
        sugar.
    """

    def __init__(
        self,
        threadsafe: bool = False,
        matcher: Optional[Any] = None,
        maintenance: Optional[Any] = None,
    ) -> None:
        if isinstance(matcher, str):
            # Imported here: the db layer must stay importable while
            # repro.core (which db depends on) is still initialising.
            from ..match.registry import DEFAULT_REGISTRY

            if matcher not in DEFAULT_REGISTRY.matchers():
                raise RegistryError(
                    f"unknown matcher {matcher!r}; registered: "
                    f"{', '.join(DEFAULT_REGISTRY.matchers())}"
                )
        #: Default matcher spec for rule engines over this database.
        self.default_matcher = matcher
        #: Default maintenance policy for those engines' matchers.
        self.default_maintenance = maintenance
        self._relations: Dict[str, Relation] = {}
        self._subscribers: List[Subscriber] = []
        self._txn: Optional[Transaction] = None
        self.threadsafe = bool(threadsafe)
        # nullcontext() is reusable and reentrant, so the unlocked
        # default costs one no-op __enter__/__exit__ per mutation.
        self._mutation_lock: Any = (
            threading.RLock() if threadsafe else nullcontext()
        )

    # -- catalog --------------------------------------------------------

    def create_relation(
        self,
        name: str,
        attributes: Iterable[AttributeSpec],
        track_statistics: bool = True,
    ) -> Relation:
        """Create and register a relation; returns it.

        ``attributes`` accepts the same specs as
        :class:`~repro.db.schema.Schema`: names, ``(name, Domain)``
        pairs, or :class:`~repro.db.schema.Attribute` objects.
        """
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        relation = Relation(Schema(name, attributes), track_statistics)
        self._relations[name] = relation
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove a relation and all its tuples from the catalog."""
        if name not in self._relations:
            raise UnknownRelationError(name)
        del self._relations[name]

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def relations(self) -> List[str]:
        """Names of all relations, in creation order."""
        return list(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    # -- event bus ---------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register an event callback; returns an unsubscribe function."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self, event: Event) -> None:
        for subscriber in list(self._subscribers):
            subscriber(event)

    # -- transactions ------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """Whether a transactional mutation context is currently open."""
        return self._txn is not None

    @property
    def current_transaction(self) -> Optional[Transaction]:
        """The open :class:`Transaction`, if any."""
        return self._txn

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """All-or-nothing scope for a group of mutations.

        Every mutation inside the ``with`` block — including cascades
        fired by rule actions reacting to those mutations — is
        journaled; if the block raises, the whole journal is undone in
        LIFO order (firing compensating events to subscribers) and the
        exception propagates.  On normal exit the journal is discarded
        and the transaction commits.

        Nesting is savepoint-based: a ``transaction()`` opened while
        one is already active yields the *same* transaction, and a
        failure inside the inner block rolls back only the operations
        the inner block performed.

        Note that a subscriber veto (:class:`AbortMutation`) on one
        mutation still only undoes that mutation; the transaction stays
        open, and the caller may catch the veto inside the block and
        continue.

        With ``threadsafe=True`` the mutation lock is held for the
        whole scope: transactions from different threads serialise
        rather than interleave their journals (the reentrant lock still
        admits same-thread nesting and rule-action cascades).
        """
        with self._mutation_lock:
            outer = self._txn
            if outer is not None:
                sp = outer.savepoint()
                try:
                    yield outer
                except BaseException:
                    if outer.active:
                        outer.rollback_to(sp)
                    raise
                return
            txn = Transaction(self)
            self._txn = txn
            try:
                yield txn
            except BaseException:
                try:
                    if txn.active:
                        txn.rollback()
                finally:
                    self._txn = None
                raise
            else:
                self._txn = None
                if txn.active:
                    txn.state = "committed"

    # -- mutations ------------------------------------------------------------

    def insert(self, relation_name: str, values: Mapping[str, Any]) -> int:
        """Insert a tuple; fires an InsertEvent; returns the new tid.

        If a subscriber raises :class:`AbortMutation` the tuple is
        removed again — announcing the removal with a compensating
        DeleteEvent — and the exception propagates.
        """
        with self._mutation_lock:
            return self._insert(relation_name, values)

    def _insert(self, relation_name: str, values: Mapping[str, Any]) -> int:
        relation = self.relation(relation_name)
        txn = self._txn
        if txn is not None:
            sp = txn.savepoint()
            tid, tup = relation.insert(values)
            txn._record(("insert", relation, relation_name, tid))
            try:
                self._notify(InsertEvent(relation_name, tid, dict(tup)))
            except AbortMutation:
                txn.rollback_to(sp)
                raise
            return tid
        tid, tup = relation.insert(values)
        try:
            self._notify(InsertEvent(relation_name, tid, dict(tup)))
        except AbortMutation:
            old = relation.delete(tid)
            self._notify_compensating(DeleteEvent(relation_name, tid, dict(old)))
            raise
        return tid

    def update(
        self, relation_name: str, tid: int, changes: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Update a tuple; fires an UpdateEvent; returns the new image."""
        with self._mutation_lock:
            return self._update(relation_name, tid, changes)

    def _update(
        self, relation_name: str, tid: int, changes: Mapping[str, Any]
    ) -> Dict[str, Any]:
        relation = self.relation(relation_name)
        txn = self._txn
        if txn is not None:
            sp = txn.savepoint()
            old, new = relation.update(tid, changes)
            txn._record(("update", relation, relation_name, tid, old, new))
            try:
                self._notify(UpdateEvent(relation_name, tid, dict(old), dict(new)))
            except AbortMutation:
                txn.rollback_to(sp)
                raise
            return dict(new)
        old, new = relation.update(tid, changes)
        try:
            self._notify(UpdateEvent(relation_name, tid, dict(old), dict(new)))
        except AbortMutation:
            relation._tuples[tid] = old  # direct rollback, stats re-adjusted
            if relation.track_statistics:
                relation.statistics.observe_update(new, old)
            self._notify_compensating(
                UpdateEvent(relation_name, tid, dict(new), dict(old))
            )
            raise
        return dict(new)

    def delete(self, relation_name: str, tid: int) -> Dict[str, Any]:
        """Delete a tuple; fires a DeleteEvent; returns its final image."""
        with self._mutation_lock:
            return self._delete(relation_name, tid)

    def _delete(self, relation_name: str, tid: int) -> Dict[str, Any]:
        relation = self.relation(relation_name)
        txn = self._txn
        if txn is not None:
            sp = txn.savepoint()
            old = relation.delete(tid)
            txn._record(("delete", relation, relation_name, tid, old))
            try:
                self._notify(DeleteEvent(relation_name, tid, dict(old)))
            except AbortMutation:
                txn.rollback_to(sp)
                raise
            return dict(old)
        old = relation.delete(tid)
        try:
            self._notify(DeleteEvent(relation_name, tid, dict(old)))
        except AbortMutation:
            relation.restore(tid, old)
            self._notify_compensating(InsertEvent(relation_name, tid, dict(old)))
            raise
        return dict(old)

    def _notify_compensating(self, event: Event) -> None:
        """Deliver a rollback notification; vetoes are meaningless here."""
        try:
            self._notify(as_compensating(event))
        except AbortMutation:
            pass

    # -- convenience ------------------------------------------------------------

    def insert_many(
        self, relation_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[int]:
        """Insert several tuples; returns their tids.

        Fires one event per row (each row can be vetoed independently).
        For one batched notification — and one batched rule-matching
        pass — use :meth:`bulk_insert`.
        """
        return [self.insert(relation_name, row) for row in rows]

    def bulk_insert(
        self, relation_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[int]:
        """Insert a batch of tuples as **one** event; returns their tids.

        All rows are stored first, then a single
        :class:`~repro.db.events.BatchEvent` carrying one
        ``InsertEvent`` per row is delivered, letting the rule engine
        match the whole batch in one :meth:`PredicateIndex.match_batch`
        pass.  All-or-nothing: the batch runs in a
        :meth:`transaction`, so a validation error or a subscriber veto
        (:class:`AbortMutation`) rolls back the entire batch — plus any
        cascaded mutations rule actions made in response — and fires
        compensating events for the rollback.
        """
        relation = self.relation(relation_name)
        inserted: List[Tuple[int, Dict[str, Any]]] = []
        with self.transaction() as txn:
            for row in rows:
                tid, tup = relation.insert(row)
                txn._record(("insert", relation, relation_name, tid))
                inserted.append((tid, tup))
            if inserted:
                events = tuple(
                    InsertEvent(relation_name, tid, dict(tup))
                    for tid, tup in inserted
                )
                self._notify(BatchEvent(relation_name, events))
        return [tid for tid, _ in inserted]

    def bulk_update(
        self, relation_name: str, changes: Mapping[int, Mapping[str, Any]]
    ) -> Dict[int, Dict[str, Any]]:
        """Update a batch of tuples as **one** event; returns new images.

        ``changes`` maps tid -> attribute changes.  Like
        :meth:`bulk_insert`, the batch is applied first and announced
        with a single :class:`~repro.db.events.BatchEvent` (one
        ``UpdateEvent`` per tuple), all inside a :meth:`transaction`:
        a missing tuple, a validation failure, or a subscriber veto
        rolls the whole batch (and any rule-action cascades) back and
        announces the rollback with compensating events.
        """
        relation = self.relation(relation_name)
        applied: List[Tuple[int, Dict[str, Any], Dict[str, Any]]] = []
        with self.transaction() as txn:
            for tid, change in changes.items():
                old, new = relation.update(tid, change)
                txn._record(("update", relation, relation_name, tid, old, new))
                applied.append((tid, old, new))
            if applied:
                events = tuple(
                    UpdateEvent(relation_name, tid, dict(old), dict(new))
                    for tid, old, new in applied
                )
                self._notify(BatchEvent(relation_name, events))
        return {tid: dict(new) for tid, _, new in applied}

    def select(
        self,
        relation_name: str,
        condition: Optional[str] = None,
        functions: Optional[Mapping[str, Callable[[Any], bool]]] = None,
    ) -> List[Dict[str, Any]]:
        """Scan a relation, optionally filtered by a condition string.

        This is a convenience for examples and tests, not a query
        engine: the condition is compiled with
        :func:`repro.lang.compile_condition` and evaluated per tuple.
        """
        relation = self.relation(relation_name)
        if condition is None:
            return [dict(tup) for _, tup in relation.scan()]
        from ..lang import compile_condition

        compiled = compile_condition(relation_name, condition, functions)
        return [dict(tup) for _, tup in relation.scan() if compiled.matches(tup)]

    def count(self, relation_name: str) -> int:
        """Number of tuples currently in the relation."""
        return len(self.relation(relation_name))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({len(rel)})" for name, rel in self._relations.items()
        )
        return f"<Database {parts or '(empty)'}>"
