"""The main-memory database: catalog, mutations, and event delivery.

:class:`Database` is the substrate the rule system sits on: a catalog of
:class:`~repro.db.relation.Relation` objects plus a synchronous event
bus.  Every successful insert/update/delete produces an event delivered
to subscribers in registration order — the rule engine subscribes to
drive predicate matching, exactly the "inserted or deleted tuples enter
here" arrow at the top of the paper's Figure 1.

A subscriber may veto a mutation by raising
:class:`~repro.db.database.AbortMutation` (used by integrity rules):
the database rolls the mutation back and re-raises, so the caller sees
the mutation never happened.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import DatabaseError, SchemaError, UnknownRelationError
from .events import BatchEvent, DeleteEvent, Event, InsertEvent, UpdateEvent
from .relation import Relation
from .schema import AttributeSpec, Schema

__all__ = ["Database", "AbortMutation"]

#: Subscribers receive every per-tuple :class:`Event` — and, from the
#: bulk mutation APIs, a single :class:`BatchEvent` wrapping the batch.
Subscriber = Callable[[Any], None]


class AbortMutation(DatabaseError):
    """Raised by a subscriber (e.g. an integrity rule) to veto a mutation.

    The database undoes the mutation before propagating this exception,
    so state is as if the call never happened.
    """

    def __init__(self, reason: str = "mutation aborted by rule"):
        super().__init__(reason)
        self.reason = reason


class Database:
    """A catalog of main-memory relations with synchronous mutation events."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}
        self._subscribers: List[Subscriber] = []

    # -- catalog --------------------------------------------------------

    def create_relation(
        self,
        name: str,
        attributes: Iterable[AttributeSpec],
        track_statistics: bool = True,
    ) -> Relation:
        """Create and register a relation; returns it.

        ``attributes`` accepts the same specs as
        :class:`~repro.db.schema.Schema`: names, ``(name, Domain)``
        pairs, or :class:`~repro.db.schema.Attribute` objects.
        """
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        relation = Relation(Schema(name, attributes), track_statistics)
        self._relations[name] = relation
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove a relation and all its tuples from the catalog."""
        if name not in self._relations:
            raise UnknownRelationError(name)
        del self._relations[name]

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def relations(self) -> List[str]:
        """Names of all relations, in creation order."""
        return list(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    # -- event bus ---------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register an event callback; returns an unsubscribe function."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self, event: Event) -> None:
        for subscriber in list(self._subscribers):
            subscriber(event)

    # -- mutations ------------------------------------------------------------

    def insert(self, relation_name: str, values: Mapping[str, Any]) -> int:
        """Insert a tuple; fires an InsertEvent; returns the new tid.

        If a subscriber raises :class:`AbortMutation` the tuple is
        removed again and the exception propagates.
        """
        relation = self.relation(relation_name)
        tid, tup = relation.insert(values)
        try:
            self._notify(InsertEvent(relation_name, tid, dict(tup)))
        except AbortMutation:
            relation.delete(tid)
            raise
        return tid

    def update(
        self, relation_name: str, tid: int, changes: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Update a tuple; fires an UpdateEvent; returns the new image."""
        relation = self.relation(relation_name)
        old, new = relation.update(tid, changes)
        try:
            self._notify(UpdateEvent(relation_name, tid, dict(old), dict(new)))
        except AbortMutation:
            relation._tuples[tid] = old  # direct rollback, stats re-adjusted
            if relation.track_statistics:
                relation.statistics.observe_update(new, old)
            raise
        return dict(new)

    def delete(self, relation_name: str, tid: int) -> Dict[str, Any]:
        """Delete a tuple; fires a DeleteEvent; returns its final image."""
        relation = self.relation(relation_name)
        old = relation.delete(tid)
        try:
            self._notify(DeleteEvent(relation_name, tid, dict(old)))
        except AbortMutation:
            relation.restore(tid, old)
            raise
        return dict(old)

    # -- convenience ------------------------------------------------------------

    def insert_many(
        self, relation_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[int]:
        """Insert several tuples; returns their tids.

        Fires one event per row (each row can be vetoed independently).
        For one batched notification — and one batched rule-matching
        pass — use :meth:`bulk_insert`.
        """
        return [self.insert(relation_name, row) for row in rows]

    def bulk_insert(
        self, relation_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[int]:
        """Insert a batch of tuples as **one** event; returns their tids.

        All rows are stored first, then a single
        :class:`~repro.db.events.BatchEvent` carrying one
        ``InsertEvent`` per row is delivered, letting the rule engine
        match the whole batch in one :meth:`PredicateIndex.match_batch`
        pass.  All-or-nothing: a validation error or a subscriber veto
        (:class:`AbortMutation`) rolls back the entire batch.
        """
        relation = self.relation(relation_name)
        inserted: List[Tuple[int, Dict[str, Any]]] = []

        def rollback() -> None:
            for tid, _ in reversed(inserted):
                relation.delete(tid)

        try:
            for row in rows:
                inserted.append(relation.insert(row))
        except Exception:
            rollback()
            raise
        if inserted:
            events = tuple(
                InsertEvent(relation_name, tid, dict(tup)) for tid, tup in inserted
            )
            try:
                self._notify(BatchEvent(relation_name, events))
            except AbortMutation:
                rollback()
                raise
        return [tid for tid, _ in inserted]

    def bulk_update(
        self, relation_name: str, changes: Mapping[int, Mapping[str, Any]]
    ) -> Dict[int, Dict[str, Any]]:
        """Update a batch of tuples as **one** event; returns new images.

        ``changes`` maps tid -> attribute changes.  Like
        :meth:`bulk_insert`, the batch is applied first and announced
        with a single :class:`~repro.db.events.BatchEvent` (one
        ``UpdateEvent`` per tuple), and is rolled back wholesale if a
        tuple is missing, a change fails validation, or a subscriber
        vetoes the batch.
        """
        relation = self.relation(relation_name)
        applied: List[Tuple[int, Dict[str, Any], Dict[str, Any]]] = []

        def rollback() -> None:
            for tid, old, new in reversed(applied):
                relation._tuples[tid] = old
                if relation.track_statistics:
                    relation.statistics.observe_update(new, old)

        try:
            for tid, change in changes.items():
                old, new = relation.update(tid, change)
                applied.append((tid, old, new))
        except Exception:
            rollback()
            raise
        if applied:
            events = tuple(
                UpdateEvent(relation_name, tid, dict(old), dict(new))
                for tid, old, new in applied
            )
            try:
                self._notify(BatchEvent(relation_name, events))
            except AbortMutation:
                rollback()
                raise
        return {tid: dict(new) for tid, _, new in applied}

    def select(
        self,
        relation_name: str,
        condition: Optional[str] = None,
        functions: Optional[Mapping[str, Callable[[Any], bool]]] = None,
    ) -> List[Dict[str, Any]]:
        """Scan a relation, optionally filtered by a condition string.

        This is a convenience for examples and tests, not a query
        engine: the condition is compiled with
        :func:`repro.lang.compile_condition` and evaluated per tuple.
        """
        relation = self.relation(relation_name)
        if condition is None:
            return [dict(tup) for _, tup in relation.scan()]
        from ..lang import compile_condition

        compiled = compile_condition(relation_name, condition, functions)
        return [dict(tup) for _, tup in relation.scan() if compiled.matches(tup)]

    def count(self, relation_name: str) -> int:
        """Number of tuples currently in the relation."""
        return len(self.relation(relation_name))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({len(rel)})" for name, rel in self._relations.items()
        )
        return f"<Database {parts or '(empty)'}>"
