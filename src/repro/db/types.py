"""Attribute domains for the main-memory DBMS substrate.

A :class:`Domain` describes the legal values of an attribute: a
validation predicate plus optional bounds used by the statistics module
and the workload generators.  Domains are deliberately lightweight —
the paper's algorithm only needs attributes to come from *totally
ordered* domains with ``<``, ``=``, ``>`` defined.
"""

from __future__ import annotations

import numbers
from typing import Any, Callable, Optional

from ..errors import SchemaError

__all__ = [
    "Domain",
    "INTEGER",
    "FLOAT",
    "NUMBER",
    "STRING",
    "BOOLEAN",
    "ANY",
    "integer_range",
]


class Domain:
    """A named value domain with an optional membership check and bounds.

    Parameters
    ----------
    name:
        Display name (``"integer"``, ``"string"``...).
    check:
        Optional predicate; values failing it are rejected at insert
        time.  None accepts everything (except that None itself always
        denotes SQL-style NULL and bypasses the check).
    low, high:
        Optional inclusive bounds, used both for validation and as the
        default value range for statistics and workload generation.
    """

    __slots__ = ("name", "check", "low", "high")

    def __init__(
        self,
        name: str,
        check: Optional[Callable[[Any], bool]] = None,
        low: Any = None,
        high: Any = None,
    ):
        self.name = name
        self.check = check
        self.low = low
        self.high = high

    def validate(self, value: Any) -> None:
        """Raise :class:`~repro.errors.SchemaError` if *value* is illegal.

        None (NULL) is always accepted; nullability is not modelled.
        """
        if value is None:
            return
        if self.check is not None and not self.check(value):
            raise SchemaError(f"value {value!r} is not in domain {self.name}")
        if self.low is not None and value < self.low:
            raise SchemaError(
                f"value {value!r} below domain {self.name} minimum {self.low!r}"
            )
        if self.high is not None and value > self.high:
            raise SchemaError(
                f"value {value!r} above domain {self.name} maximum {self.high!r}"
            )

    def bounded(self) -> bool:
        """True if both bounds are set (useful for selectivity estimates)."""
        return self.low is not None and self.high is not None

    def __repr__(self) -> str:
        bounds = ""
        if self.low is not None or self.high is not None:
            bounds = f" [{self.low!r}..{self.high!r}]"
        return f"<Domain {self.name}{bounds}>"


def _is_integer(value: Any) -> bool:
    return isinstance(value, numbers.Integral) and not isinstance(value, bool)


def _is_float(value: Any) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


INTEGER = Domain("integer", _is_integer)
FLOAT = Domain("float", _is_float)
NUMBER = Domain("number", _is_float)
STRING = Domain("string", lambda v: isinstance(v, str))
BOOLEAN = Domain("boolean", lambda v: isinstance(v, bool))
ANY = Domain("any", None)


def integer_range(low: int, high: int) -> Domain:
    """An integer domain restricted to ``[low, high]`` inclusive."""
    if low > high:
        raise SchemaError(f"integer_range low {low!r} exceeds high {high!r}")
    return Domain(f"integer[{low}..{high}]", _is_integer, low, high)
