"""Relation schemas: attribute lists with domains.

Real relational applications — per the survey the paper cites — have
anywhere from one to over a hundred attributes, most commonly 5 to 25;
the workload generators in :mod:`repro.workloads` default to the
paper's assumption of 15 attributes per relation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SchemaError, TupleError, UnknownAttributeError
from .types import ANY, Domain

__all__ = ["Attribute", "Schema"]


class Attribute:
    """A named, typed attribute of a relation."""

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Domain = ANY):
        if not name or not isinstance(name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {name!r}")
        if not (name[0].isalpha() or name[0] == "_") or not all(
            c.isalnum() or c == "_" for c in name
        ):
            raise SchemaError(f"attribute name {name!r} is not a valid identifier")
        if not isinstance(domain, Domain):
            raise SchemaError(f"attribute domain must be a Domain, got {domain!r}")
        self.name = name
        self.domain = domain

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.domain.name})"


AttributeSpec = Union[str, Attribute, Tuple[str, Domain]]


class Schema:
    """An ordered set of attributes for one relation.

    Attribute specs may be bare names (domain ``ANY``), ``(name,
    Domain)`` pairs, or :class:`Attribute` instances::

        Schema("emp", ["name", ("age", INTEGER), ("salary", NUMBER), "dept"])
    """

    __slots__ = ("name", "attributes", "_by_name")

    def __init__(self, name: str, attributes: Iterable[AttributeSpec]):
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        attrs: List[Attribute] = []
        by_name: Dict[str, Attribute] = {}
        for spec in attributes:
            attr = self._coerce(spec)
            if attr.name in by_name:
                raise SchemaError(f"duplicate attribute {attr.name!r} in schema {name!r}")
            attrs.append(attr)
            by_name[attr.name] = attr
        if not attrs:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        self.name = name
        self.attributes = tuple(attrs)
        self._by_name = by_name

    @staticmethod
    def _coerce(spec: AttributeSpec) -> Attribute:
        if isinstance(spec, Attribute):
            return spec
        if isinstance(spec, str):
            return Attribute(spec)
        if isinstance(spec, tuple) and len(spec) == 2:
            return Attribute(spec[0], spec[1])
        raise SchemaError(f"cannot interpret attribute spec {spec!r}")

    # -- lookups ----------------------------------------------------------

    @property
    def attribute_names(self) -> List[str]:
        """Attribute names in declaration order."""
        return [attr.name for attr in self.attributes]

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownAttributeError(
                f"relation {self.name!r} has no attribute {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.attributes)

    # -- tuple validation --------------------------------------------------

    def validate_tuple(self, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Check *values* against the schema and return a complete dict.

        Unknown attributes are rejected; missing attributes become None
        (NULL).  Domain checks run on every non-NULL value.
        """
        if not isinstance(values, Mapping):
            raise TupleError(f"tuple must be a mapping, got {type(values).__name__}")
        for key in values:
            if key not in self._by_name:
                raise TupleError(
                    f"relation {self.name!r} has no attribute {key!r} "
                    f"(known: {', '.join(self.attribute_names)})"
                )
        normalized: Dict[str, Any] = {}
        for attr in self.attributes:
            value = values.get(attr.name)
            try:
                attr.domain.validate(value)
            except SchemaError as exc:
                raise TupleError(f"attribute {attr.name!r}: {exc}") from None
            normalized[attr.name] = value
        return normalized

    def validate_update(self, changes: Mapping[str, Any]) -> Dict[str, Any]:
        """Check a partial update dict; returns a plain copy."""
        if not isinstance(changes, Mapping):
            raise TupleError(f"update must be a mapping, got {type(changes).__name__}")
        validated: Dict[str, Any] = {}
        for key, value in changes.items():
            attr = self.attribute(key)
            try:
                attr.domain.validate(value)
            except SchemaError as exc:
                raise TupleError(f"attribute {key!r}: {exc}") from None
            validated[key] = value
        return validated

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.domain.name}" for a in self.attributes)
        return f"Schema({self.name!r}: {cols})"
