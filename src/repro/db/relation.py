"""A main-memory relation: tuple storage with statistics and scans.

Tuples are plain dicts keyed by attribute name, stored under
monotonically increasing tuple identifiers (tids).  The relation keeps
its :class:`~repro.db.statistics.RelationStatistics` up to date on
every mutation, and offers simple scan/lookup helpers used by the
examples, the physical-locking baseline, and the join layer.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import TupleError
from .schema import Schema
from .statistics import RelationStatistics

__all__ = ["Relation"]


class Relation:
    """Tuple storage for one schema.

    Not usually constructed directly — use
    :meth:`repro.db.Database.create_relation`, which also wires up event
    delivery to the rule engine.
    """

    __slots__ = ("schema", "_tuples", "_tid_counter", "statistics", "track_statistics")

    def __init__(self, schema: Schema, track_statistics: bool = True):
        self.schema = schema
        self._tuples: Dict[int, Dict[str, Any]] = {}
        self._tid_counter = 1
        self.statistics = RelationStatistics()
        self.track_statistics = track_statistics

    @property
    def name(self) -> str:
        """The relation's name (from its schema)."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tid: int) -> bool:
        return tid in self._tuples

    # -- mutations ---------------------------------------------------------

    @property
    def next_tid(self) -> int:
        """The tid the next insert will receive."""
        return self._tid_counter

    def advance_tid_counter(self, floor: int) -> None:
        """Ensure future tids start at *floor* or later.

        Used when reloading persisted state: tuples restored under
        their original tids must not collide with tids handed out
        afterwards.  Never moves the counter backwards.
        """
        if floor > self._tid_counter:
            self._tid_counter = floor

    def insert(self, values: Mapping[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Validate and store a tuple; returns ``(tid, stored_tuple)``."""
        tup = self.schema.validate_tuple(values)
        tid = self._tid_counter
        self._tid_counter = tid + 1
        self._tuples[tid] = tup
        if self.track_statistics:
            self.statistics.observe_insert(tup)
        return tid, tup

    def update(
        self, tid: int, changes: Mapping[str, Any]
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Apply *changes* to the tuple at *tid*; returns ``(old, new)``."""
        old = self._require(tid)
        validated = self.schema.validate_update(changes)
        new = dict(old)
        new.update(validated)
        self._tuples[tid] = new
        if self.track_statistics:
            self.statistics.observe_update(old, new)
        return old, new

    def delete(self, tid: int) -> Dict[str, Any]:
        """Remove and return the tuple at *tid*."""
        old = self._require(tid)
        del self._tuples[tid]
        if self.track_statistics:
            self.statistics.observe_delete(old)
        return old

    def restore(self, tid: int, tup: Dict[str, Any]) -> None:
        """Re-install a tuple under its original tid (rollback, replay)."""
        if tid in self._tuples:
            raise TupleError(f"tid {tid} already present in {self.name!r}")
        self.advance_tid_counter(tid + 1)
        self._tuples[tid] = dict(tup)
        if self.track_statistics:
            self.statistics.observe_insert(tup)

    def _require(self, tid: int) -> Dict[str, Any]:
        try:
            return self._tuples[tid]
        except KeyError:
            raise TupleError(f"relation {self.name!r} has no tuple {tid}") from None

    # -- reads ---------------------------------------------------------------

    def get(self, tid: int) -> Dict[str, Any]:
        """Return (a copy of) the tuple stored at *tid*."""
        return dict(self._require(tid))

    def scan(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Iterate ``(tid, tuple)`` pairs; tuples are live references.

        Callers must not mutate the yielded dicts; use :meth:`update`.
        """
        return iter(self._tuples.items())

    def select(
        self, predicate: Callable[[Mapping[str, Any]], bool]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """All ``(tid, tuple)`` pairs satisfying *predicate* (full scan)."""
        return [(tid, dict(tup)) for tid, tup in self._tuples.items() if predicate(tup)]

    def lookup(self, attribute: str, value: Any) -> List[int]:
        """Tids of tuples whose *attribute* equals *value* (full scan)."""
        self.schema.attribute(attribute)  # validates the name
        return [
            tid for tid, tup in self._tuples.items() if tup.get(attribute) == value
        ]

    def __repr__(self) -> str:
        return f"<Relation {self.name} ({len(self)} tuples)>"
