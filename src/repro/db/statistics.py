"""Incrementally maintained relation statistics for selectivity estimation.

The paper places, for each conjunctive predicate, its *most selective*
indexable clause into the IBS-tree, with "selectivity estimates ...
obtained from the query optimizer".  This module plays that optimizer
role: it tracks per-attribute value distributions (count, min/max,
distinct values, an equi-width histogram) as tuples are inserted and
deleted, and estimates the fraction of tuples matched by a clause.

When no data has been observed the estimator falls back to the classic
System R magic numbers [S*79], so clause ranking works even on empty
databases (the common case when rules are created before data loads).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional

from ..core.intervals import Interval, is_infinite
from ..predicates.clauses import Clause, EqualityClause, FunctionClause, IntervalClause

__all__ = [
    "AttributeStatistics",
    "AttributeUsage",
    "EntryClauseFeedback",
    "IndexWorkloadEvidence",
    "RelationStatistics",
    "DEFAULT_SELECTIVITIES",
]

#: System R style fallback selectivities, by clause shape.
DEFAULT_SELECTIVITIES = {
    "equality": 1.0 / 10.0,
    "bounded_interval": 1.0 / 4.0,
    "half_open_interval": 1.0 / 3.0,
    "unbounded": 1.0,
    "function": 1.0,
}


class AttributeStatistics:
    """Value distribution of a single attribute.

    Maintains exact value counts (a Counter) while the number of
    distinct values stays small, degrading to min/max plus a distinct
    estimate beyond :attr:`max_tracked_values` so memory stays bounded
    on high-cardinality attributes.
    """

    __slots__ = (
        "count",
        "null_count",
        "min_value",
        "max_value",
        "value_counts",
        "distinct_overflow",
        "max_tracked_values",
    )

    def __init__(self, max_tracked_values: int = 1024):
        self.count = 0
        self.null_count = 0
        self.min_value: Any = None
        self.max_value: Any = None
        self.value_counts: Optional[Counter] = Counter()
        self.distinct_overflow = 0
        self.max_tracked_values = max_tracked_values

    # -- maintenance -----------------------------------------------------

    def observe_insert(self, value: Any) -> None:
        """Record one inserted value."""
        self.count += 1
        if value is None:
            self.null_count += 1
            return
        if self.min_value is None or _safe_lt(value, self.min_value):
            self.min_value = value
        if self.max_value is None or _safe_lt(self.max_value, value):
            self.max_value = value
        if self.value_counts is not None:
            self.value_counts[value] += 1
            if len(self.value_counts) > self.max_tracked_values:
                self.distinct_overflow = len(self.value_counts)
                self.value_counts = None

    def observe_delete(self, value: Any) -> None:
        """Record one deleted value.

        Min/max are not tightened on delete (standard practice: they
        remain conservative until a statistics rebuild).
        """
        self.count = max(0, self.count - 1)
        if value is None:
            self.null_count = max(0, self.null_count - 1)
            return
        if self.value_counts is not None:
            remaining = self.value_counts.get(value, 0) - 1
            if remaining > 0:
                self.value_counts[value] = remaining
            elif value in self.value_counts:
                del self.value_counts[value]

    # -- derived figures ---------------------------------------------------

    @property
    def non_null_count(self) -> int:
        return self.count - self.null_count

    @property
    def distinct(self) -> int:
        """(Estimated) number of distinct non-null values."""
        if self.value_counts is not None:
            return len(self.value_counts)
        return max(self.distinct_overflow, 1)

    def equality_selectivity(self, value: Any) -> float:
        """Estimated fraction of tuples with attribute equal to *value*."""
        if self.non_null_count == 0:
            return DEFAULT_SELECTIVITIES["equality"]
        if self.value_counts is not None:
            return self.value_counts.get(value, 0) / self.non_null_count
        return 1.0 / self.distinct

    def interval_selectivity(self, interval: Interval) -> float:
        """Estimated fraction of tuples falling inside *interval*.

        Uses exact counts when available, otherwise a uniform
        interpolation between the observed min and max.
        """
        if self.non_null_count == 0:
            return _default_for(interval)
        if self.value_counts is not None:
            matched = sum(
                count
                for value, count in self.value_counts.items()
                if interval.contains(value)
            )
            return matched / self.non_null_count
        return self._uniform_fraction(interval)

    def _uniform_fraction(self, interval: Interval) -> float:
        lo, hi = self.min_value, self.max_value
        try:
            span = float(hi - lo)
        except TypeError:
            return _default_for(interval)
        if span <= 0:
            return 1.0 if interval.contains(lo) else 0.0
        low = lo if is_infinite(interval.low) else max(lo, interval.low)
        high = hi if is_infinite(interval.high) else min(hi, interval.high)
        try:
            covered = float(high - low)
        except TypeError:
            return _default_for(interval)
        return min(1.0, max(0.0, covered / span))


class RelationStatistics:
    """Per-attribute statistics for one relation, plus a row count."""

    __slots__ = ("row_count", "_attributes")

    def __init__(self) -> None:
        self.row_count = 0
        self._attributes: Dict[str, AttributeStatistics] = {}

    def attribute(self, name: str) -> AttributeStatistics:
        """Statistics for *name*, creating an empty record on first use."""
        stats = self._attributes.get(name)
        if stats is None:
            stats = self._attributes[name] = AttributeStatistics()
        return stats

    def observe_insert(self, tup: Mapping[str, Any]) -> None:
        self.row_count += 1
        for name, value in tup.items():
            self.attribute(name).observe_insert(value)

    def observe_delete(self, tup: Mapping[str, Any]) -> None:
        self.row_count = max(0, self.row_count - 1)
        for name, value in tup.items():
            self.attribute(name).observe_delete(value)

    def observe_update(
        self, old: Mapping[str, Any], new: Mapping[str, Any]
    ) -> None:
        for name in new:
            if old.get(name) != new.get(name):
                stats = self.attribute(name)
                stats.observe_delete(old.get(name))
                stats.observe_insert(new.get(name))

    # -- clause selectivity -------------------------------------------------

    def clause_selectivity(self, clause: Clause) -> float:
        """Estimated fraction of tuples matched by *clause* (in [0, 1])."""
        if isinstance(clause, FunctionClause):
            return DEFAULT_SELECTIVITIES["function"]
        if isinstance(clause, EqualityClause):
            stats = self._attributes.get(clause.attribute)
            if stats is None or stats.non_null_count == 0:
                return DEFAULT_SELECTIVITIES["equality"]
            return stats.equality_selectivity(clause.value)
        if isinstance(clause, IntervalClause):
            stats = self._attributes.get(clause.attribute)
            if stats is None or stats.non_null_count == 0:
                return _default_for(clause.interval)
            return stats.interval_selectivity(clause.interval)
        return 1.0


class EntryClauseFeedback:
    """Observed entry-clause performance, fed back from the matcher.

    The a-priori estimators above answer "how selective *should* this
    clause be"; this class answers "how selective did the chosen entry
    clause *turn out* to be".  The matcher calls
    :meth:`observe_tuples` once per matched tuple (or once per batch
    with the batch size) and :meth:`observe_candidates` with the
    identifiers its index probes admitted as candidates.  The observed
    selectivity of a predicate's entry clause is then

        ``candidate hits for the predicate / tuples seen``

    — exactly the fraction the optimizer tried to minimise when it
    picked the clause.  :class:`~repro.core.predicate_index.PredicateIndex`
    compares this against the estimates of the predicate's *other*
    indexable clauses and migrates the entry clause when the estimate
    says another attribute tree would admit decisively fewer
    candidates.

    Counters are windowed: :meth:`reset` zeroes a relation after a
    retune pass so each migration decision rests on fresh evidence.
    No observation is meaningful before :attr:`min_samples` tuples.
    """

    __slots__ = ("min_samples", "_tuples_seen", "_candidate_hits")

    def __init__(self, min_samples: int = 256):
        self.min_samples = min_samples
        #: relation -> tuples matched against it this window
        self._tuples_seen: Dict[str, int] = {}
        #: predicate ident -> times it was admitted as a candidate
        self._candidate_hits: Dict[Hashable, int] = {}

    def observe_tuples(self, relation: str, count: int = 1) -> None:
        """Record *count* tuples matched against *relation*."""
        self._tuples_seen[relation] = self._tuples_seen.get(relation, 0) + count

    def observe_candidates(
        self, idents: Iterable[Hashable], count: int = 1
    ) -> None:
        """Record each of *idents* surviving an index probe *count* times."""
        hits = self._candidate_hits
        for ident in idents:
            hits[ident] = hits.get(ident, 0) + count

    def tuples_seen(self, relation: str) -> int:
        return self._tuples_seen.get(relation, 0)

    def candidate_hits(self, ident: Hashable) -> int:
        return self._candidate_hits.get(ident, 0)

    def observed_selectivity(
        self, relation: str, ident: Hashable
    ) -> Optional[float]:
        """Observed candidate fraction for *ident*, or None if too few samples."""
        seen = self._tuples_seen.get(relation, 0)
        if seen < self.min_samples:
            return None
        return min(1.0, self._candidate_hits.get(ident, 0) / seen)

    def reset(
        self, relation: Optional[str] = None, idents: Iterable[Hashable] = ()
    ) -> None:
        """Zero one relation's window (and its predicates), or everything."""
        if relation is None:
            self._tuples_seen.clear()
            self._candidate_hits.clear()
            return
        self._tuples_seen.pop(relation, None)
        for ident in idents:
            self._candidate_hits.pop(ident, None)

    def as_dict(self) -> Dict[str, Dict]:
        """Snapshot of both counter families (for tests and debugging)."""
        return {
            "tuples_seen": dict(self._tuples_seen),
            "candidate_hits": dict(self._candidate_hits),
        }


class AttributeUsage:
    """Windowed logical operation counts for one (relation, attribute).

    The unit is the *logical* operation — one tree stab, one interval
    insert, one interval delete — deliberately matching the terms the
    backend cost models price (``stab_ms(n)`` / ``insert_ms(n)``), so
    pricing a backend against the observed workload is a dot product.
    """

    __slots__ = ("stabs", "inserts", "deletes")

    def __init__(self) -> None:
        self.stabs = 0
        self.inserts = 0
        self.deletes = 0

    @property
    def total(self) -> int:
        return self.stabs + self.inserts + self.deletes

    def as_dict(self) -> Dict[str, int]:
        return {
            "stabs": self.stabs,
            "inserts": self.inserts,
            "deletes": self.deletes,
        }


class IndexWorkloadEvidence:
    """Observed per-(relation, attribute) index workload, fed from the matcher.

    Where :class:`EntryClauseFeedback` answers "which clause should
    anchor this predicate", this class answers "which *data structure*
    should hold this attribute's intervals".  The match pipeline reports
    how many stabs each attribute tree absorbed (via the
    ``on_attribute_stabs`` observer hook) and the facades report
    interval inserts/deletes as predicates come and go; the
    auto-selector then prices every candidate backend against the
    recorded stab/insert/delete mix.

    Counters are windowed exactly like the entry-clause feedback:
    :meth:`reset_attribute` zeroes one attribute after a migration
    decision so the next decision rests on fresh evidence, and no
    decision is meaningful before :attr:`min_ops` operations.
    """

    __slots__ = ("min_ops", "_usage")

    def __init__(self, min_ops: int = 512):
        self.min_ops = min_ops
        #: relation -> attribute -> windowed counters
        self._usage: Dict[str, Dict[str, AttributeUsage]] = {}

    def _slot(self, relation: str, attribute: str) -> AttributeUsage:
        per_attr = self._usage.get(relation)
        if per_attr is None:
            per_attr = self._usage[relation] = {}
        usage = per_attr.get(attribute)
        if usage is None:
            usage = per_attr[attribute] = AttributeUsage()
        return usage

    def observe_stabs(self, relation: str, counts: Mapping[str, int]) -> None:
        """Record stab counts per attribute (one pipeline call's worth)."""
        for attribute, count in counts.items():
            if count:
                self._slot(relation, attribute).stabs += count

    def observe_insert(
        self, relation: str, attribute: str, count: int = 1
    ) -> None:
        self._slot(relation, attribute).inserts += count

    def observe_delete(
        self, relation: str, attribute: str, count: int = 1
    ) -> None:
        self._slot(relation, attribute).deletes += count

    def usage(self, relation: str, attribute: str) -> AttributeUsage:
        """Current window for one attribute (zeros if never observed)."""
        per_attr = self._usage.get(relation)
        if per_attr is not None:
            usage = per_attr.get(attribute)
            if usage is not None:
                return usage
        return AttributeUsage()

    def total_ops(self, relation: str, attribute: str) -> int:
        return self.usage(relation, attribute).total

    def attributes(self, relation: str) -> Iterable[str]:
        """Attributes with any recorded evidence for *relation*."""
        return tuple(self._usage.get(relation, ()))

    def relations(self) -> Iterable[str]:
        return tuple(self._usage)

    def reset(self, relation: Optional[str] = None) -> None:
        """Zero one relation's window, or everything."""
        if relation is None:
            self._usage.clear()
        else:
            self._usage.pop(relation, None)

    def reset_attribute(self, relation: str, attribute: str) -> None:
        per_attr = self._usage.get(relation)
        if per_attr is not None:
            per_attr.pop(attribute, None)

    def as_dict(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Nested snapshot (for tests, ``tuning_report`` and debugging)."""
        return {
            relation: {
                attribute: usage.as_dict()
                for attribute, usage in per_attr.items()
            }
            for relation, per_attr in self._usage.items()
        }


def _default_for(interval: Interval) -> float:
    """System R fallback for an interval of the given shape."""
    if interval.is_point:
        return DEFAULT_SELECTIVITIES["equality"]
    if interval.is_low_unbounded and interval.is_high_unbounded:
        return DEFAULT_SELECTIVITIES["unbounded"]
    if interval.is_unbounded:
        return DEFAULT_SELECTIVITIES["half_open_interval"]
    return DEFAULT_SELECTIVITIES["bounded_interval"]


def _safe_lt(a: Any, b: Any) -> bool:
    """Comparison that tolerates cross-type values (treats them as equal)."""
    try:
        return a < b
    except TypeError:
        return False
