"""Main-memory relational database substrate.

The rule system (and the paper's Figure 1 index) sits on this small
DBMS: schemas with typed attribute domains, tuple storage with
incremental statistics, and a synchronous mutation-event bus.
"""

from .database import AbortMutation, Database, Transaction
from .events import BatchEvent, DeleteEvent, Event, InsertEvent, UpdateEvent
from .persistence import (
    OperationJournal,
    database_from_dict,
    database_to_dict,
    load_database,
    read_journal,
    recover_database,
    replay_journal,
    save_database,
)
from .relation import Relation
from .schema import Attribute, Schema
from .statistics import AttributeStatistics, EntryClauseFeedback, RelationStatistics
from .types import ANY, BOOLEAN, FLOAT, INTEGER, NUMBER, STRING, Domain, integer_range

__all__ = [
    "Database",
    "AbortMutation",
    "Transaction",
    "Relation",
    "Schema",
    "Attribute",
    "Domain",
    "INTEGER",
    "FLOAT",
    "NUMBER",
    "STRING",
    "BOOLEAN",
    "ANY",
    "integer_range",
    "Event",
    "InsertEvent",
    "UpdateEvent",
    "DeleteEvent",
    "BatchEvent",
    "RelationStatistics",
    "AttributeStatistics",
    "EntryClauseFeedback",
    "save_database",
    "load_database",
    "database_to_dict",
    "database_from_dict",
    "OperationJournal",
    "read_journal",
    "replay_journal",
    "recover_database",
]
