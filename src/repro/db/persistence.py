"""Save and load databases as JSON, crash-safely.

Rule systems hold their *rules* in code, but the data they monitor is
ordinary relational content; this module persists that content so
examples and experiments can checkpoint and reload state::

    from repro.db import Database, save_database, load_database

    save_database(db, "snapshot.json")
    db2 = load_database("snapshot.json")

Format: one JSON object with a ``relations`` list; each relation
carries its schema (attribute names + domain descriptors) and its
tuples in insertion order.  Built-in domains round-trip by name;
bounded integer domains keep their bounds; custom check functions
cannot be serialised and degrade to ``any`` (a warning is attached to
the loaded relation's schema via the domain name).

Version 2 snapshots carry a SHA-256 ``checksum`` over the payload and
preserve tuple identifiers and per-relation tid counters, so a reloaded
database continues numbering where the saved one left off and a journal
(below) can be replayed against it.  A snapshot that is torn
(truncated, not valid JSON) or whose checksum does not match raises
:class:`~repro.errors.CorruptSnapshotError` rather than yielding
garbage.  Version 1 snapshots (no checksum, no tids) still load.

Saving to a path is **atomic**: the snapshot is written to a temporary
file in the same directory, flushed and fsynced, then moved over the
target with :func:`os.replace` — a crash mid-save leaves the previous
snapshot untouched.

:class:`OperationJournal` provides the second half of crash safety: an
append-only log of mutations (one checksummed JSON line per operation)
written *between* snapshots.  :func:`recover_database` loads the last
snapshot and replays the journal to the last consistent state; a torn
final line — the signature of a crash mid-append — is tolerated and
ignored, while corruption anywhere earlier raises
:class:`~repro.errors.CorruptSnapshotError`.

Values must be JSON-representable (int, float, str, bool, None);
anything else raises :class:`~repro.errors.DatabaseError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zlib
from typing import Any, Callable, Dict, IO, List, Optional, Union

from ..errors import CorruptSnapshotError, DatabaseError
from ..testing.faults import fault_point
from .database import Database
from .events import BatchEvent, DeleteEvent, InsertEvent, UpdateEvent
from .schema import Attribute
from .types import ANY, BOOLEAN, Domain, FLOAT, INTEGER, NUMBER, STRING, integer_range

__all__ = [
    "save_database",
    "load_database",
    "database_to_dict",
    "database_from_dict",
    "OperationJournal",
    "crc_line",
    "read_journal",
    "replay_journal",
    "recover_database",
    "write_checksummed_lines",
    "write_json_atomic",
]

FORMAT_VERSION = 2

#: Snapshot versions this build can read.
_READABLE_VERSIONS = (1, 2)

_BUILTIN_DOMAINS: Dict[str, Domain] = {
    "integer": INTEGER,
    "float": FLOAT,
    "number": NUMBER,
    "string": STRING,
    "boolean": BOOLEAN,
    "any": ANY,
}

_JSON_SAFE = (int, float, str, bool, type(None))


def _domain_descriptor(domain: Domain) -> Dict[str, Any]:
    if domain.name in _BUILTIN_DOMAINS:
        return {"kind": domain.name}
    if domain.name.startswith("integer[") and domain.low is not None:
        return {"kind": "integer_range", "low": domain.low, "high": domain.high}
    # custom domain: not serialisable; degrade explicitly
    return {"kind": "any", "original": domain.name}


def _domain_from_descriptor(descriptor: Dict[str, Any]) -> Domain:
    kind = descriptor.get("kind", "any")
    if kind == "integer_range":
        return integer_range(descriptor["low"], descriptor["high"])
    try:
        return _BUILTIN_DOMAINS[kind]
    except KeyError:
        raise DatabaseError(f"unknown domain kind {kind!r} in snapshot") from None


def _payload_checksum(version: int, relations: List[Dict[str, Any]]) -> str:
    """SHA-256 over the canonical JSON encoding of the snapshot payload."""
    blob = json.dumps(
        {"version": version, "relations": relations},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def database_to_dict(db: Database) -> Dict[str, Any]:
    """Serialise *db* (schemas + tuples + tid state) into a JSON-safe dict."""
    relations: List[Dict[str, Any]] = []
    for name in db.relations():
        relation = db.relation(name)
        schema = relation.schema
        for _, tup in relation.scan():
            for attr, value in tup.items():
                if not isinstance(value, _JSON_SAFE):
                    raise DatabaseError(
                        f"cannot serialise {name}.{attr} value {value!r} "
                        f"of type {type(value).__name__}"
                    )
        relations.append(
            {
                "name": name,
                "attributes": [
                    {"name": attr.name, "domain": _domain_descriptor(attr.domain)}
                    for attr in schema.attributes
                ],
                "tuples": [[tid, dict(tup)] for tid, tup in relation.scan()],
                "next_tid": relation.next_tid,
            }
        )
    return {
        "format": "repro-database",
        "version": FORMAT_VERSION,
        "checksum": _payload_checksum(FORMAT_VERSION, relations),
        "relations": relations,
    }


def database_from_dict(data: Dict[str, Any]) -> Database:
    """Rebuild a database from :func:`database_to_dict` output.

    Verifies the checksum of version-2 snapshots before touching any
    data; a mismatch (or a missing checksum) raises
    :class:`~repro.errors.CorruptSnapshotError`.
    """
    if not isinstance(data, dict) or data.get("format") != "repro-database":
        raise DatabaseError("not a repro database snapshot")
    version = data.get("version")
    if version not in _READABLE_VERSIONS:
        raise DatabaseError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads versions {_READABLE_VERSIONS})"
        )
    relations = data.get("relations", [])
    if version >= 2:
        recorded = data.get("checksum")
        if not recorded:
            raise CorruptSnapshotError(
                "snapshot has no checksum (version 2 requires one)"
            )
        actual = _payload_checksum(version, relations)
        if actual != recorded:
            raise CorruptSnapshotError(
                f"snapshot checksum mismatch: recorded {recorded[:12]}..., "
                f"computed {actual[:12]}... — the file is corrupt or was "
                f"modified outside save_database"
            )
    db = Database()
    try:
        for relation_data in relations:
            attributes = [
                Attribute(spec["name"], _domain_from_descriptor(spec.get("domain", {})))
                for spec in relation_data["attributes"]
            ]
            name = relation_data["name"]
            relation = db.create_relation(name, attributes)
            if version == 1:
                for tup in relation_data.get("tuples", []):
                    db.insert(name, tup)
            else:
                for tid, tup in relation_data.get("tuples", []):
                    relation.restore(int(tid), relation.schema.validate_tuple(tup))
                relation.advance_tid_counter(int(relation_data.get("next_tid", 1)))
    except DatabaseError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptSnapshotError(
            f"snapshot structure is malformed: {exc}"
        ) from exc
    return db


def save_database(db: Database, target: Union[str, os.PathLike, IO[str]]) -> None:
    """Write *db* as JSON to a path or open text file.

    Path targets are written atomically: the payload goes to a
    temporary file in the destination directory, is flushed and
    fsynced, then renamed over the target with :func:`os.replace`.  A
    crash (or injected fault) at any point before the rename leaves an
    existing snapshot at *target* untouched.
    """
    data = database_to_dict(db)
    if hasattr(target, "write"):
        json.dump(data, target, indent=1)
        return
    payload = json.dumps(data, indent=1)
    target = os.fspath(target)
    directory = os.path.dirname(target) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            # two writes with a fault point between them: an injected
            # crash leaves a *torn* temp file, exactly what a real kill
            # mid-write produces — and never touches the target
            mid = len(payload) // 2
            handle.write(payload[:mid])
            fault_point("persist.write")
            handle.write(payload[mid:])
            handle.flush()
            fault_point("persist.fsync")
            os.fsync(handle.fileno())
        fault_point("persist.replace")
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_database(source: Union[str, os.PathLike, IO[str]]) -> Database:
    """Read a database from a JSON path or open text file.

    A file that cannot be decoded at all — empty, truncated, torn by a
    crash mid-write — raises
    :class:`~repro.errors.CorruptSnapshotError` (never a bare JSON
    error, never silently-wrong data).
    """
    try:
        if hasattr(source, "read"):
            data = json.load(source)
        else:
            with open(source, "r", encoding="utf-8") as handle:
                data = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptSnapshotError(
            f"snapshot is not decodable (torn or truncated write?): {exc}"
        ) from exc
    return database_from_dict(data)


# ----------------------------------------------------------------------
# shared crash-safe encoding helpers
# ----------------------------------------------------------------------
#
# The CRC-tagged line format and the atomic temp+fsync+replace dance are
# used by three persistence surfaces — the database journal below, the
# disk tier's checkpoint journal, and its per-relation predicate files
# (repro.disk.checkpoint) — so they live here as the single encoding of
# record.  read_journal (further down) is the matching generic reader.


def crc_line(record: Dict[str, Any]) -> str:
    """One record as a CRC-32-tagged JSON line (the journal line format)."""
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(line.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {line}\n"


def write_checksummed_lines(
    path: Union[str, os.PathLike],
    records: List[Dict[str, Any]],
    fault_site: Optional[str] = None,
) -> None:
    """Atomically write *records* as CRC-tagged lines readable by
    :func:`read_journal`.

    Same durability discipline as :func:`save_database`: temp file in
    the target directory, flush, fsync, rename.  When *fault_site* is
    given, a fault point fires halfway through the payload so crash
    drills produce a genuinely torn temp file.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            mid = len(records) // 2
            for record in records[:mid]:
                handle.write(crc_line(record))
            if fault_site is not None:
                fault_point(fault_site)
            for record in records[mid:]:
                handle.write(crc_line(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_json_atomic(
    path: Union[str, os.PathLike],
    data: Dict[str, Any],
    fault_site: Optional[str] = None,
) -> None:
    """Atomically write *data* as indented JSON (manifest discipline)."""
    payload = json.dumps(data, indent=1, sort_keys=True)
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            mid = len(payload) // 2
            handle.write(payload[:mid])
            if fault_site is not None:
                fault_point(fault_site)
            handle.write(payload[mid:])
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# operation journal: append-only log between snapshots
# ----------------------------------------------------------------------


class OperationJournal:
    """An append-only, per-line-checksummed log of database mutations.

    Attach to a database with :meth:`attach`; every subsequent
    insert/update/delete — including each member of a bulk batch and
    the compensating operations of a transaction rollback — is appended
    as one JSON line tagged with its CRC-32::

        a1b2c3d4 {"op": "insert", "relation": "emp", "tid": 7, ...}

    Lines are flushed to the OS on every append (with an fsync), so the
    journal trails the in-memory state by at most the operation being
    written when a crash hits.  :func:`read_journal` tolerates exactly
    that: a torn **final** line is skipped, while a bad line with valid
    entries after it means real corruption and raises
    :class:`~repro.errors.CorruptSnapshotError`.

    Typical checkpoint loop::

        journal = OperationJournal(path + ".journal")
        detach = journal.attach(db)
        ...mutations...
        save_database(db, path)     # checkpoint
        journal.truncate()          # journal restarts from the snapshot
        ...crash...
        db = recover_database(path, path + ".journal")
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        self._handle: Optional[IO[str]] = None
        self._detach: Optional[Callable[[], None]] = None

    # -- writing --------------------------------------------------------

    def _ensure_open(self) -> IO[str]:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, op: Dict[str, Any]) -> None:
        """Write one operation record durably."""
        handle = self._ensure_open()
        handle.write(crc_line(op))
        handle.flush()
        # the record is in the OS buffer; a fault here models an fsync
        # failure *after* the data was written, so the journal never
        # loses an op the database applied
        fault_point("journal.append")
        os.fsync(handle.fileno())

    def truncate(self) -> None:
        """Discard all journaled operations (call right after a snapshot)."""
        self.close_file()
        with open(self.path, "w", encoding="utf-8"):
            pass

    def close_file(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    # -- database wiring ------------------------------------------------

    def attach(self, db: Database) -> Callable[[], None]:
        """Subscribe to *db*, journaling every mutation; returns a detach."""
        if self._detach is not None:
            raise DatabaseError("journal is already attached to a database")

        def on_event(event: Any) -> None:
            if isinstance(event, BatchEvent):
                for sub in event:
                    self.append(self._op_of(sub))
                return
            self.append(self._op_of(event))

        unsubscribe = db.subscribe(on_event)

        def detach() -> None:
            unsubscribe()
            self.close_file()
            self._detach = None

        self._detach = detach
        return detach

    def detach(self) -> None:
        """Stop journaling and close the file (no-op if not attached)."""
        if self._detach is not None:
            self._detach()

    @staticmethod
    def _op_of(event: Any) -> Dict[str, Any]:
        kind = event.kind
        if kind == "insert":
            return {
                "op": "insert",
                "relation": event.relation,
                "tid": event.tid,
                "values": event.new,
            }
        if kind == "update":
            return {
                "op": "update",
                "relation": event.relation,
                "tid": event.tid,
                "values": event.new,
            }
        if kind == "delete":
            return {"op": "delete", "relation": event.relation, "tid": event.tid}
        raise DatabaseError(f"cannot journal event kind {kind!r}")

    def __enter__(self) -> "OperationJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()
        self.close_file()

    def __repr__(self) -> str:
        return f"<OperationJournal {self.path!r}>"


def read_journal(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Parse a journal file into its operation records.

    A torn final line (bad CRC, truncated JSON, missing newline) is
    dropped — that is the expected wreckage of a crash mid-append.  A
    bad line *followed by valid ones* cannot be explained by a torn
    tail and raises :class:`~repro.errors.CorruptSnapshotError`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
    except FileNotFoundError:
        return []
    ops: List[Dict[str, Any]] = []
    bad_at: Optional[int] = None
    for number, raw in enumerate(raw_lines, start=1):
        if not raw.strip():
            continue
        record: Optional[Dict[str, Any]] = None
        parts = raw.split(" ", 1)
        if len(parts) == 2:
            tag, body = parts
            try:
                expected = int(tag, 16)
            except ValueError:
                expected = -1
            if expected == zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF:
                try:
                    decoded = json.loads(body)
                except json.JSONDecodeError:
                    decoded = None
                if isinstance(decoded, dict):
                    record = decoded
        if record is None:
            bad_at = number
            continue
        if bad_at is not None:
            raise CorruptSnapshotError(
                f"journal {os.fspath(path)!r} line {bad_at} is corrupt but "
                f"later lines are intact — not a torn tail"
            )
        ops.append(record)
    return ops


def replay_journal(
    db: Database, ops: List[Dict[str, Any]], notify: bool = False
) -> int:
    """Apply journaled operations to *db*; returns the count applied.

    By default operations are applied directly to relation storage (no
    events fire, no rules run — the journal already reflects every
    cascade that happened).  With ``notify=True``, consecutive
    same-relation operations are additionally announced to the
    database's subscribers as a single
    :class:`~repro.db.events.BatchEvent` **after** being applied, so
    subscribers that maintain derived state from mutations — monitors,
    alpha memories, an attached matcher — rebuild it through their
    batched path (one ``match_batch`` pass per run of same-relation
    ops) instead of one event at a time.  Only attach observation-style
    subscribers before a notifying replay: an action-firing rule engine
    would re-run cascades the journal already contains.

    An operation that cannot be applied — unknown relation, tid
    mismatch, schema violation — means the journal does not belong to
    this snapshot and raises
    :class:`~repro.errors.CorruptSnapshotError`.
    """
    applied = 0
    pending: List[Any] = []  # same-relation events awaiting one BatchEvent
    pending_relation: Optional[str] = None

    def flush() -> None:
        nonlocal pending, pending_relation
        if pending:
            db._notify(BatchEvent(pending_relation, tuple(pending)))
            pending = []
        pending_relation = None

    for op in ops:
        try:
            kind = op["op"]
            relation_name = op["relation"]
            relation = db.relation(relation_name)
            tid = int(op["tid"])
            event: Optional[Any] = None
            if kind == "insert":
                values = relation.schema.validate_tuple(op["values"])
                relation.restore(tid, values)
                if notify:
                    event = InsertEvent(relation_name, tid, dict(values))
            elif kind == "update":
                old, new = relation.update(tid, op["values"])
                if notify:
                    event = UpdateEvent(relation_name, tid, dict(old), dict(new))
            elif kind == "delete":
                old = relation.delete(tid)
                if notify:
                    event = DeleteEvent(relation_name, tid, dict(old))
            else:
                raise DatabaseError(f"unknown journal op {kind!r}")
        except (DatabaseError, KeyError, TypeError, ValueError) as exc:
            flush()  # announce what *was* applied before failing
            raise CorruptSnapshotError(
                f"journal operation {applied + 1} ({op!r}) does not apply "
                f"to this snapshot: {exc}"
            ) from exc
        if event is not None:
            if pending and pending_relation != relation_name:
                flush()
            pending_relation = relation_name
            pending.append(event)
        applied += 1
    flush()
    return applied


def recover_database(
    snapshot: Union[str, os.PathLike],
    journal: Optional[Union[str, os.PathLike]] = None,
    on_load: Optional[Callable[[Database], Any]] = None,
    notify: bool = False,
) -> Database:
    """Load the last consistent state: snapshot plus journal replay.

    This is the crash-recovery entry point: load the (atomically
    written, checksummed) snapshot, then replay every intact journal
    record on top of it.  A missing journal file simply means no
    mutations since the checkpoint.

    ``on_load`` is called with the freshly loaded database *before* the
    journal is replayed — the hook for attaching subscribers that must
    observe the replayed mutations (pass ``notify=True`` so the replay
    announces them, batched per run of same-relation operations).
    """
    db = load_database(snapshot)
    if on_load is not None:
        on_load(db)
    if journal is not None:
        replay_journal(db, read_journal(journal), notify=notify)
    return db
