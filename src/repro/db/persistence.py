"""Save and load databases as JSON.

Rule systems hold their *rules* in code, but the data they monitor is
ordinary relational content; this module persists that content so
examples and experiments can checkpoint and reload state::

    from repro.db import Database, save_database, load_database

    save_database(db, "snapshot.json")
    db2 = load_database("snapshot.json")

Format: one JSON object with a ``relations`` list; each relation
carries its schema (attribute names + domain descriptors) and its
tuples in insertion order.  Built-in domains round-trip by name;
bounded integer domains keep their bounds; custom check functions
cannot be serialised and degrade to ``any`` (a warning is attached to
the loaded relation's schema via the domain name).

Tuple identifiers are not preserved — they are storage-level handles,
not data.  Values must be JSON-representable (int, float, str, bool,
None); anything else raises :class:`~repro.errors.DatabaseError`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Union

from ..errors import DatabaseError
from .database import Database
from .schema import Attribute
from .types import ANY, BOOLEAN, Domain, FLOAT, INTEGER, NUMBER, STRING, integer_range

__all__ = ["save_database", "load_database", "database_to_dict", "database_from_dict"]

FORMAT_VERSION = 1

_BUILTIN_DOMAINS: Dict[str, Domain] = {
    "integer": INTEGER,
    "float": FLOAT,
    "number": NUMBER,
    "string": STRING,
    "boolean": BOOLEAN,
    "any": ANY,
}

_JSON_SAFE = (int, float, str, bool, type(None))


def _domain_descriptor(domain: Domain) -> Dict[str, Any]:
    if domain.name in _BUILTIN_DOMAINS:
        return {"kind": domain.name}
    if domain.name.startswith("integer[") and domain.low is not None:
        return {"kind": "integer_range", "low": domain.low, "high": domain.high}
    # custom domain: not serialisable; degrade explicitly
    return {"kind": "any", "original": domain.name}


def _domain_from_descriptor(descriptor: Dict[str, Any]) -> Domain:
    kind = descriptor.get("kind", "any")
    if kind == "integer_range":
        return integer_range(descriptor["low"], descriptor["high"])
    try:
        return _BUILTIN_DOMAINS[kind]
    except KeyError:
        raise DatabaseError(f"unknown domain kind {kind!r} in snapshot") from None


def database_to_dict(db: Database) -> Dict[str, Any]:
    """Serialise *db* (schemas + tuples) into a JSON-safe dict."""
    relations: List[Dict[str, Any]] = []
    for name in db.relations():
        relation = db.relation(name)
        schema = relation.schema
        for _, tup in relation.scan():
            for attr, value in tup.items():
                if not isinstance(value, _JSON_SAFE):
                    raise DatabaseError(
                        f"cannot serialise {name}.{attr} value {value!r} "
                        f"of type {type(value).__name__}"
                    )
        relations.append(
            {
                "name": name,
                "attributes": [
                    {"name": attr.name, "domain": _domain_descriptor(attr.domain)}
                    for attr in schema.attributes
                ],
                "tuples": [dict(tup) for _, tup in relation.scan()],
            }
        )
    return {"format": "repro-database", "version": FORMAT_VERSION, "relations": relations}


def database_from_dict(data: Dict[str, Any]) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    if data.get("format") != "repro-database":
        raise DatabaseError("not a repro database snapshot")
    if data.get("version") != FORMAT_VERSION:
        raise DatabaseError(
            f"unsupported snapshot version {data.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    db = Database()
    for relation_data in data.get("relations", []):
        attributes = [
            Attribute(spec["name"], _domain_from_descriptor(spec.get("domain", {})))
            for spec in relation_data["attributes"]
        ]
        db.create_relation(relation_data["name"], attributes)
        for tup in relation_data.get("tuples", []):
            db.insert(relation_data["name"], tup)
    return db


def save_database(db: Database, target: Union[str, os.PathLike, IO[str]]) -> None:
    """Write *db* as JSON to a path or open text file."""
    data = database_to_dict(db)
    if hasattr(target, "write"):
        json.dump(data, target, indent=1)
        return
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1)


def load_database(source: Union[str, os.PathLike, IO[str]]) -> Database:
    """Read a database from a JSON path or open text file."""
    if hasattr(source, "read"):
        data = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    return database_from_dict(data)
