"""Database mutation events.

The rule engine is driven by these events: every insert, update, and
delete on a :class:`~repro.db.database.Database` produces one event,
delivered synchronously to subscribers in registration order.  The
paper's matching problem is exactly "given the tuple carried by one of
these events, find every predicate that matches it".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "Event",
    "InsertEvent",
    "UpdateEvent",
    "DeleteEvent",
    "BatchEvent",
    "as_compensating",
]


@dataclass(frozen=True)
class Event:
    """Base class for database mutation events."""

    relation: str
    tid: int

    # True on events fired while *undoing* mutations during a rollback
    # (transaction abort or subscriber veto): the inverse image of each
    # undone operation is announced so subscribers that maintain derived
    # state (the rule engine's monitors and joins) track the restored
    # relation contents instead of drifting.  A plain class attribute —
    # not a dataclass field — so the event constructors and the
    # positional wire format are unchanged; compensation instances are
    # flagged via :func:`as_compensating`.  (A ``kw_only`` field would
    # be cleaner but needs Python 3.10; we support 3.9.)
    compensating = False

    @property
    def kind(self) -> str:
        """One of ``"insert"``, ``"update"``, ``"delete"``."""
        raise NotImplementedError

    @property
    def tuple(self) -> Optional[Dict[str, Any]]:
        """The tuple a predicate should be matched against (None for deletes)."""
        raise NotImplementedError


@dataclass(frozen=True)
class InsertEvent(Event):
    """A new tuple was inserted."""

    new: Dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return "insert"

    @property
    def tuple(self) -> Dict[str, Any]:
        return self.new


@dataclass(frozen=True)
class UpdateEvent(Event):
    """An existing tuple was modified; carries both images."""

    old: Dict[str, Any] = field(default_factory=dict)
    new: Dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return "update"

    @property
    def tuple(self) -> Dict[str, Any]:
        return self.new


@dataclass(frozen=True)
class BatchEvent:
    """Several same-relation mutations delivered as **one** notification.

    Produced by :meth:`~repro.db.database.Database.bulk_insert` /
    :meth:`~repro.db.database.Database.bulk_update` so the rule engine
    can run one batched predicate-matching pass over the whole batch
    (``PredicateIndex.match_batch``) instead of one match per tuple.

    Deliberately *not* an :class:`Event` subclass — it has no single
    ``tid`` — so subscribers that pattern-match on the per-tuple event
    classes fail loudly rather than misread a batch.  Iterating a
    BatchEvent yields its per-tuple sub-events in mutation order.
    """

    relation: str
    events: Tuple[Event, ...]

    compensating = False

    @property
    def kind(self) -> str:
        return "batch"

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class DeleteEvent(Event):
    """A tuple was removed; carries its final image."""

    old: Dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return "delete"

    @property
    def tuple(self) -> Optional[Dict[str, Any]]:
        return self.old


def as_compensating(event: Any) -> Any:
    """Flag *event* as a compensating (rollback) notification.

    Works on the frozen event dataclasses because ``compensating`` is an
    ordinary class attribute shadowed per instance, not a frozen field.
    Returns the event for call-site convenience.
    """
    object.__setattr__(event, "compensating", True)
    return event
