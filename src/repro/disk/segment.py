"""The on-disk segment format: one frozen interval tree as flat arrays.

A **segment** is the durable form of one ``(relation, attribute)``
interval tree.  It stores the tree's *stab plane* — the ``2n + 1``
distinct stabbing-query outcomes a fixed search tree can produce (see
:meth:`~repro.core.flat_ibs_tree.FlatIBSTree.export_stab_plane`) — as
flat arrays that can be served straight from an ``mmap`` without
rehydrating the tree into Python objects::

    +-----------------------------------------------------------+
    | magic "RSEGMT01" | u32 header_len | header JSON           |
    +-----------------------------------------------------------+
    | values   : n_values x f64 LE   (or pickled list)          |
    | eq_masks : n_values x mask_bytes   (bitset rows, LE)      |
    | gap_masks: (n_values + 1) x mask_bytes                    |
    | idents   : pickled list  (bit index -> identifier)        |
    | intervals: pickled list  (bit index -> Interval)          |
    +-----------------------------------------------------------+
    | footer "RSEGEND." | u32 payload crc32 | u64 payload len   |
    +-----------------------------------------------------------+

The header names every section's offset and length, the payload CRC,
and the tree's identity (relation, attribute, epoch, interval count).
The footer repeats the CRC and length so a *torn* write — a crash that
truncated the file — is detectable from the last 20 bytes alone,
without reading the payload.  Writers never expose a torn segment at
the target path: the bytes go to a temp file in the same directory,
are fsynced, and are renamed into place atomically (the
``disk.torn_segment`` fault site fires between the two payload halves,
so crash drills exercise exactly the wreckage a real kill produces).

A stab against a :class:`SegmentReader` is a binary search over the
values section (eight bytes read per probe step in the common numeric
layout) followed by one mask-row read; decoded identifier sets are
memoised per row, so repeated probes of hot values cost one dict hit.
Everything the reader materialises in RAM — decoded rows, the lazily
unpickled identifier and interval tables — is accounted in
:meth:`SegmentReader.resident_bytes` and droppable via
:meth:`SegmentReader.release`; the mapped pages themselves belong to
the OS page cache, which is the point of the tier.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import pickle
import struct
import sys
import tempfile
import zlib
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.intervals import Interval
from ..errors import CorruptSegmentError, UnknownIntervalError
from ..testing.faults import fault_point

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_SUFFIX",
    "SEGMENT_VERSION",
    "SegmentReader",
    "write_segment",
]

SEGMENT_MAGIC = b"RSEGMT01"
SEGMENT_FOOTER_MAGIC = b"RSEGEND."
SEGMENT_VERSION = 1
#: Every segment file ends with this suffix; the CLI and the checkpoint
#: garbage collector discover segments by it.
SEGMENT_SUFFIX = ".seg"

_FOOTER = struct.Struct("<8sIQ")
_F64 = struct.Struct("<d")

#: Largest magnitude at which every int is exactly a float64.
_EXACT_INT = 2**53


def _numeric_values(values: List[Any]) -> bool:
    """True when *values* can live in a fixed-width float64 array.

    ``bool`` is excluded (it is an ``int`` subclass but a different
    domain value), as are ints beyond the 2**53 exact-float64 range —
    two distinct big ints could collide after conversion and corrupt
    the search order.  Python compares ``int`` to ``float`` exactly,
    so queries of either type binary-search correctly over the array.
    """
    for v in values:
        if type(v) is float:
            continue
        if type(v) is int and -_EXACT_INT <= v <= _EXACT_INT:
            continue
        return False
    return True


def write_segment(
    path: str,
    tree: Any,
    relation: str,
    attribute: str,
) -> Dict[str, Any]:
    """Serialise *tree* (a ``FlatIBSTree``-compatible index) to *path*.

    Returns the manifest entry for the written segment: file name,
    payload CRC, total length, epoch, and interval count.  The write is
    atomic (temp + fsync + rename); the ``disk.torn_segment`` fault
    site fires between the two payload halves of the temp file, so an
    injected crash leaves the target untouched.
    """
    exporter = getattr(tree, "export_arrays", None)
    if exporter is not None:
        arrays = exporter()
        values = arrays["values"]
        eq_masks = arrays["eq_masks"]
        gap_masks = arrays["gap_masks"]
        ident_of = arrays["ident_of"]
        interval_of: List[Optional[Interval]] = arrays["interval_of"]
    else:  # any IntervalIndex exposing the plane export works
        values, eq_masks, gap_masks, ident_of = tree.export_stab_plane()
        interval_of = [
            None if ident is None else tree.get(ident) for ident in ident_of
        ]
    n_bits = len(ident_of)
    mask_bytes = max(1, (n_bits + 7) // 8)
    numeric = _numeric_values(values)

    buf = io.BytesIO()
    sections: Dict[str, Tuple[int, int]] = {}

    def section(name: str, data: bytes) -> None:
        sections[name] = (buf.tell(), len(data))
        buf.write(data)

    if numeric:
        packed = bytearray(len(values) * 8)
        for i, v in enumerate(values):
            _F64.pack_into(packed, i * 8, float(v))
        section("values", bytes(packed))
    else:
        section("values", pickle.dumps(list(values), protocol=4))
    section(
        "eq", b"".join(mask.to_bytes(mask_bytes, "little") for mask in eq_masks)
    )
    section(
        "gap", b"".join(mask.to_bytes(mask_bytes, "little") for mask in gap_masks)
    )
    section("idents", pickle.dumps(ident_of, protocol=4))
    section("intervals", pickle.dumps(interval_of, protocol=4))
    payload = buf.getvalue()
    crc = zlib.crc32(payload) & 0xFFFFFFFF

    header = {
        "format": "repro-segment",
        "version": SEGMENT_VERSION,
        "relation": relation,
        "attribute": attribute,
        "epoch": int(getattr(tree, "epoch", 0)),
        "count": len(tree),
        "n_values": len(values),
        "n_bits": n_bits,
        "mask_bytes": mask_bytes,
        "numeric": numeric,
        "sections": sections,
        "payload_len": len(payload),
        "payload_crc": crc,
    }
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    footer = _FOOTER.pack(SEGMENT_FOOTER_MAGIC, crc, len(payload))

    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(SEGMENT_MAGIC)
            handle.write(struct.pack("<I", len(header_bytes)))
            handle.write(header_bytes)
            # two writes with a fault point between them: an injected
            # crash leaves a *torn* temp file — the exact wreckage of a
            # real kill mid-write — and never touches the target
            mid = len(payload) // 2
            handle.write(payload[:mid])
            fault_point("disk.torn_segment")
            handle.write(payload[mid:])
            handle.write(footer)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    total_len = len(SEGMENT_MAGIC) + 4 + len(header_bytes) + len(payload) + _FOOTER.size
    return {
        "file": os.path.basename(path),
        "crc": crc,
        "length": total_len,
        "epoch": header["epoch"],
        "count": header["count"],
        "n_values": header["n_values"],
    }


class SegmentReader:
    """Serve stabbing queries straight from an mmap'd segment file.

    Opening validates the cheap structural invariants — magic, version,
    header shape, file length, and that the footer's CRC/length agree
    with the header's — which is what catches a torn or truncated
    write without touching the payload pages.  :meth:`verify` addition-
    ally recomputes the payload CRC (the CLI and crash drills use it).

    The backing file may be unlinked while the reader is open: POSIX
    keeps the mapping valid until it is closed, which is what lets a
    checkpoint garbage-collect superseded generations under live
    readers (and what the ``disk.mmap_unlink`` drill proves).
    """

    def __init__(self, path: str, verify_payload: bool = False):
        self.path = os.fspath(path)
        try:
            with open(self.path, "rb") as handle:
                prelude = handle.read(len(SEGMENT_MAGIC) + 4)
                if len(prelude) < len(SEGMENT_MAGIC) + 4:
                    raise CorruptSegmentError(
                        f"segment {self.path!r} is truncated before its header"
                    )
                if prelude[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
                    raise CorruptSegmentError(
                        f"segment {self.path!r} has a bad magic "
                        f"{prelude[:len(SEGMENT_MAGIC)]!r}"
                    )
                (header_len,) = struct.unpack_from("<I", prelude, len(SEGMENT_MAGIC))
                header_bytes = handle.read(header_len)
                if len(header_bytes) < header_len:
                    raise CorruptSegmentError(
                        f"segment {self.path!r} is truncated inside its header"
                    )
                try:
                    header = json.loads(header_bytes.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise CorruptSegmentError(
                        f"segment {self.path!r} header is not decodable: {exc}"
                    ) from exc
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except FileNotFoundError:
            raise
        except OSError as exc:
            if isinstance(exc, CorruptSegmentError):
                raise
            raise CorruptSegmentError(
                f"segment {self.path!r} cannot be opened: {exc}"
            ) from exc
        try:
            self._load_header(header, header_len)
        except BaseException:
            self._mmap.close()
            raise
        if verify_payload:
            try:
                self.verify()
            except BaseException:
                self._mmap.close()
                raise
        # -- lazily materialised, droppable state (resident accounting) --
        self._ident_of: Optional[List[Optional[Hashable]]] = None
        self._interval_of: Optional[List[Optional[Interval]]] = None
        self._values_list: Optional[List[Any]] = None
        self._bit_of: Optional[Dict[Hashable, int]] = None
        self._eq_cache: Dict[int, frozenset] = {}
        self._gap_cache: Dict[int, frozenset] = {}

    def _load_header(self, header: Dict[str, Any], header_len: int) -> None:
        if header.get("format") != "repro-segment":
            raise CorruptSegmentError(
                f"segment {self.path!r} is not a repro segment"
            )
        if header.get("version") != SEGMENT_VERSION:
            raise CorruptSegmentError(
                f"segment {self.path!r} has unsupported version "
                f"{header.get('version')!r} (this build reads {SEGMENT_VERSION})"
            )
        try:
            self.relation: str = header["relation"]
            self.attribute: str = header["attribute"]
            self.epoch: int = int(header["epoch"])
            self.count: int = int(header["count"])
            self.n_values: int = int(header["n_values"])
            self.n_bits: int = int(header["n_bits"])
            self.mask_bytes: int = int(header["mask_bytes"])
            self.numeric: bool = bool(header["numeric"])
            payload_len = int(header["payload_len"])
            self.payload_crc: int = int(header["payload_crc"])
            sections = {
                name: (int(off), int(length))
                for name, (off, length) in header["sections"].items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptSegmentError(
                f"segment {self.path!r} header is malformed: {exc}"
            ) from exc
        self._payload_start = len(SEGMENT_MAGIC) + 4 + header_len
        self._payload_len = payload_len
        expected_total = self._payload_start + payload_len + _FOOTER.size
        if len(self._mmap) != expected_total:
            raise CorruptSegmentError(
                f"segment {self.path!r} is {len(self._mmap)} bytes, "
                f"expected {expected_total} — torn or truncated write"
            )
        magic, crc, length = _FOOTER.unpack_from(
            self._mmap, self._payload_start + payload_len
        )
        if magic != SEGMENT_FOOTER_MAGIC or crc != self.payload_crc or (
            length != payload_len
        ):
            raise CorruptSegmentError(
                f"segment {self.path!r} footer disagrees with its header — "
                "torn or truncated write"
            )
        self._sections = {
            name: (self._payload_start + off, length)
            for name, (off, length) in sections.items()
        }
        for name in ("values", "eq", "gap", "idents", "intervals"):
            if name not in self._sections:
                raise CorruptSegmentError(
                    f"segment {self.path!r} is missing section {name!r}"
                )

    # -- integrity -------------------------------------------------------

    def verify(self) -> bool:
        """Recompute the payload CRC; raises on mismatch, returns True."""
        actual = (
            zlib.crc32(
                self._mmap[self._payload_start : self._payload_start + self._payload_len]
            )
            & 0xFFFFFFFF
        )
        if actual != self.payload_crc:
            raise CorruptSegmentError(
                f"segment {self.path!r} payload checksum mismatch: recorded "
                f"{self.payload_crc:08x}, computed {actual:08x}"
            )
        return True

    # -- lazy tables -----------------------------------------------------

    def _pickled(self, name: str) -> Any:
        off, length = self._sections[name]
        try:
            return pickle.loads(self._mmap[off : off + length])
        except Exception as exc:  # pickle raises a zoo of types
            raise CorruptSegmentError(
                f"segment {self.path!r} section {name!r} is not decodable: {exc}"
            ) from exc

    def ident_table(self) -> List[Optional[Hashable]]:
        if self._ident_of is None:
            self._ident_of = self._pickled("idents")
        return self._ident_of

    def interval_table(self) -> List[Optional[Interval]]:
        if self._interval_of is None:
            self._interval_of = self._pickled("intervals")
        return self._interval_of

    def _bits(self) -> Dict[Hashable, int]:
        if self._bit_of is None:
            self._bit_of = {
                ident: bit
                for bit, ident in enumerate(self.ident_table())
                if ident is not None
            }
        return self._bit_of

    def _value_at(self, i: int) -> Any:
        if self.numeric:
            off, _ = self._sections["values"]
            return _F64.unpack_from(self._mmap, off + 8 * i)[0]
        if self._values_list is None:
            self._values_list = self._pickled("values")
        return self._values_list[i]

    # -- stabbing --------------------------------------------------------

    def _locate(self, x: Any) -> Tuple[bool, int]:
        """Binary-search *x*: ``(True, i)`` on an exact value hit,
        ``(False, gap_index)`` otherwise.

        Mirrors the tree descent's comparison discipline (``==`` first,
        then ``<``), so NaN-like values — every comparison False — fall
        through to the rightmost gap exactly as they do in the tree,
        and incomparable values raise ``TypeError`` like a tree stab.
        """
        lo, hi = 0, self.n_values - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            v = self._value_at(mid)
            if x == v:
                return True, mid
            if x < v:
                hi = mid - 1
            else:
                lo = mid + 1
        return False, lo

    def _mask_row(self, section: str, i: int) -> int:
        off, _ = self._sections[section]
        start = off + i * self.mask_bytes
        return int.from_bytes(self._mmap[start : start + self.mask_bytes], "little")

    def _decode(self, mask: int) -> frozenset:
        ident_of = self.ident_table()
        out = []
        while mask:
            low = mask & -mask
            out.append(ident_of[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    def _stab_frozen(self, x: Any) -> frozenset:
        exact, i = self._locate(x)
        cache = self._eq_cache if exact else self._gap_cache
        hit = cache.get(i)
        if hit is None:
            hit = self._decode(self._mask_row("eq" if exact else "gap", i))
            cache[i] = hit
        return hit

    def stab(self, x: Any) -> Set[Hashable]:
        """Identifiers of all intervals containing *x*."""
        return set(self._stab_frozen(x))

    def stab_into(self, x: Any, out: Set[Hashable]) -> Set[Hashable]:
        out.update(self._stab_frozen(x))
        return out

    def stab_many(self, values: Iterable[Any]) -> Dict[Any, Optional[Set[Hashable]]]:
        """Batch stab with the tree seam's NULL/incomparable contract."""
        out: Dict[Any, Optional[Set[Hashable]]] = {}
        for v in values:
            if v in out:
                continue
            if v is None:
                out[v] = None
                continue
            try:
                out[v] = set(self._stab_frozen(v))
            except TypeError:
                out[v] = None
        return out

    def overlapping(self, query: Interval) -> Set[Hashable]:
        """Identifiers of all intervals overlapping *query* (table scan)."""
        ident_of = self.ident_table()
        return {
            ident_of[bit]
            for bit, interval in enumerate(self.interval_table())
            if interval is not None and interval.overlaps(query)
        }

    def export_stab_plane(
        self,
    ) -> Tuple[List[Any], List[int], List[int], List[Optional[Hashable]]]:
        """The stored arrays, decoded — same shape as the tree's export."""
        values = [self._value_at(i) for i in range(self.n_values)]
        eq_masks = [self._mask_row("eq", i) for i in range(self.n_values)]
        gap_masks = [self._mask_row("gap", i) for i in range(self.n_values + 1)]
        return values, eq_masks, gap_masks, list(self.ident_table())

    # -- table access ----------------------------------------------------

    def get(self, ident: Hashable) -> Interval:
        try:
            bit = self._bits()[ident]
        except KeyError:
            raise UnknownIntervalError(ident) from None
        interval = self.interval_table()[bit]
        assert interval is not None
        return interval

    def items(self) -> Iterator[Tuple[Hashable, Interval]]:
        intervals = self.interval_table()
        for ident, bit in self._bits().items():
            interval = intervals[bit]
            if interval is not None:
                yield ident, interval

    def __len__(self) -> int:
        return self.count

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._bits()

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._bits())

    # -- residency -------------------------------------------------------

    def resident_bytes(self) -> int:
        """Approximate bytes of decoded state held in Python memory.

        Mapped pages are *not* counted — they are reclaimable by the OS
        at any time; this measures what :meth:`release` can drop.
        """
        total = 0
        for cache in (self._eq_cache, self._gap_cache):
            total += sys.getsizeof(cache)
            for row in cache.values():
                total += sys.getsizeof(row)
        for table in (
            self._ident_of,
            self._interval_of,
            self._values_list,
            self._bit_of,
        ):
            if table is not None:
                total += sys.getsizeof(table) + 32 * len(table)
        return total

    def release(self) -> int:
        """Drop every decoded cache; returns the bytes released."""
        freed = self.resident_bytes()
        self._eq_cache = {}
        self._gap_cache = {}
        self._ident_of = None
        self._interval_of = None
        self._values_list = None
        self._bit_of = None
        return freed

    def close(self) -> None:
        self.release()
        try:
            self._mmap.close()
        except ValueError:
            pass

    def __repr__(self) -> str:
        return (
            f"<SegmentReader {self.relation}.{self.attribute} "
            f"epoch={self.epoch} intervals={self.count} "
            f"values={self.n_values} path={self.path!r}>"
        )
