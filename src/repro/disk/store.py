"""``DiskTreeStore``: the tree store whose trees live in segment files.

Drops into the :class:`~repro.match.store.TreeStore` seam — the catalog
and pipeline never know the difference — but every tree it constructs
is a :class:`~repro.disk.tree.DiskIBSTree` whose segment file lives
under a managed ``data_dir``::

    <data_dir>/<relation>/<attribute>.g<N>.seg

Relation and attribute names are percent-encoded (``quote(..., safe="")``)
so arbitrary identifiers cannot escape the directory or collide.  The
``g<N>`` generation number is monotone per data directory — allocated
from a process-wide counter seeded by scanning existing files — so a
re-sealed tree never overwrites the segment an open reader (or a
not-yet-durable checkpoint manifest) still references; superseded
generations are garbage-collected by the checkpointer once a manifest
that no longer names them is durable.

The store is also the disk tier's **eviction policy**: every tree it
creates reports reads through an ``on_touch`` hook, the store keeps an
LRU of live trees, and when decoded-object residency exceeds
``memory_budget`` the coldest *sealed* trees are asked to
:meth:`~repro.disk.tree.DiskIBSTree.release_cache` — dropping their
decoded rows and staging copies while their mmap'd pages stay with the
OS page cache.  Dirty staging trees are never evicted (their contents
exist nowhere else).
"""

from __future__ import annotations

import os
import re
import threading
import weakref
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple
from urllib.parse import quote

from ..match.catalog import RelationState
from ..match.store import TreeStore
from .segment import SEGMENT_SUFFIX
from .tree import DiskIBSTree

__all__ = ["DiskTreeStore"]

_GEN_RE = re.compile(r"\.g(\d+)\.seg$")

#: per-data-directory monotone generation counters, shared process-wide
#: so two indexes (or a checkpointer) over the same directory never
#: allocate colliding segment names
_GENERATIONS: Dict[str, int] = {}
_GEN_LOCK = threading.Lock()


def _next_generation(data_dir: str) -> int:
    key = os.path.realpath(data_dir)
    with _GEN_LOCK:
        current = _GENERATIONS.get(key)
        if current is None:
            current = 0
            if os.path.isdir(data_dir):
                for root, _dirs, files in os.walk(data_dir):
                    for name in files:
                        found = _GEN_RE.search(name)
                        if found:
                            current = max(current, int(found.group(1)))
        _GENERATIONS[key] = current + 1
        return current + 1


def segment_path(data_dir: str, relation: str, attribute: str, gen: int) -> str:
    """The canonical segment path for one tree generation."""
    return os.path.join(
        data_dir,
        quote(relation, safe=""),
        f"{quote(attribute, safe='')}.g{gen}{SEGMENT_SUFFIX}",
    )


class DiskTreeStore(TreeStore):
    """A :class:`TreeStore` whose trees are disk-backed and evictable.

    Parameters
    ----------
    data_dir:
        Directory holding segment files, checkpoints, and the journal.
    stab_cache_size:
        As :class:`TreeStore`.
    memory_budget:
        Soft cap, in bytes, on decoded Python-object residency across
        all live trees (``None`` = unlimited).  Enforced by evicting
        the coldest sealed trees after each touched read.
    """

    __slots__ = ("data_dir", "memory_budget", "_lru", "_evict_lock")

    def __init__(
        self,
        data_dir: str,
        stab_cache_size: int = 0,
        memory_budget: Optional[int] = None,
    ) -> None:
        super().__init__(DiskIBSTree, stab_cache_size)
        self.data_dir = os.fspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.memory_budget = memory_budget
        #: id(tree) -> weakref, most-recently-touched last
        self._lru: "OrderedDict[int, weakref.ref]" = OrderedDict()
        self._evict_lock = threading.Lock()

    # -- tree lifecycle (overrides) --------------------------------------

    def new_tree(
        self, state: RelationState, attribute: Optional[str] = None
    ) -> Any:
        """A fresh :class:`DiskIBSTree` at the next segment generation."""
        attr = attribute if attribute is not None else "_"
        gen = _next_generation(self.data_dir)
        tree = DiskIBSTree(
            segment_path(self.data_dir, state.name, attr, gen),
            relation=state.name,
            attribute=attr,
        )
        self.seed_epoch(state, tree)
        self._track(tree)
        return tree

    def _resolve_factory(self, state: RelationState, attribute: Optional[str]) -> Any:
        """Per-attribute backend overrides (``state.tree_backends``) are
        deliberately ignored: the disk tier pins its own backend, since
        an auto-selected RAM structure cannot be sealed to a segment."""
        return DiskIBSTree

    def adopt_tree(self, state: RelationState, tree: DiskIBSTree) -> DiskIBSTree:
        """Track a recovered (cold-attached) tree in the eviction LRU."""
        self._track(tree)
        return tree

    def _track(self, tree: DiskIBSTree) -> None:
        tree.on_touch = self._touched
        key = id(tree)
        ref = weakref.ref(tree, lambda _r, _k=key: self._lru.pop(_k, None))
        self._lru[key] = ref

    # -- eviction --------------------------------------------------------

    def _touched(self, tree: DiskIBSTree) -> None:
        key = id(tree)
        if key in self._lru:
            self._lru.move_to_end(key)
        if self.memory_budget is not None:
            self.maybe_evict()

    def live_trees(self) -> List[DiskIBSTree]:
        """Live tracked trees, least-recently-touched first."""
        out = []
        for ref in list(self._lru.values()):
            tree = ref()
            if tree is not None:
                out.append(tree)
        return out

    def resident_bytes(self) -> int:
        """Decoded-object residency across every live tree."""
        return sum(tree.resident_bytes() for tree in self.live_trees())

    def maybe_evict(self) -> int:
        """Release cold trees' caches until residency fits the budget.

        Walks the LRU coldest-first, skipping the most recently touched
        tree (evicting the tree being read defeats the cache entirely).
        Returns the bytes released.
        """
        budget = self.memory_budget
        if budget is None:
            return 0
        if not self._evict_lock.acquire(blocking=False):
            return 0  # another thread is already evicting
        try:
            trees = self.live_trees()
            if len(trees) <= 1:
                return 0
            resident = sum(tree.resident_bytes() for tree in trees)
            freed = 0
            for tree in trees[:-1]:  # keep the hottest tree resident
                if resident - freed <= budget:
                    break
                freed += tree.release_cache()
            return freed
        finally:
            self._evict_lock.release()

    # -- segment catalog -------------------------------------------------

    @staticmethod
    def seal_state(state: RelationState, release: bool = False) -> Dict[str, str]:
        """Seal every tree of *state*; returns ``attribute -> segment path``."""
        out: Dict[str, str] = {}
        for attribute, tree in state.trees.items():
            sealer = getattr(tree, "seal", None)
            if sealer is not None:
                out[attribute] = sealer(release=release)
        return out

    @staticmethod
    def segments_of(state: RelationState) -> Iterable[Tuple[str, Any]]:
        """``(attribute, tree)`` pairs for the disk-backed trees of *state*."""
        for attribute, tree in state.trees.items():
            if getattr(tree, "disk_backed", False):
                yield attribute, tree
