"""The disk-backed predicate tier: segments, checkpoints, recovery.

Larger-than-memory predicate sets for the matching system.  Frozen
:class:`~repro.core.flat_ibs_tree.FlatIBSTree` bases are serialised to
checksummed, mmap-able **segment files** (:mod:`repro.disk.segment`),
served lazily per ``(relation, attribute)`` by
:class:`~repro.disk.tree.DiskIBSTree` behind the ordinary tree-store
seam (:mod:`repro.disk.store`), and made durable by **incremental
per-shard checkpoints** plus a journal tail
(:mod:`repro.disk.checkpoint`) — cold start attaches segments instead
of rehydrating every predicate into RAM.

Select the tier with ``PredicateIndex(storage="disk", data_dir=...)``
or the registry's ``"disk"`` backend; nothing else about the matching
API changes.

Checkpoint/recovery helpers are imported lazily so that loading a disk
backend from the registry does not drag the database layer in.
"""

from __future__ import annotations

from typing import Any

from .segment import SegmentReader, write_segment
from .store import DiskTreeStore
from .tree import DiskIBSTree

__all__ = [
    "DiskCheckpointer",
    "DiskIBSTree",
    "DiskTreeStore",
    "SegmentReader",
    "load_index",
    "recover_concurrent",
    "save_index",
    "write_segment",
]

_LAZY = {"DiskCheckpointer", "save_index", "load_index", "recover_concurrent"}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from . import checkpoint

        return getattr(checkpoint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
