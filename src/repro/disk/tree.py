"""``DiskIBSTree``: a FlatIBSTree whose frozen form lives in a segment file.

The disk tier's interval index is a two-state machine behind the same
``IntervalIndex`` interface every RAM backend implements:

* **staging** — mutations go to an in-memory
  :class:`~repro.core.flat_ibs_tree.FlatIBSTree`, exactly as the flat
  backend would handle them;
* **sealed** — :meth:`seal` serialises the staging tree's stab plane to
  a segment file (see :mod:`repro.disk.segment`) and stabbing queries
  are answered by a :class:`~repro.disk.segment.SegmentReader` straight
  off the mmap.  :meth:`freeze` seals *and releases* the staging tree,
  so a frozen base published into an
  :class:`~repro.concurrency.shard.EpochSnapshot` holds no per-interval
  Python objects at all — the epoch-snapshot tier literally publishes
  mmap'd bases.

A mutation against a sealed-but-unfrozen tree transparently rehydrates
the staging tree from the reader (``bulk_load`` of the segment's
interval table, epoch preserved), mutates it, and marks the segment
stale; the next :meth:`seal` writes a fresh generation.  The invariant
throughout: *either the reader is current (its epoch equals the tree's)
or the staging tree exists* — reads never have nowhere to go.

Trees created without an explicit path write their segments to a
private temporary directory that is removed when the tree is garbage
collected, so ``DiskIBSTree`` works as a drop-in registry backend even
outside a managed ``data_dir``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.flat_ibs_tree import FlatIBSTree
from ..core.intervals import Interval
from ..errors import TreeError
from .segment import SegmentReader, write_segment

__all__ = ["DiskIBSTree"]


class DiskIBSTree:
    """Disk-backed interval index: RAM staging tree + mmap'd sealed base."""

    # capability flags read by the backend registry
    supports_dynamic_insert = True
    supports_dynamic_delete = True
    supports_open_bounds = True
    supports_unbounded = True
    disk_backed = True

    def __init__(
        self,
        path: Optional[str] = None,
        relation: str = "?",
        attribute: str = "?",
    ) -> None:
        self._path = os.fspath(path) if path is not None else None
        self._relation = relation
        self._attribute = attribute
        self._mem: Optional[FlatIBSTree] = FlatIBSTree()
        self._reader: Optional[SegmentReader] = None
        self._epoch = 0
        self._frozen = False
        self._tempdir: Optional[str] = None
        #: set by the disk tree store so eviction can track hot trees
        self.on_touch = None

    # -- epoch / freeze (same contract as FlatIBSTree) -------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        self._epoch = int(value)
        if self._mem is not None:
            self._mem.epoch = self._epoch

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Seal to disk and drop the staging tree; then refuse mutation.

        This is what the epoch-snapshot tier calls before publishing a
        base, so every frozen base a concurrent reader stabs is an
        mmap'd segment, not a Python object graph.
        """
        if not self._frozen:
            self.seal(release=True)
            self._frozen = True

    def _check_mutable(self) -> None:
        if self._frozen:
            raise TreeError(
                f"{type(self).__name__} is frozen (published in an epoch "
                "snapshot); build a new tree instead of mutating"
            )

    # -- the two-state machine -------------------------------------------

    @property
    def sealed(self) -> bool:
        """Whether the current contents are served from a segment file."""
        return self._reader is not None and self._reader.epoch == self._epoch

    @property
    def segment_path(self) -> Optional[str]:
        """Path of the current segment file, if sealed."""
        return self._reader.path if self.sealed else None

    def set_path(self, path: str) -> None:
        """Redirect future seals to *path* (the store names generations)."""
        self._path = os.fspath(path)

    def _target_path(self) -> str:
        if self._path is not None:
            return self._path
        if self._tempdir is None:
            self._tempdir = tempfile.mkdtemp(prefix="repro-disk-")
            weakref.finalize(self, shutil.rmtree, self._tempdir, True)
        return os.path.join(self._tempdir, f"anon.e{self._epoch}.seg")

    def seal(self, release: bool = False) -> str:
        """Write the current contents to a segment and serve reads from it.

        Idempotent when already sealed and current.  With ``release``
        the staging tree is dropped afterwards (rehydrated on demand if
        a later mutation needs it).  Returns the segment path.
        """
        if not self.sealed:
            assert self._mem is not None, "stale seal without a staging tree"
            path = self._target_path()
            self._mem.epoch = self._epoch
            write_segment(path, self._mem, self._relation, self._attribute)
            old = self._reader
            self._reader = SegmentReader(path)
            if old is not None:
                old.close()
        if release:
            self._mem = None
        return self._reader.path  # type: ignore[union-attr]

    def _ensure_mem(self) -> FlatIBSTree:
        """The staging tree, rehydrating from the sealed segment if needed."""
        if self._mem is None:
            assert self._reader is not None
            mem = FlatIBSTree()
            mem.bulk_load(
                (interval, ident) for ident, interval in self._reader.items()
            )
            mem.epoch = self._epoch
            self._mem = mem
        return self._mem

    def _read_source(self) -> Any:
        """Whoever currently answers reads: the reader when sealed-and-
        current, the staging tree otherwise."""
        if self.on_touch is not None:
            self.on_touch(self)
        if self._reader is not None and self._reader.epoch == self._epoch:
            return self._reader
        return self._ensure_mem()

    # -- residency ------------------------------------------------------

    def resident_bytes(self) -> int:
        """Decoded Python-object bytes held for this tree.

        A fully cold sealed tree (post-:meth:`release_cache`) reports 0
        even though its mmap is open — mapped pages belong to the OS
        page cache and are reclaimable without our cooperation.
        """
        total = 0
        if self._reader is not None:
            total += self._reader.resident_bytes()
        if self._mem is not None:
            # the staging tree holds the full object graph; approximate
            # with a per-interval + per-node constant (diagnostic, not
            # an allocator audit)
            mem = self._mem
            total += 200 * len(mem) + 120 * mem.node_count
        return total

    def release_cache(self) -> int:
        """Drop decoded reader caches (and the staging tree when sealed).

        Only safe state is dropped: a dirty staging tree (segment stale
        or absent) is untouched.  Returns bytes released.
        """
        freed = 0
        if self.sealed and self._mem is not None and not self._frozen:
            freed += 200 * len(self._mem) + 120 * self._mem.node_count
            self._mem = None
        if self._reader is not None:
            freed += self._reader.release()
        return freed

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None

    # -- mutation (delegates to the staging tree) ------------------------

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        self._check_mutable()
        mem = self._ensure_mem()
        result = mem.insert(interval, ident)
        self._epoch = mem.epoch
        return result

    def delete(self, ident: Hashable) -> None:
        self._check_mutable()
        mem = self._ensure_mem()
        mem.delete(ident)
        self._epoch = mem.epoch

    def bulk_load(
        self, items: Iterable[Tuple[Interval, Optional[Hashable]]]
    ) -> List[Hashable]:
        self._check_mutable()
        mem = self._ensure_mem()
        result = mem.bulk_load(items)
        self._epoch = mem.epoch
        return result

    def clear(self) -> None:
        self._check_mutable()
        mem = self._ensure_mem()
        mem.clear()
        self._epoch = mem.epoch

    # -- reads (reader when sealed, staging tree otherwise) --------------

    def stab(self, x: Any) -> Set[Hashable]:
        return self._read_source().stab(x)

    find_intervals = stab

    def stab_into(self, x: Any, out: Set[Hashable]) -> Set[Hashable]:
        return self._read_source().stab_into(x, out)

    def stab_many(self, values: Iterable[Any]) -> Dict[Any, Optional[Set[Hashable]]]:
        return self._read_source().stab_many(values)

    def export_stab_plane(
        self,
    ) -> Tuple[List[Any], List[int], List[int], List[Optional[Hashable]]]:
        return self._read_source().export_stab_plane()

    def overlapping(self, query: Interval) -> Set[Hashable]:
        return self._read_source().overlapping(query)

    def get(self, ident: Hashable) -> Interval:
        return self._read_source().get(ident)

    def items(self) -> Iterator[Tuple[Hashable, Interval]]:
        return iter(list(self._read_source().items()))

    def __len__(self) -> int:
        source = self._reader if self.sealed else self._ensure_mem()
        return len(source)  # type: ignore[arg-type]

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._read_source()

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Hashable]:
        return iter(list(self._read_source()))

    # -- diagnostics ----------------------------------------------------

    @property
    def node_count(self) -> int:
        if self.sealed and self._mem is None:
            return self._reader.n_values  # type: ignore[union-attr]
        return self._ensure_mem().node_count

    @property
    def height(self) -> int:
        if self.sealed and self._mem is None:
            n = self._reader.n_values  # type: ignore[union-attr]
            return max(0, n.bit_length())
        return self._ensure_mem().height

    @property
    def marker_count(self) -> int:
        return self._hydrated_for_audit().marker_count

    def markers_of(self, ident: Hashable) -> int:
        return self._hydrated_for_audit().markers_of(ident)

    def _hydrated_for_audit(self) -> FlatIBSTree:
        """A staging tree for structural diagnostics.

        A frozen tree must not regain a resident ``_mem`` (the whole
        point of freezing is releasing it), so audits of frozen trees
        work on a throwaway rehydration.
        """
        if self._mem is not None:
            return self._mem
        assert self._reader is not None
        tree = FlatIBSTree()
        tree.bulk_load(
            (interval, ident) for ident, interval in self._reader.items()
        )
        tree.epoch = self._epoch
        if not self._frozen:
            self._mem = tree
        return tree

    def validate(self) -> None:
        self._hydrated_for_audit().validate()
        if self.sealed:
            self._reader.verify()  # type: ignore[union-attr]

    def check_invariants(self) -> bool:
        self.validate()
        return True

    def audit(self) -> List[str]:
        problems = self._hydrated_for_audit().audit()
        if self.sealed:
            try:
                self._reader.verify()  # type: ignore[union-attr]
            except Exception as exc:  # CorruptSegmentError, OSError...
                problems.append(f"segment: {exc}")
        return problems

    def dump(self) -> str:
        return self._hydrated_for_audit().dump()

    def segment_meta(self) -> Optional[Dict[str, Any]]:
        """Manifest row for the current segment (``None`` when dirty)."""
        if not self.sealed:
            return None
        reader = self._reader
        assert reader is not None
        return {
            "file": os.path.basename(reader.path),
            "crc": reader.payload_crc,
            "epoch": reader.epoch,
            "count": reader.count,
            "n_values": reader.n_values,
        }

    # -- recovery -------------------------------------------------------

    @classmethod
    def from_segment(cls, path: str) -> "DiskIBSTree":
        """Attach a tree *cold* to an existing segment file.

        The returned tree serves reads straight from the mmap without
        ever materialising per-interval objects; a mutation (on an
        unfrozen tree) rehydrates on demand.  Raises
        :class:`~repro.errors.CorruptSegmentError` if the segment fails
        its structural checks.
        """
        reader = SegmentReader(path)
        tree = cls(path, relation=reader.relation, attribute=reader.attribute)
        tree._mem = None
        tree._reader = reader
        tree._epoch = reader.epoch
        return tree

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "staging"
        return (
            f"<DiskIBSTree {self._relation}.{self._attribute} "
            f"epoch={self._epoch} intervals={len(self)} {state}>"
        )
