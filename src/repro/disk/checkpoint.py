"""Incremental per-shard checkpoints, the predicate journal, and recovery.

The disk tier's durability story replaces PR 2's whole-database
snapshots with three files that together always name a consistent
state::

    <data_dir>/
        MANIFEST.json                 checksummed; names everything below
        journal.log                   CRC-per-line op tail (add/remove)
        <relation>/
            predicates.e<N>.pkl       CRC-gated pickled predicate records
            <attribute>.g<G>.seg      mmap-able segment files

**Checkpointing** (:class:`DiskCheckpointer`) is *incremental per
shard*: a shard whose published epoch already matches the manifest is
skipped entirely; a dirty shard is compacted (folding overlay +
tombstones into a fresh sealed base — the compaction pass that merges
them into a new on-disk base), its predicate records are rewritten, and
only then is a new manifest published atomically.  Files the new
manifest no longer references are garbage-collected *after* it is
durable — and thanks to POSIX unlink semantics, live readers still
mmap-ing a collected generation keep working until they close.

**The journal** is written by the facade's publication hooks, one CRC
line per ``add``/``remove`` at its publication epoch, so the journal
tail deterministically extends whatever epoch the manifest captured.
Recovery replays only ops whose epoch exceeds the manifest's for their
relation.

**Recovery** (:func:`recover_concurrent` / :func:`load_index`) is a
cold start, not a rehydration: predicates are attached to the catalog
without rebuilding trees (:meth:`ClauseCatalog.attach_entry`), segment
files are attached as cold mmap readers, and only a segment that fails
its checksum — or is missing outright — is rebuilt from the predicate
records (always sound: the records are the authoritative state, the
segments an acceleration).  Resident memory after recovery is bounded
by what is actually read, not by the predicate count.

Crash-drill fault sites: ``disk.torn_segment`` (inside the segment
writer), ``disk.partial_checkpoint`` (mid-manifest-write, leaving the
old manifest in place), and ``disk.mmap_unlink`` (converted into a real
unlink of a manifest-referenced segment during GC).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import struct
import tempfile
import threading
import zlib
from typing import Any, Dict, Hashable, List, Optional, Tuple
from urllib.parse import quote

from ..core.intervals import MINUS_INF, PLUS_INF, Interval
from ..core.predicate_index import PredicateIndex
from ..db.persistence import (
    crc_line,
    read_journal,
    write_checksummed_lines,
    write_json_atomic,
)
from ..errors import (
    CorruptSegmentError,
    CorruptSnapshotError,
    DatabaseError,
    InjectedFault,
)
from ..predicates.clauses import EqualityClause, FunctionClause, IntervalClause
from ..predicates.predicate import Predicate
from ..testing.faults import fault_point
from .segment import SEGMENT_SUFFIX, SegmentReader
from .store import DiskTreeStore
from .tree import DiskIBSTree

__all__ = [
    "DiskCheckpointer",
    "load_index",
    "predicate_from_dict",
    "predicate_to_dict",
    "recover_concurrent",
    "save_index",
]

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.log"
MANIFEST_FORMAT = "repro-disk-manifest"
MANIFEST_VERSION = 1

#: predicates-file prelude: magic, payload CRC32, payload length.
#: The records are a pickled list of ``(predicate, under)`` pairs —
#: binary, CRC-gated, and loaded in one C-speed pass, which is what
#: keeps cold start an order of magnitude under journal replay (the
#: journal stays line-oriented JSON because *it* needs torn-tail
#: semantics; a predicates file is written atomically and is either
#: fully present or not referenced by any manifest).
PREDICATES_MAGIC = b"RPREDS01"
_PRED_PRELUDE = struct.Struct("<8sIQ")


# ----------------------------------------------------------------------
# predicate codec: JSON-safe records with a pickle escape hatch
# ----------------------------------------------------------------------


def _enc(value: Any) -> Any:
    """Encode one scalar (bound, equality constant, or ident)."""
    if value is PLUS_INF:
        return {"$inf": 1}
    if value is MINUS_INF:
        return {"$inf": -1}
    if value is None or type(value) in (int, float, str, bool):
        return value
    # arbitrary hashables (tuples, Decimals, ...) round-trip via pickle
    return {"$pickle": base64.b64encode(pickle.dumps(value, protocol=4)).decode()}


def _dec(value: Any) -> Any:
    if isinstance(value, dict):
        if "$inf" in value:
            return PLUS_INF if value["$inf"] > 0 else MINUS_INF
        if "$pickle" in value:
            return pickle.loads(base64.b64decode(value["$pickle"]))
    return value


def predicate_to_dict(predicate: Predicate) -> Dict[str, Any]:
    """Serialise *predicate* into a JSON-safe record.

    Interval and equality clauses round-trip exactly, ±infinity
    sentinels included.  Function clauses hold arbitrary callables and
    are rejected with :class:`~repro.errors.DatabaseError` — a
    disk-tier index cannot persist them (register such predicates on a
    memory-tier index, or re-register them after recovery).
    """
    clauses: List[Dict[str, Any]] = []
    for clause in predicate.clauses:
        if isinstance(clause, EqualityClause):
            clauses.append(
                {"kind": "eq", "attribute": clause.attribute, "value": _enc(clause.value)}
            )
        elif isinstance(clause, IntervalClause):
            interval = clause.interval
            clauses.append(
                {
                    "kind": "interval",
                    "attribute": clause.attribute,
                    "low": _enc(interval.low),
                    "high": _enc(interval.high),
                    "low_inc": interval.low_inclusive,
                    "high_inc": interval.high_inclusive,
                }
            )
        elif isinstance(clause, FunctionClause):
            raise DatabaseError(
                f"cannot persist function clause on {clause.attribute!r}: "
                "callables are not serialisable; the disk tier only "
                "checkpoints interval/equality predicates"
            )
        else:
            raise DatabaseError(
                f"cannot persist unknown clause type {type(clause).__name__}"
            )
    record: Dict[str, Any] = {
        "relation": predicate.relation,
        "ident": _enc(predicate.ident),
        "clauses": clauses,
    }
    if predicate.source is not None:
        record["source"] = predicate.source
    return record


def predicate_from_dict(record: Dict[str, Any]) -> Predicate:
    """Rebuild a predicate from :func:`predicate_to_dict` output."""
    try:
        clauses: List[Any] = []
        for spec in record["clauses"]:
            kind = spec["kind"]
            if kind == "eq":
                clauses.append(EqualityClause(spec["attribute"], _dec(spec["value"])))
            elif kind == "interval":
                clauses.append(
                    IntervalClause(
                        spec["attribute"],
                        Interval(
                            _dec(spec["low"]),
                            _dec(spec["high"]),
                            bool(spec["low_inc"]),
                            bool(spec["high_inc"]),
                        ),
                    )
                )
            else:
                raise DatabaseError(f"unknown clause kind {kind!r}")
        predicate = Predicate(
            record["relation"],
            clauses,
            ident=_dec(record["ident"]),
            source=record.get("source"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptSnapshotError(
            f"predicate record is malformed: {exc}"
        ) from exc
    # records are written from the catalog, which stores *normalized*
    # predicates; skip re-normalisation on the (hot) recovery path
    predicate._normal = True
    return predicate


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------


def _manifest_checksum(relations: Dict[str, Any]) -> str:
    blob = json.dumps(relations, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _write_manifest(
    data_dir: str, relations: Dict[str, Any], fault_site: Optional[str] = None
) -> None:
    write_json_atomic(
        os.path.join(data_dir, MANIFEST_NAME),
        {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "checksum": _manifest_checksum(relations),
            "relations": relations,
        },
        fault_site=fault_site,
    )


def read_manifest(data_dir: str) -> Dict[str, Any]:
    """The manifest's ``relations`` map; ``{}`` when no manifest exists.

    A torn or checksum-mismatched manifest raises
    :class:`~repro.errors.CorruptSnapshotError` — the caller decides
    whether to fall back to journal-only recovery.
    """
    path = os.path.join(data_dir, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return {}
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptSnapshotError(
            f"manifest {path!r} is not decodable (torn write?): {exc}"
        ) from exc
    if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
        raise CorruptSnapshotError(f"{path!r} is not a disk-tier manifest")
    if data.get("version") != MANIFEST_VERSION:
        raise CorruptSnapshotError(
            f"manifest version {data.get('version')!r} unsupported "
            f"(this build reads {MANIFEST_VERSION})"
        )
    relations = data.get("relations", {})
    if _manifest_checksum(relations) != data.get("checksum"):
        raise CorruptSnapshotError(
            f"manifest {path!r} checksum mismatch — corrupt or hand-edited"
        )
    return relations


# ----------------------------------------------------------------------
# shared relation snapshot/attach helpers
# ----------------------------------------------------------------------


def _predicates_file(relation: str, epoch: int) -> str:
    return os.path.join(quote(relation, safe=""), f"predicates.e{epoch}.pkl")


def _check_persistable(predicate: Predicate) -> None:
    for clause in predicate.clauses:
        if isinstance(clause, FunctionClause):
            raise DatabaseError(
                f"cannot persist function clause on {clause.attribute!r}: "
                "callables are not serialisable; the disk tier only "
                "checkpoints interval/equality predicates"
            )


def _relation_records(
    index: PredicateIndex, relation: str
) -> List[Tuple[Predicate, Tuple[str, ...]]]:
    """``(predicate, indexed-under)`` pairs for *relation* in *index*."""
    catalog = index._catalog
    state = catalog.relations.get(relation)
    if state is None:
        return []
    records = []
    for ident, predicate in state.predicates.items():
        _check_persistable(predicate)
        records.append((predicate, tuple(state.indexed_under.get(ident, ()))))
    return records


def _write_predicates(
    path: str, records: List[Tuple[Predicate, Tuple[str, ...]]]
) -> None:
    """Atomically write a CRC-gated pickled predicates file."""
    payload = pickle.dumps(records, protocol=4)
    blob = (
        _PRED_PRELUDE.pack(PREDICATES_MAGIC, zlib.crc32(payload), len(payload))
        + payload
    )
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _read_predicates(path: str) -> List[Tuple[Predicate, Tuple[str, ...]]]:
    """Read a predicates file back; CRC-gated, corruption raises."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError as exc:
        raise CorruptSnapshotError(f"predicates file {path!r} is missing") from exc
    if len(blob) < _PRED_PRELUDE.size:
        raise CorruptSnapshotError(f"predicates file {path!r} is truncated")
    magic, crc, length = _PRED_PRELUDE.unpack_from(blob)
    payload = blob[_PRED_PRELUDE.size :]
    if magic != PREDICATES_MAGIC:
        raise CorruptSnapshotError(f"{path!r} is not a predicates file")
    if len(payload) != length or zlib.crc32(payload) != crc:
        raise CorruptSnapshotError(
            f"predicates file {path!r} fails its checksum (torn write?)"
        )
    try:
        records = pickle.loads(payload)
    except Exception as exc:
        raise CorruptSnapshotError(
            f"predicates file {path!r} does not unpickle: {exc}"
        ) from exc
    return records


def _relation_entry(
    index: PredicateIndex, relation: str, epoch: int, data_dir: str
) -> Dict[str, Any]:
    """Write *relation*'s predicate records; return its manifest entry.

    Every disk-backed tree must already be sealed (``index.seal()`` or
    ``freeze()``); a dirty tree raises — checkpointing unsealed state
    would record segments that do not exist.
    """
    records = _relation_records(index, relation)
    predicates_file = _predicates_file(relation, epoch)
    _write_predicates(os.path.join(data_dir, predicates_file), records)
    segments: Dict[str, Any] = {}
    state = index._catalog.relations.get(relation)
    if state is not None:
        for attribute, tree in state.trees.items():
            meta = tree.segment_meta() if hasattr(tree, "segment_meta") else None
            if meta is None:
                raise DatabaseError(
                    f"tree {relation}.{attribute} is not sealed; "
                    "seal() the index before checkpointing"
                )
            meta["file"] = os.path.join(
                quote(relation, safe=""), meta["file"]
            )
            segments[attribute] = meta
    return {
        "epoch": int(epoch),
        "predicates": predicates_file,
        "segments": segments,
    }


def _attach_relation(
    index: PredicateIndex, relation: str, entry: Dict[str, Any], data_dir: str
) -> List[Hashable]:
    """Cold-attach one manifest relation into *index*; returns its idents.

    Predicates land in the catalog without tree building; segments are
    attached as cold mmap readers.  A segment that is missing, torn, or
    checksum-divergent from its manifest row is **rebuilt** from the
    predicate records — the records are authoritative, segments are an
    acceleration — so recovery never fails on a damaged segment, it
    just pays a rebuild for that one attribute.
    """
    catalog = index._catalog
    store = index._store
    assert isinstance(store, DiskTreeStore)
    records = _read_predicates(os.path.join(data_dir, entry["predicates"]))
    idents: List[Hashable] = []
    decoded: Dict[Hashable, Tuple[Predicate, Tuple[str, ...]]] = {}
    for predicate, under in records:
        catalog.attach_entry(relation, predicate, under)
        decoded[predicate.ident] = (predicate, under)
        idents.append(predicate.ident)
    state = catalog._state_for(relation)
    max_epoch = 0
    for attribute, meta in entry.get("segments", {}).items():
        path = os.path.join(data_dir, meta["file"])
        tree: Optional[DiskIBSTree] = None
        try:
            tree = DiskIBSTree.from_segment(path)
            recorded_crc = meta.get("crc")
            if recorded_crc is not None and tree.segment_meta()["crc"] != recorded_crc:
                raise CorruptSegmentError(
                    f"segment {path!r} does not match its manifest checksum"
                )
        except (FileNotFoundError, OSError, CorruptSegmentError):
            # checksum-gated sound fallback: rebuild this attribute's
            # tree from the authoritative predicate records
            if tree is not None:
                tree.close()
            pairs = []
            for predicate, under in decoded.values():
                if attribute not in under:
                    continue
                for clause in predicate.clauses:
                    if (
                        isinstance(clause, IntervalClause)
                        and clause.attribute == attribute
                    ):
                        pairs.append((clause.interval, predicate.ident))
                        break
            rebuilt = store.build_tree(state, pairs, attribute)
            rebuilt.epoch = max(rebuilt.epoch, int(meta.get("epoch", 0)))
            tree = rebuilt
        else:
            store.adopt_tree(state, tree)
        state.trees[attribute] = tree
        max_epoch = max(max_epoch, tree.epoch)
    state.epoch_floor = max(state.epoch_floor, max_epoch + 1)
    state.version += 1
    return idents


# ----------------------------------------------------------------------
# serial index: save / lazy load
# ----------------------------------------------------------------------


def save_index(index: PredicateIndex, data_dir: Optional[str] = None) -> str:
    """Checkpoint a serial disk-tier index; returns the data directory.

    Seals every tree, writes per-relation predicate records, and
    publishes the manifest atomically.  The index keeps working after
    the save (it is *not* frozen).
    """
    if index.storage != "disk":
        raise DatabaseError("save_index requires PredicateIndex(storage='disk')")
    if data_dir is not None and os.path.realpath(data_dir) != os.path.realpath(
        index.data_dir or ""
    ):
        raise DatabaseError(
            "save_index writes to the index's own data_dir; build the index "
            f"with data_dir={data_dir!r} instead"
        )
    directory = index.data_dir
    assert directory is not None
    index.seal()
    relations: Dict[str, Any] = {}
    for relation in index._catalog.relations:
        relations[relation] = _relation_entry(index, relation, 0, directory)
    _write_manifest(directory, relations, fault_site="disk.partial_checkpoint")
    _collect_garbage(directory, relations)
    return directory


def load_index(data_dir: str, **options: Any) -> PredicateIndex:
    """Cold-start a serial index from segment files — no rehydration.

    The returned index serves matches straight off the mmap'd segments;
    ``options`` are forwarded to :class:`PredicateIndex` (``storage``
    and ``data_dir`` are forced).  This is the fast path
    ``BENCH_rebuild``'s cold-start experiment measures against full
    journal-style re-registration.
    """
    options.pop("storage", None)
    options.pop("data_dir", None)
    index = PredicateIndex(storage="disk", data_dir=data_dir, **options)
    for relation, entry in read_manifest(data_dir).items():
        _attach_relation(index, relation, entry, data_dir)
    return index


# ----------------------------------------------------------------------
# concurrent facade: journaling checkpointer + recovery
# ----------------------------------------------------------------------


class DiskCheckpointer:
    """Incremental checkpoints + op journal for a concurrent disk index.

    Subscribes to the facade's publication hook stream and journals
    every ``add``/``remove`` at its publication epoch (compactions and
    rebuilds change no contents and are skipped).  :meth:`checkpoint`
    makes the current state durable shard-by-shard; untouched shards
    cost nothing.

    The journal file handle is guarded by a lock because hooks fire
    from writer threads while :meth:`checkpoint` may be rewriting the
    retained tail.
    """

    def __init__(self, index: Any, data_dir: Optional[str] = None):
        if getattr(index, "storage", "memory") != "disk":
            raise DatabaseError(
                "DiskCheckpointer requires an index built with storage='disk'"
            )
        self.index = index
        self.data_dir: str = data_dir or index.data_dir
        os.makedirs(self.data_dir, exist_ok=True)
        self._journal_path = os.path.join(self.data_dir, JOURNAL_NAME)
        self._journal_lock = threading.Lock()
        self._journal_handle: Optional[Any] = None
        self._manifest: Dict[str, Any] = {}
        try:
            self._manifest = read_manifest(self.data_dir)
        except CorruptSnapshotError:
            self._manifest = {}
        index.on_publish(self._on_publish)
        # Route the checkpoint cadence through the maintenance plane:
        # when the facade carries a scheduler whose policy names a
        # checkpoint interval, background incremental checkpoints run
        # off the unified clock (budgeted, so one tick never turns into
        # a stop-the-world pass) instead of manual checkpoint() calls.
        scheduler = getattr(index, "maintenance_scheduler", None)
        if (
            scheduler is not None
            and scheduler.policy.checkpoint_interval is not None
        ):
            scheduler.register_callback(
                "checkpoint",
                lambda budget, relation: self.checkpoint(budget=budget),
                interval_ops=scheduler.policy.checkpoint_interval,
                priority=1,
                cost_class="io",
            )

    # -- journaling (runs inside shard write locks; keep it short) ------

    def _on_publish(self, relation: str, epoch: int, kind: str, payload: Any) -> None:
        if kind == "add":
            record = {
                "op": "add",
                "relation": relation,
                "epoch": int(epoch),
                "pred": predicate_to_dict(payload),
            }
        elif kind == "remove":
            record = {
                "op": "remove",
                "relation": relation,
                "epoch": int(epoch),
                "ident": _enc(payload),
            }
        else:  # compact / rebuild change no contents
            return
        with self._journal_lock:
            handle = self._journal_handle
            if handle is None or handle.closed:
                handle = self._journal_handle = open(
                    self._journal_path, "a", encoding="utf-8"
                )
            handle.write(crc_line(record))
            handle.flush()
            fault_point("journal.append")
            os.fsync(handle.fileno())

    # -- checkpointing ---------------------------------------------------

    def checkpoint(
        self, relation: Optional[str] = None, budget: Optional[Any] = None
    ) -> Dict[str, int]:
        """Make the current state durable; returns ``relation -> epoch``.

        Per shard: compact if the overlay or tombstone set is non-empty
        (merging them into a fresh sealed base), skip entirely if the
        published epoch already matches the manifest, otherwise rewrite
        the predicate records and segment rows.  The new manifest is
        published atomically at the end; a crash before that point
        (the ``disk.partial_checkpoint`` drill) leaves the previous
        manifest — and therefore a consistent recovery point — intact.

        A :class:`~repro.maintenance.MaintenanceBudget` caps the work
        of one pass: each checkpointed shard charges one op, and when
        the budget exhausts the pass stops *between* shards and still
        publishes its manifest.  That partial-coverage manifest is
        consistent by construction — every entry it carries is an
        individually sealed shard state, and :meth:`compact_journal`
        keeps the journal tail for every shard whose entry is older —
        so a preempted background checkpoint (the
        ``maint.checkpoint_preempted`` drill) narrows coverage, never
        correctness.  The skipped shards are simply first in line on
        the next tick.
        """
        shards = self.index._shard_items()
        if relation is not None:
            shards = [(name, shard) for name, shard in shards if name == relation]
        relations = dict(self._manifest)
        checkpointed: Dict[str, int] = {}
        for name, shard in shards:
            snap = shard.snapshot
            previous = relations.get(name)
            if previous is not None and previous.get("epoch") == snap.epoch:
                checkpointed[name] = snap.epoch
                continue  # incremental skip: nothing changed since
            if budget is not None and budget.exhausted():
                break  # between shards: the manifest below stays consistent
            fault_point("maint.checkpoint_preempted")
            if snap.overlay_preds or snap.removed:
                shard.compact()
                snap = shard.snapshot
            base = snap.base
            relations[name] = _relation_entry(base, name, snap.epoch, self.data_dir)
            checkpointed[name] = snap.epoch
            if budget is not None:
                budget.charge(1)
        _write_manifest(
            self.data_dir, relations, fault_site="disk.partial_checkpoint"
        )
        self._manifest = relations
        self.compact_journal()
        _collect_garbage(self.data_dir, relations)
        return checkpointed

    def compact_journal(self) -> int:
        """Drop journal ops the manifest already covers; returns kept count."""
        with self._journal_lock:
            ops = read_journal(self._journal_path)
            kept = [op for op in ops if self._op_is_tail(op)]
            if len(kept) == len(ops):
                return len(kept)
            if self._journal_handle is not None and not self._journal_handle.closed:
                self._journal_handle.close()
            self._journal_handle = None
            write_checksummed_lines(self._journal_path, kept)
            return len(kept)

    def _op_is_tail(self, op: Dict[str, Any]) -> bool:
        entry = self._manifest.get(op.get("relation"))
        if entry is None:
            return True
        return int(op.get("epoch", 0)) > int(entry.get("epoch", 0))

    def close(self) -> None:
        with self._journal_lock:
            if self._journal_handle is not None and not self._journal_handle.closed:
                self._journal_handle.close()
            self._journal_handle = None


def _collect_garbage(data_dir: str, relations: Dict[str, Any]) -> List[str]:
    """Unlink segment/predicate generations the manifest no longer names.

    Runs only after the manifest is durable.  Readers still mmap-ing a
    collected segment keep working (POSIX keeps the mapping alive past
    the unlink); the files simply stop being part of any future
    recovery.  The ``disk.mmap_unlink`` fault site is converted into
    the *real* failure here — an actual unlink of a manifest-referenced
    segment — so the recovery it drills (reads served from the
    surviving mapping now, a predicate-record rebuild at the next cold
    start) is genuine, not simulated.
    """
    referenced = {MANIFEST_NAME, JOURNAL_NAME}
    for entry in relations.values():
        referenced.add(os.path.normpath(entry["predicates"]))
        for meta in entry.get("segments", {}).values():
            referenced.add(os.path.normpath(meta["file"]))
    try:
        fault_point("disk.mmap_unlink")
    except InjectedFault:
        victims = sorted(
            name for name in referenced if name.endswith(SEGMENT_SUFFIX)
        )
        if victims:
            try:
                os.unlink(os.path.join(data_dir, victims[0]))
            except OSError:
                pass
    removed: List[str] = []
    for root, _dirs, files in os.walk(data_dir):
        for name in files:
            path = os.path.join(root, name)
            rel = os.path.normpath(os.path.relpath(path, data_dir))
            if rel in referenced:
                continue
            if (
                name.endswith(SEGMENT_SUFFIX)
                or name.startswith("predicates.")
                or name.endswith(".tmp")
            ):
                try:
                    os.unlink(path)
                    removed.append(rel)
                except OSError:
                    pass
    return removed


def recover_concurrent(data_dir: str, **options: Any) -> Any:
    """Cold-start a concurrent index from segments + journal tail.

    Builds a fresh :class:`~repro.concurrency.ConcurrentPredicateIndex`
    (options forwarded; ``storage``/``data_dir`` forced), attaches each
    manifest relation as a shard whose base reads straight from the
    mmap'd segments at the manifest epoch, then replays the journal
    tail — only ops newer than each relation's checkpointed epoch —
    through the ordinary write path.  The result matches exactly what a
    never-crashed index holding the same predicates would answer.
    """
    from ..concurrency.facade import ConcurrentPredicateIndex
    from ..concurrency.shard import RelationShard

    options.pop("storage", None)
    options.pop("data_dir", None)
    index = ConcurrentPredicateIndex(storage="disk", data_dir=data_dir, **options)
    try:
        manifest = read_manifest(data_dir)
    except CorruptSnapshotError:
        manifest = {}  # torn manifest: journal-only recovery below
    for relation, entry in manifest.items():
        base = index._index_factory()
        idents = _attach_relation(base, relation, entry, data_dir)
        base.freeze()
        shard = RelationShard(
            relation,
            index._index_factory,
            compaction_threshold=index._compaction_threshold,
            publish_hooks=index._publish_hooks,
            initial_base=base,
            initial_epoch=int(entry["epoch"]),
        )
        index._adopt_shard(relation, shard, idents)
    manifest_epochs = {
        relation: int(entry["epoch"]) for relation, entry in manifest.items()
    }
    for op in read_journal(os.path.join(data_dir, JOURNAL_NAME)):
        relation = op.get("relation")
        if int(op.get("epoch", 0)) <= manifest_epochs.get(relation, 0):
            continue
        if op.get("op") == "add":
            index.add(predicate_from_dict(op["pred"]))
        elif op.get("op") == "remove":
            index.remove(_dec(op["ident"]))
    return index
