"""Deterministic concurrency test harness.

Concurrency bugs are the crash bugs of PR 2 all over again: rare,
schedule-dependent, and useless in a bug report unless they reproduce.
:mod:`repro.testing.faults` made crashes replayable from a seed; this
module does the same for thread interleavings, with three pieces:

:class:`InterleavingScheduler`
    A seeded cooperative scheduler.  Logical threads are real threads,
    but only **one runs at a time**: each runs until its next
    :meth:`~InterleavingScheduler.step` call, then the scheduler's
    seeded RNG picks who goes next.  Same seed ⇒ same schedule ⇒ same
    interleaving ⇒ same failure, every run.

:class:`EpochChecker`
    A linearizability-style checker for epoch-published structures.
    Writers' publications are recorded as ``(epoch, kind, payload)``
    operations (for the concurrent facade this happens automatically
    via :meth:`ConcurrentPredicateIndex.on_publish`); readers record
    ``(epoch, probe, observed)`` observations.  Verification replays
    the operation log serially and asserts every observation equals
    the replayed state at its epoch — any torn read, lost update, or
    stale-epoch publication shows up as a
    :class:`~repro.errors.ConcurrencyViolation`.

:class:`StressDriver`
    A barrier-driven stress run over a ``ConcurrentPredicateIndex``:
    N true writer threads and M true reader threads released
    simultaneously, each executing a per-thread seeded op script, with
    every publication and observation recorded for the checker.  Used
    by the differential tests and the CI ``concurrency-stress`` job.
"""

from __future__ import annotations

import random
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.ibs_tree import IBSTree
from ..core.intervals import Interval
from ..core.predicate_index import PredicateIndex, TreeFactory
from ..errors import ConcurrencyError, ConcurrencyViolation
from ..predicates.clauses import IntervalClause
from ..predicates.predicate import Predicate

__all__ = [
    "InterleavingScheduler",
    "EpochChecker",
    "Violation",
    "PredicateIndexReplayer",
    "SetReplayer",
    "StressDriver",
]


# ----------------------------------------------------------------------
# seeded interleaving scheduler
# ----------------------------------------------------------------------


class _LogicalThread:
    __slots__ = ("name", "thread", "go", "parked", "finished", "error")

    def __init__(self, name: str):
        self.name = name
        self.thread: Optional[threading.Thread] = None
        #: scheduler -> thread: you may run
        self.go = threading.Event()
        #: thread -> scheduler: I reached a step point (or finished)
        self.parked = threading.Event()
        self.finished = False
        self.error: Optional[BaseException] = None


class InterleavingScheduler:
    """Seeded cooperative scheduler for deterministic interleavings.

    Spawn logical threads with :meth:`spawn`, sprinkle
    :meth:`step` calls at the points where a context switch should be
    possible, then :meth:`run`.  Exactly one logical thread executes at
    any moment; between two of its ``step`` calls a thread runs
    *atomically* with respect to the others.  The schedule — the
    sequence of thread names chosen — is fully determined by the seed,
    so a failing interleaving replays exactly.

    ``step()`` called from a thread the scheduler does not manage
    (including the main thread outside :meth:`run`) is a no-op, so
    shared code may call it unconditionally.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._threads: List[_LogicalThread] = []
        self._local = threading.local()
        self._started = False
        #: thread names in the order the scheduler granted them a slice.
        self.schedule: List[str] = []

    def spawn(
        self, fn: Callable[..., Any], *args: Any, name: Optional[str] = None
    ) -> str:
        """Register *fn(*args)* as a logical thread; returns its name."""
        if self._started:
            raise ConcurrencyError("cannot spawn after run() started")
        lt = _LogicalThread(name or f"t{len(self._threads)}")
        if any(existing.name == lt.name for existing in self._threads):
            raise ConcurrencyError(f"duplicate logical thread name {lt.name!r}")

        def body() -> None:
            self._local.current = lt
            lt.go.wait()
            lt.go.clear()
            try:
                fn(*args)
            except BaseException as exc:  # surfaced by run()
                lt.error = exc
            finally:
                lt.finished = True
                lt.parked.set()

        lt.thread = threading.Thread(target=body, name=lt.name, daemon=True)
        self._threads.append(lt)
        return lt.name

    def step(self) -> None:
        """Yield point: pause here and let the scheduler pick again."""
        lt = getattr(self._local, "current", None)
        if lt is None:
            return
        lt.parked.set()
        lt.go.wait()
        lt.go.clear()

    def run(self, max_slices: int = 100_000) -> List[str]:
        """Drive all logical threads to completion; returns the schedule.

        Raises the first spawned-thread exception after every thread
        has finished (deterministic: the schedule fixes which thread
        fails first), or :class:`~repro.errors.ConcurrencyError` if
        *max_slices* scheduling decisions did not finish the run
        (deadlock / livelock guard).
        """
        if self._started:
            raise ConcurrencyError("run() may only be called once")
        self._started = True
        for lt in self._threads:
            assert lt.thread is not None
            lt.thread.start()
        runnable = list(self._threads)
        slices = 0
        while runnable:
            if slices >= max_slices:
                raise ConcurrencyError(
                    f"schedule exceeded {max_slices} slices; "
                    "likely deadlock or livelock"
                )
            slices += 1
            lt = runnable[self._rng.randrange(len(runnable))]
            self.schedule.append(lt.name)
            lt.parked.clear()
            lt.go.set()
            lt.parked.wait()
            if lt.finished:
                runnable.remove(lt)
        for lt in self._threads:
            assert lt.thread is not None
            lt.thread.join()
            if lt.error is not None:
                raise lt.error
        return list(self.schedule)


# ----------------------------------------------------------------------
# epoch checker
# ----------------------------------------------------------------------


class Violation:
    """One observation that no serial replay can explain."""

    __slots__ = ("channel", "epoch", "probe", "observed", "expected")

    def __init__(
        self,
        channel: str,
        epoch: int,
        probe: Any,
        observed: frozenset,
        expected: frozenset,
    ):
        self.channel = channel
        self.epoch = epoch
        self.probe = probe
        self.observed = observed
        self.expected = expected

    def __str__(self) -> str:
        missing = sorted(map(str, self.expected - self.observed))
        extra = sorted(map(str, self.observed - self.expected))
        return (
            f"[{self.channel}@{self.epoch}] probe {self.probe!r}: "
            f"missing={missing} extra={extra}"
        )

    def __repr__(self) -> str:
        return f"<Violation {self}>"


class SetReplayer:
    """Trivial replayer: a channel whose state is a set of items.

    ``("add", x)`` inserts, ``("remove", x)`` discards, anything else
    is a content-preserving publication (compaction and the like).
    Queries ignore the probe and return the whole set — the right
    shape for toy registers in harness self-tests.
    """

    def __init__(self) -> None:
        self._items: set = set()

    def apply(self, kind: str, payload: Any) -> None:
        if kind == "add":
            self._items.add(payload)
        elif kind == "remove":
            self._items.discard(payload)

    def query(self, probe: Any) -> frozenset:
        return frozenset(self._items)


class PredicateIndexReplayer:
    """Serial replay of one relation's publication log.

    Applies ``("add", Predicate)`` / ``("remove", ident)`` to a plain
    single-threaded :class:`PredicateIndex` — the paper's structure,
    trusted ground truth — and answers queries with
    ``match_idents``.  ``"compact"`` / ``"rebuild"`` publications do
    not change contents and are ignored.
    """

    def __init__(self, relation: str, tree_factory: TreeFactory = IBSTree):
        self.relation = relation
        self._index = PredicateIndex(tree_factory=tree_factory)

    def apply(self, kind: str, payload: Any) -> None:
        if kind == "add":
            self._index.add(payload)
        elif kind == "remove":
            self._index.remove(payload)

    def query(self, probe: Mapping[str, Any]) -> frozenset:
        return frozenset(self._index.match_idents(self.relation, probe))


class _Channel:
    __slots__ = ("ops", "observations", "lock")

    def __init__(self) -> None:
        #: ``(epoch, kind, payload)`` in publication order
        self.ops: List[Tuple[int, str, Any]] = []
        #: ``(epoch, probe, observed)`` in arbitrary reader order
        self.observations: List[Tuple[int, Any, frozenset]] = []
        self.lock = threading.Lock()


class EpochChecker:
    """Validate epoch-stamped reads against a serial op-log replay.

    One *channel* per independently-published structure (for the
    concurrent facade: one per relation shard).  Thread-safe on the
    recording side; :meth:`verify` is called after the threads join.
    """

    def __init__(self) -> None:
        self._channels: Dict[str, _Channel] = {}
        self._catalog_lock = threading.Lock()

    def _channel(self, name: str) -> _Channel:
        channel = self._channels.get(name)
        if channel is None:
            with self._catalog_lock:
                channel = self._channels.setdefault(name, _Channel())
        return channel

    # -- recording (thread-safe) ---------------------------------------

    def record_op(self, channel: str, epoch: int, kind: str, payload: Any) -> None:
        """Record a publication.  For the facade, wire via :meth:`attach`."""
        ch = self._channel(channel)
        with ch.lock:
            ch.ops.append((epoch, kind, payload))

    def record_observation(
        self, channel: str, epoch: int, probe: Any, observed: frozenset
    ) -> None:
        """Record a read: *observed* was served by *epoch*."""
        ch = self._channel(channel)
        with ch.lock:
            ch.observations.append((epoch, probe, frozenset(observed)))

    def attach(self, facade: Any) -> None:
        """Subscribe to a ``ConcurrentPredicateIndex``'s publications."""
        facade.on_publish(self.record_op)

    # -- verification --------------------------------------------------

    def ops(self, channel: str) -> List[Tuple[int, str, Any]]:
        """The recorded publication log for *channel* (publication order)."""
        return list(self._channel(channel).ops)

    def observation_count(self) -> int:
        return sum(len(ch.observations) for ch in self._channels.values())

    def verify(
        self, replayer_factory: Callable[[str], Any]
    ) -> List[Violation]:
        """Replay every channel serially; return all divergent reads.

        *replayer_factory* maps a channel name to a fresh replayer
        (``apply(kind, payload)`` + ``query(probe) -> frozenset``).
        For each channel the op log is checked for epoch monotonicity,
        then observations are validated in epoch order against the
        replayed state at their epoch.
        """
        violations: List[Violation] = []
        for name, ch in sorted(self._channels.items()):
            epochs = [epoch for epoch, _, _ in ch.ops]
            if epochs != sorted(epochs) or len(set(epochs)) != len(epochs):
                raise ConcurrencyError(
                    f"channel {name!r} publication log is not strictly "
                    f"monotone: {epochs[:20]}…"
                )
            replayer = replayer_factory(name)
            pending = sorted(
                range(len(ch.observations)),
                key=lambda i: ch.observations[i][0],
            )
            op_pos = 0
            for index in pending:
                epoch, probe, observed = ch.observations[index]
                while op_pos < len(ch.ops) and ch.ops[op_pos][0] <= epoch:
                    _, kind, payload = ch.ops[op_pos]
                    replayer.apply(kind, payload)
                    op_pos += 1
                expected = replayer.query(probe)
                if expected != observed:
                    violations.append(
                        Violation(name, epoch, probe, observed, expected)
                    )
        return violations

    def assert_ok(self, replayer_factory: Callable[[str], Any]) -> None:
        """Raise :class:`ConcurrencyViolation` if any read diverges."""
        violations = self.verify(replayer_factory)
        if violations:
            raise ConcurrencyViolation(violations)


# ----------------------------------------------------------------------
# barrier-driven stress driver
# ----------------------------------------------------------------------


def _interval_predicate(
    relation: str, attribute: str, ident: Hashable, low: int, width: int
) -> Predicate:
    return Predicate(
        relation,
        [IntervalClause(attribute, Interval.closed(low, low + width))],
        ident=ident,
    )


class StressDriver:
    """N seeded writers + M seeded readers against a concurrent facade.

    Every thread's op script is derived from ``seed`` and its thread
    number, all threads are released by one :class:`threading.Barrier`,
    and every publication/observation lands in an
    :class:`EpochChecker`.  The *interleaving* of true threads is not
    deterministic (that is the point — it explores real schedules), but
    the *verdict* is: whatever interleaving occurred, every observed
    read must equal the serial replay of the publication log at its
    epoch.  Use :class:`InterleavingScheduler` instead when a specific
    interleaving must replay exactly.

    Parameters are deliberately small-scale by default; CI's
    ``concurrency-stress`` job runs bigger shapes with pinned seeds.
    """

    def __init__(
        self,
        facade: Any,
        relations: Sequence[str] = ("r",),
        attributes: Sequence[str] = ("x", "y"),
        writers: int = 4,
        readers: int = 8,
        writer_ops: int = 60,
        reader_ops: int = 120,
        domain: int = 200,
        max_width: int = 30,
        seed: int = 0,
        checker: Optional[EpochChecker] = None,
    ):
        if writers < 1 or readers < 1:
            raise ConcurrencyError("need at least one writer and one reader")
        self.facade = facade
        self.relations = list(relations)
        self.attributes = list(attributes)
        self.writers = writers
        self.readers = readers
        self.writer_ops = writer_ops
        self.reader_ops = reader_ops
        self.domain = domain
        self.max_width = max_width
        self.seed = seed
        self.checker = checker if checker is not None else EpochChecker()
        self.checker.attach(facade)
        self._errors: List[Tuple[str, BaseException]] = []

    # -- thread bodies -------------------------------------------------

    def _writer(self, writer_id: int, barrier: threading.Barrier) -> None:
        # string seed: random.seed hashes str via sha512, stable across
        # processes (a tuple seed would go through randomized hash()).
        rng = random.Random(f"{self.seed}-writer-{writer_id}")
        live: List[Hashable] = []
        barrier.wait()
        for op_no in range(self.writer_ops):
            if live and rng.random() < 0.35:
                ident = live.pop(rng.randrange(len(live)))
                self.facade.remove(ident)
            else:
                relation = rng.choice(self.relations)
                attribute = rng.choice(self.attributes)
                low = rng.randrange(self.domain)
                width = rng.randrange(1, self.max_width)
                ident = f"w{writer_id}-{op_no}"
                self.facade.add(
                    _interval_predicate(relation, attribute, ident, low, width)
                )
                live.append(ident)

    def _reader(self, reader_id: int, barrier: threading.Barrier) -> None:
        rng = random.Random(f"{self.seed}-reader-{reader_id}")
        barrier.wait()
        for _ in range(self.reader_ops):
            relation = rng.choice(self.relations)
            attribute = rng.choice(self.attributes)
            probe = {attribute: rng.randrange(self.domain + self.max_width)}
            epoch, idents = self.facade.match_idents_at(relation, probe)
            self.checker.record_observation(relation, epoch, probe, idents)

    def _wrap(
        self, name: str, fn: Callable[..., None], *args: Any
    ) -> threading.Thread:
        def body() -> None:
            try:
                fn(*args)
            except BaseException as exc:
                self._errors.append((name, exc))

        return threading.Thread(target=body, name=name, daemon=True)

    # -- driving -------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Run the stress shape to completion and verify every read.

        Returns a report dict; raises the first worker exception, or
        :class:`~repro.errors.ConcurrencyViolation` if any observation
        diverges from its epoch's serial replay.
        """
        barrier = threading.Barrier(self.writers + self.readers)
        threads = [
            self._wrap(f"writer-{i}", self._writer, i, barrier)
            for i in range(self.writers)
        ] + [
            self._wrap(f"reader-{j}", self._reader, j, barrier)
            for j in range(self.readers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self._errors:
            name, error = self._errors[0]
            raise ConcurrencyError(f"thread {name} failed: {error!r}") from error
        tree_factory = getattr(self.facade, "_tree_factory", IBSTree)
        self.checker.assert_ok(
            lambda relation: PredicateIndexReplayer(relation, tree_factory)
        )
        return {
            "writers": self.writers,
            "readers": self.readers,
            "seed": self.seed,
            "observations": self.checker.observation_count(),
            "publications": {
                relation: len(self.checker.ops(relation))
                for relation in self.relations
            },
            "epochs": dict(self.facade.epochs()),
        }
