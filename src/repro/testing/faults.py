"""Deterministic fault injection for failure-handling tests.

The fault-tolerance layer (transactions, retry/quarantine, crash-safe
persistence, index self-healing) is only trustworthy if failures can be
*provoked on demand* at the exact moments the code is most vulnerable:
between the two marker-placement passes of an IBS-tree insert, after a
snapshot's temp file is written but before it is renamed into place,
halfway through a structural node deletion.  This module provides that
provocation, deterministically.

Production modules declare **injection sites** by calling
:func:`fault_point` with a site name from :data:`FAULT_SITES`.  With no
injector installed (the normal case) a fault point is a global load and
a ``None`` check — cheap enough to live on mutation paths, and absent
from the stabbing-query hot path entirely.  Tests install a
:class:`FaultInjector` and arm sites either

* **deterministically** — ``injector.arm("tree.insert", at_hit=3)``
  raises :class:`~repro.errors.InjectedFault` on exactly the third time
  that site is reached; or
* **pseudo-randomly** — ``FaultInjector(seed=7, rate=0.05,
  sites=["tree.delete"])`` fires with probability 0.05 per hit, from a
  seeded RNG, so a failing schedule is perfectly reproducible from its
  seed.

Example::

    from repro.testing import FaultInjector, injected

    injector = FaultInjector()
    injector.arm("persist.replace")          # first rename attempt dies
    with injected(injector):
        with pytest.raises(InjectedFault):
            save_database(db, path)
    assert load_database(path)               # old snapshot intact

By default an injector stops after one fault (``max_faults=1``) so
recovery code that re-runs an instrumented path — e.g. a rebuild that
re-inserts intervals — does not trip the same site again while healing.
"""

from __future__ import annotations

import difflib
import random
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import InjectedFault

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "active_injector",
    "fault_point",
    "injected",
    "install",
    "uninstall",
]

#: Every injection site compiled into the production code, by layer.
#: Tests iterate this registry to prove each site has a recovery story.
FAULT_SITES: Tuple[str, ...] = (
    # index layer: between addLeft and addRight of an interval insert,
    # mid structural node deletion, mid rotation marker rewrite, and
    # after a bulk load links its balanced structure but before any
    # markers are placed
    "tree.insert",
    "tree.delete",
    "tree.rotate",
    "tree.bulk_load",
    # persistence layer: while writing the temp snapshot, before fsync,
    # before the atomic rename, and while appending a journal record
    "persist.write",
    "persist.fsync",
    "persist.replace",
    "journal.append",
    # engine layer: at the moment a rule action is invoked
    "engine.action",
    # process-parallel matching tier: a shard worker SIGKILLed after a
    # batch is dispatched but before it replies, a worker that hangs
    # past the per-batch deadline, a torn/corrupted IPC frame, and a
    # shared-memory segment unlinked while a worker still needs it.
    # These sites fire on the supervisor side and are converted into
    # the *real* failure (an actual SIGKILL, an actual oversized sleep,
    # an actually corrupted frame, an actual early unlink), so the
    # recovery they exercise is genuine, not simulated.
    "worker.kill_before_reply",
    "worker.hang",
    "ipc.corrupt_frame",
    "shm.unlink_early",
    # disk tier: a segment write torn halfway through its payload (the
    # temp file is abandoned, the target untouched), a checkpoint that
    # crashes after writing new-generation segments but before the
    # manifest is published, and a segment file unlinked while a reader
    # still has it mmap'd.  Like the worker sites, ``disk.mmap_unlink``
    # is converted into the *real* failure — an actual unlink of a
    # manifest-referenced segment — so the recovery it exercises
    # (serving reads from the surviving mapping, then rebuilding the
    # attribute from the predicate log at the next cold start) is
    # genuine.
    "disk.torn_segment",
    "disk.partial_checkpoint",
    "disk.mmap_unlink",
    # maintenance plane: a scheduled task that raises just as the
    # scheduler dispatches it (must land in the dead-letter list, never
    # in the match path), a backend migration interrupted before its
    # commit point (the transactional swap must leave the old tree
    # live), and a budgeted checkpoint preempted between shards (the
    # manifest published so far plus the journal tail must still
    # recover every predicate).
    "maint.task_raises",
    "maint.tick_during_migration",
    "maint.checkpoint_preempted",
)

_FAULT_SITE_SET = frozenset(FAULT_SITES)

#: The installed injector; ``None`` means every fault point is inert.
_ACTIVE: Optional["FaultInjector"] = None


class FaultInjector:
    """A seedable source of :class:`~repro.errors.InjectedFault` failures.

    Parameters
    ----------
    seed:
        Seed for the pseudo-random firing mode; the full fault schedule
        is a pure function of ``(seed, rate, sites, hit order)``.
    rate:
        Per-hit firing probability for sites enabled via ``sites``.
        Zero (the default) disables random firing; deterministic
        :meth:`arm` triggers still apply.
    sites:
        The sites subject to random firing.  Ignored when ``rate`` is 0.
    max_faults:
        Total faults this injector will ever raise; ``None`` means
        unlimited.  The default of 1 keeps recovery paths that re-run
        instrumented code from being re-injected mid-heal.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.0,
        sites: Optional[Iterable[str]] = None,
        max_faults: Optional[int] = 1,
    ):
        self.seed = seed
        self.rate = rate
        self.sites: Set[str] = set(sites) if sites is not None else set()
        for site in self.sites:
            _check_site(site)
        self.max_faults = max_faults
        self._rng = random.Random(seed)
        self._armed: Dict[str, List[int]] = {}
        #: site -> how many times the site has been reached
        self.hits: Dict[str, int] = {}
        #: ``(site, hit_number)`` of every fault actually raised
        self.fired: List[Tuple[str, int]] = []
        self._suspended = 0

    # -- arming ---------------------------------------------------------

    def arm(self, site: str, at_hit: int = 1, count: int = 1) -> "FaultInjector":
        """Schedule deterministic faults at *site*.

        The fault fires on the ``at_hit``-th time the site is reached
        (1-based, counted from installation) and on the ``count - 1``
        following hits.  Returns ``self`` so arms can be chained.
        """
        _check_site(site)
        if at_hit < 1 or count < 1:
            raise ValueError("at_hit and count must be >= 1")
        self._armed.setdefault(site, []).extend(
            range(at_hit, at_hit + count)
        )
        return self

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily disable firing (hits are still counted)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # -- firing ---------------------------------------------------------

    def hit(self, site: str) -> None:
        """Record one arrival at *site*; raise if a fault is due."""
        n = self.hits.get(site, 0) + 1
        self.hits[site] = n
        if self._suspended:
            return
        if self.max_faults is not None and len(self.fired) >= self.max_faults:
            return
        due = self._armed.get(site)
        if due and n in due:
            due.remove(n)
        elif not (
            self.rate > 0.0
            and site in self.sites
            and self._rng.random() < self.rate
        ):
            return
        self.fired.append((site, n))
        raise InjectedFault(site, n)

    @property
    def fault_count(self) -> int:
        """Number of faults raised so far."""
        return len(self.fired)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.seed} rate={self.rate} "
            f"fired={len(self.fired)} hits={sum(self.hits.values())}>"
        )


def _check_site(site: str) -> None:
    """Reject unknown site names (called at construction AND arm time).

    Validating when a site is *armed* — not just when it is eventually
    hit — means a seeded CI drill that misspells a site fails loudly at
    setup instead of silently never firing.  The message names the
    nearest registered site so the typo is diagnosable from the CI log
    alone.
    """
    if site not in _FAULT_SITE_SET:
        close = difflib.get_close_matches(site, FAULT_SITES, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ValueError(
            f"unknown fault site {site!r}{hint}; registered sites: "
            f"{', '.join(FAULT_SITES)}"
        )


# ----------------------------------------------------------------------
# installation: one process-wide injector, explicitly scoped
# ----------------------------------------------------------------------


def install(injector: FaultInjector) -> FaultInjector:
    """Make *injector* the active injector for all fault points."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Deactivate fault injection; every fault point becomes inert."""
    global _ACTIVE
    _ACTIVE = None


def active_injector() -> Optional[FaultInjector]:
    """The currently installed injector, if any."""
    return _ACTIVE


@contextmanager
def injected(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install *injector* for the duration of a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    install(injector)
    try:
        yield injector
    finally:
        _ACTIVE = previous


def fault_point(site: str) -> None:
    """Declare an injection site; raises only when an injector is armed.

    This is the single hook production code calls.  Inert unless a
    :class:`FaultInjector` is installed, in which case the injector
    decides — deterministically — whether this particular arrival
    fails.
    """
    injector = _ACTIVE
    if injector is not None:
        injector.hit(site)
