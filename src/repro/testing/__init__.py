"""Test-support utilities shipped with the package.

Currently this holds the deterministic fault-injection harness
(:mod:`repro.testing.faults`).  It lives inside ``repro`` rather than
the test tree because the production modules must carry the injection
*sites* — cheap, inert hooks compiled into tree mutation, persistence
I/O, and action execution — while the *injector* that arms them is only
ever installed by tests and failure drills.
"""

from .faults import (
    FAULT_SITES,
    FaultInjector,
    active_injector,
    fault_point,
    injected,
    install,
    uninstall,
)

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "active_injector",
    "fault_point",
    "injected",
    "install",
    "uninstall",
]
