"""Test-support utilities shipped with the package.

This holds the deterministic fault-injection harness
(:mod:`repro.testing.faults`) and the deterministic concurrency harness
(:mod:`repro.testing.concurrency`).  They live inside ``repro`` rather
than the test tree because the production modules must carry the
injection *sites* and publication *hooks* — cheap, inert instrumentation
compiled into tree mutation, persistence I/O, action execution, and
epoch publication — while the injectors, schedulers, and checkers that
arm them are only ever installed by tests and failure drills.
"""

from .faults import (
    FAULT_SITES,
    FaultInjector,
    active_injector,
    fault_point,
    injected,
    install,
    uninstall,
)

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "active_injector",
    "fault_point",
    "injected",
    "install",
    "uninstall",
    "InterleavingScheduler",
    "EpochChecker",
    "Violation",
    "PredicateIndexReplayer",
    "SetReplayer",
    "StressDriver",
]

#: names served lazily from :mod:`repro.testing.concurrency` — the
#: production tree modules import ``repro.testing.faults`` at import
#: time, so an eager import here would be circular (ibs_tree ->
#: testing -> concurrency -> ibs_tree).
_CONCURRENCY_EXPORTS = frozenset(
    [
        "InterleavingScheduler",
        "EpochChecker",
        "Violation",
        "PredicateIndexReplayer",
        "SetReplayer",
        "StressDriver",
    ]
)


def __getattr__(name: str):
    if name in _CONCURRENCY_EXPORTS:
        from . import concurrency

        return getattr(concurrency, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
