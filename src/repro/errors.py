"""Exception hierarchy for the ``repro`` package.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch the whole family with a single ``except`` clause.
The hierarchy mirrors the package layout: interval/tree errors, predicate
and language errors, database errors, and rule-engine errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "IntervalError",
    "TreeError",
    "UnknownIntervalError",
    "DuplicateIntervalError",
    "TreeInvariantError",
    "PredicateError",
    "ClauseError",
    "ParseError",
    "LexError",
    "DatabaseError",
    "SchemaError",
    "UnknownRelationError",
    "UnknownAttributeError",
    "TupleError",
    "RuleError",
    "UnknownRuleError",
    "DuplicateRuleError",
    "RuleCycleError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class IntervalError(ReproError, ValueError):
    """An interval was constructed with inconsistent bounds.

    Raised, for example, when ``low > high`` or when a degenerate
    interval (``low == high``) has an open endpoint, which would denote
    the empty set.
    """


class TreeError(ReproError):
    """Base class for errors raised by interval index structures."""


class UnknownIntervalError(TreeError, KeyError):
    """An operation referenced an interval identifier not in the index."""


class DuplicateIntervalError(TreeError, KeyError):
    """An interval identifier was inserted twice into the same index."""


class TreeInvariantError(TreeError, AssertionError):
    """An internal structural invariant of a tree was violated.

    This is raised only by explicit ``validate()`` calls (used heavily in
    the test suite); it indicates a bug in the library, never bad user
    input.
    """


class PredicateError(ReproError):
    """Base class for errors in predicate construction or evaluation."""


class ClauseError(PredicateError, ValueError):
    """A predicate clause was malformed (bad operator, bad bounds...)."""


class LexError(PredicateError, ValueError):
    """The predicate-language lexer met an unexpected character."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(PredicateError, ValueError):
    """The predicate-language parser met an unexpected token."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class DatabaseError(ReproError):
    """Base class for errors raised by the main-memory DBMS substrate."""


class SchemaError(DatabaseError, ValueError):
    """A relation schema was malformed or violated."""


class UnknownRelationError(DatabaseError, KeyError):
    """A relation name was referenced that is not in the catalog."""


class UnknownAttributeError(DatabaseError, KeyError):
    """An attribute name was referenced that is not in a schema."""


class TupleError(DatabaseError, ValueError):
    """A tuple did not conform to its relation's schema."""


class RuleError(ReproError):
    """Base class for errors raised by the rule engine."""


class UnknownRuleError(RuleError, KeyError):
    """A rule name was referenced that is not registered."""


class DuplicateRuleError(RuleError, KeyError):
    """A rule name was registered twice."""


class RuleCycleError(RuleError, RuntimeError):
    """Rule firing failed to reach a fixpoint within the firing limit."""


class WorkloadError(ReproError, ValueError):
    """A workload generator was configured with inconsistent parameters."""
