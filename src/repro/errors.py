"""Exception hierarchy for the ``repro`` package.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch the whole family with a single ``except`` clause.
The hierarchy mirrors the package layout: interval/tree errors, predicate
and language errors, database errors, and rule-engine errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "IntervalError",
    "TreeError",
    "UnknownIntervalError",
    "DuplicateIntervalError",
    "TreeInvariantError",
    "PredicateError",
    "ClauseError",
    "ParseError",
    "LexError",
    "DatabaseError",
    "SchemaError",
    "UnknownRelationError",
    "UnknownAttributeError",
    "TupleError",
    "TransactionError",
    "CorruptSnapshotError",
    "CorruptSegmentError",
    "RuleError",
    "UnknownRuleError",
    "DuplicateRuleError",
    "RuleCycleError",
    "ActionQuarantinedError",
    "WorkloadError",
    "RegistryError",
    "ConcurrencyError",
    "ConcurrencyViolation",
    "ParallelError",
    "FrameError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class IntervalError(ReproError, ValueError):
    """An interval was constructed with inconsistent bounds.

    Raised, for example, when ``low > high`` or when a degenerate
    interval (``low == high``) has an open endpoint, which would denote
    the empty set.
    """


class TreeError(ReproError):
    """Base class for errors raised by interval index structures."""


class UnknownIntervalError(TreeError, KeyError):
    """An operation referenced an interval identifier not in the index."""


class DuplicateIntervalError(TreeError, KeyError):
    """An interval identifier was inserted twice into the same index."""


class TreeInvariantError(TreeError, AssertionError):
    """An internal structural invariant of a tree was violated.

    This is raised only by explicit ``validate()`` calls (used heavily in
    the test suite); it indicates a bug in the library, never bad user
    input.
    """


class PredicateError(ReproError):
    """Base class for errors in predicate construction or evaluation."""


class ClauseError(PredicateError, ValueError):
    """A predicate clause was malformed (bad operator, bad bounds...)."""


class LexError(PredicateError, ValueError):
    """The predicate-language lexer met an unexpected character."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(PredicateError, ValueError):
    """The predicate-language parser met an unexpected token."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class DatabaseError(ReproError):
    """Base class for errors raised by the main-memory DBMS substrate."""


class SchemaError(DatabaseError, ValueError):
    """A relation schema was malformed or violated."""


class UnknownRelationError(DatabaseError, KeyError):
    """A relation name was referenced that is not in the catalog."""


class UnknownAttributeError(DatabaseError, KeyError):
    """An attribute name was referenced that is not in a schema."""


class TupleError(DatabaseError, ValueError):
    """A tuple did not conform to its relation's schema."""


class TransactionError(DatabaseError, RuntimeError):
    """A transactional mutation context was misused.

    Raised, for example, when rollback is requested on a transaction
    that already committed, or when transaction bookkeeping detects it
    cannot undo an applied operation.
    """


class CorruptSnapshotError(DatabaseError, ValueError):
    """A persisted snapshot or journal failed its integrity checks.

    Raised by :mod:`repro.db.persistence` when a snapshot is torn
    (truncated or otherwise not decodable) or its checksum does not
    match its payload — the typed alternative to silently loading
    garbage data after a crash mid-write.
    """


class CorruptSegmentError(CorruptSnapshotError):
    """A disk-tier segment file failed its integrity checks.

    Raised by :mod:`repro.disk.segment` when a segment is torn
    (truncated mid-write), carries a bad magic/version, or its payload
    checksum does not match its header and footer.  Subclasses
    :class:`CorruptSnapshotError` so recovery code that already treats
    corrupt persistence artifacts as "rebuild from the journal" handles
    segments the same way.
    """


class RuleError(ReproError):
    """Base class for errors raised by the rule engine."""


class UnknownRuleError(RuleError, KeyError):
    """A rule name was referenced that is not registered."""


class DuplicateRuleError(RuleError, KeyError):
    """A rule name was registered twice."""


class RuleCycleError(RuleError, RuntimeError):
    """Rule firing failed to reach a fixpoint within the firing limit."""


class ActionQuarantinedError(RuleError, RuntimeError):
    """A rule action exhausted its retries and was quarantined.

    Not raised during normal draining — quarantine is silent by design
    so one bad rule cannot abort the agenda — but available for callers
    that re-fire dead-letter entries synchronously and want failures
    surfaced as exceptions.
    """


class WorkloadError(ReproError, ValueError):
    """A workload generator was configured with inconsistent parameters."""


class RegistryError(ReproError, KeyError):
    """An unknown or duplicate name in the backend registry."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message
        return self.args[0] if self.args else ""


class ConcurrencyError(ReproError, RuntimeError):
    """Base class for errors raised by the concurrent matching layer."""


class ConcurrencyViolation(ConcurrencyError, AssertionError):
    """An observed read is inconsistent with the epoch that served it.

    Raised by the epoch checker (:mod:`repro.testing.concurrency`) when
    a recorded observation does not equal the serial replay of the
    operation log up to the observation's epoch — the concurrent
    structure let a reader see a state no sequential execution of the
    published operations could produce.  Carries the full violation
    list so a stress-run failure shows every divergent read, not just
    the first.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "; ".join(str(v) for v in self.violations[:5])
        more = len(self.violations) - 5
        if more > 0:
            lines += f"; … and {more} more"
        super().__init__(
            f"{len(self.violations)} observation(s) diverge from their epoch: {lines}"
        )


class ParallelError(ConcurrencyError):
    """Base class for errors raised by the multiprocess matching tier.

    The process tier treats most failures (worker crash, hang, torn
    frame, missing shared-memory segment) as *recoverable* — it retries
    on a fresh worker or falls back to the in-process path — so these
    errors mostly travel internally; callers only see one when the tier
    is misused (e.g. dispatching through a closed pool).
    """


class FrameError(ParallelError, ValueError):
    """An IPC frame failed its length or CRC check.

    Raised by :mod:`repro.parallel.framing` when a message read off a
    worker pipe is truncated, oversized, or fails checksum validation.
    A frame error on a reply marks the worker as untrustworthy (it is
    killed and replaced); a frame error on a request is rejected by the
    worker without side effects and the batch is retried.
    """


class InjectedFault(ReproError, RuntimeError):
    """An artificial failure raised by the fault-injection harness.

    Only ever raised when a :class:`repro.testing.faults.FaultInjector`
    is installed and armed — production code paths never construct it
    themselves.  Carries the injection site name and the hit counter at
    which the fault fired, so tests can assert exactly where a failure
    was introduced.
    """

    def __init__(self, site: str, hit: int = 0):
        super().__init__(f"injected fault at site {site!r} (hit #{hit})")
        self.site = site
        self.hit = hit
