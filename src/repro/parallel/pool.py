"""Process-pool matching: publish once, fan out, merge deterministically.

:class:`ProcessMatchPool` is the parent-side orchestrator of the
process tier.  One ``match_batch`` call:

1. **publishes** the snapshot's frozen base into shared memory — once
   per base *generation* (keyed by object identity under a held strong
   reference), not per epoch, because only compaction changes the base;
   the small overlay rides inline in each request frame;
2. **splits** the tuple batch into per-worker chunks, dispatches each
   over a CRC-framed pipe, and waits on the pipe *and* the worker's
   exit sentinel under a per-chunk deadline;
3. **recovers** from anything a worker can do wrong — crash before
   replying, hang past the deadline, return a torn frame, miss a
   reclaimed segment — by killing/retrying once on a fresh worker and
   then answering the chunk in-process, so a caller-visible result is
   *always* produced and always equals the serial answer;
4. **merges** chunk results in batch order.  Workers return predicate
   identifiers; the parent maps them back onto its own
   :class:`~repro.predicates.predicate.Predicate` objects via a
   per-epoch map, so result object identity matches the in-process
   path exactly.

``match_batch`` returns ``None`` (rather than raising) whenever the
tier cannot help — pool closed or degraded, shared memory unavailable,
batch too small, no worker obtainable — and the facade falls back to
its thread/inline path.  Degradation is a result-preserving latency
change, never a behaviour change.
"""

from __future__ import annotations

import pickle
import threading
import time
import weakref
from collections import OrderedDict
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import FrameError, InjectedFault
from ..predicates.predicate import Predicate
from ..testing.faults import fault_point
from .framing import decode_frame, encode_frame
from .shm import SegmentRegistry, shared_memory_available
from .supervisor import QuarantinedBatch, WorkerHandle, WorkerSupervisor

__all__ = ["ProcessMatchPool"]

#: Per-epoch ident->Predicate maps kept alive (LRU).
_IDENT_MAP_CACHE = 8

#: Published base generations (and their pickled segments) kept per
#: relation; matches SegmentRegistry's default so a reader mid-batch on
#: the previous generation still resolves.
_KEEP_GENERATIONS = 2

#: Soft (non-fatal) retries per chunk — reject replies such as
#: ``shm-missing`` / ``bad-frame`` where the worker is healthy.
_SOFT_RETRY_LIMIT = 2


class _Chunk:
    """Dispatch state for one contiguous slice of the batch."""

    __slots__ = ("index", "tuples", "seq", "kills", "soft", "deadline", "drill")

    def __init__(self, index: int, tuples: Sequence[Mapping[str, Any]]):
        self.index = index
        self.tuples = tuples
        self.seq = -1
        self.kills = 0
        self.soft = 0
        self.deadline = 0.0
        #: whether the corrupt-frame drill may still fire for this
        #: chunk (disabled on the clean resend so drills terminate)
        self.drill = True


class ProcessMatchPool:
    """Supervised multiprocess matching over shared-memory bases."""

    def __init__(
        self,
        workers: int,
        min_chunk: int = 64,
        deadline: float = 30.0,
        mp_context: Any = None,
        heartbeat_interval: float = 5.0,
        max_restarts: int = 3,
        backoff: float = 0.05,
        keep_generations: int = _KEEP_GENERATIONS,
    ):
        self.min_chunk = max(1, int(min_chunk))
        self.supervisor = WorkerSupervisor(
            workers,
            mp_context=mp_context,
            deadline=deadline,
            heartbeat_interval=heartbeat_interval,
            max_restarts=max_restarts,
            backoff=backoff,
        )
        self.registry = SegmentRegistry(keep_generations=keep_generations)
        self._lock = threading.Lock()
        self._seq = 0
        #: relation -> OrderedDict[token -> (name, length, base strong ref)];
        #: the strong ref pins the base object so its id() cannot be
        #: reused while the publication is live
        self._published: Dict[str, "OrderedDict[int, Tuple[str, int, Any]]"] = {}
        self._keep = max(1, int(keep_generations))
        #: (relation, epoch) -> {ident: Predicate}
        self._ident_maps: "OrderedDict[Tuple[str, int], Dict[Hashable, Predicate]]" = (
            OrderedDict()
        )
        self._closed = False
        # last line of defence for abandoned pools: unlink segments and
        # reap workers at garbage collection / interpreter exit
        self._finalizer = weakref.finalize(
            self, ProcessMatchPool._release, self.supervisor, self.registry
        )

    # -- availability / lifecycle --------------------------------------

    @staticmethod
    def available() -> bool:
        """Whether this platform can run the process tier at all."""
        return shared_memory_available()

    @property
    def degraded(self) -> bool:
        return self.supervisor.degraded

    @property
    def closed(self) -> bool:
        return self._closed

    def degrade(self, reason: str) -> None:
        """Force degraded mode (bench/test hook)."""
        self.supervisor.force_degrade(reason)

    def stats(self) -> Dict[str, Any]:
        stats = self.supervisor.stats()
        stats["segments"] = len(self.registry)
        stats["closed"] = self._closed
        return stats

    def close(self) -> None:
        """Stop workers and unlink every published segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._published.clear()
            self._ident_maps.clear()
        self.supervisor.close()
        self.registry.close()
        self._finalizer.detach()

    @staticmethod
    def _release(supervisor: WorkerSupervisor, registry: SegmentRegistry) -> None:
        try:
            supervisor.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
        registry.close()

    def __enter__(self) -> "ProcessMatchPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- publication ----------------------------------------------------

    def _publish_base(self, snapshot: Any) -> Tuple[str, int, int]:
        """Ensure the snapshot's base is in shared memory.

        Returns ``(segment name, payload length, generation token)``.
        """
        base = snapshot.base
        token = id(base)
        relation = snapshot.relation
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcessMatchPool is closed")
            generations = self._published.setdefault(relation, OrderedDict())
            entry = generations.get(token)
            if entry is not None:
                generations.move_to_end(token)
                return entry[0], entry[1], token
            data = pickle.dumps(base, protocol=pickle.HIGHEST_PROTOCOL)
            name, length = self.registry.publish(relation, token, data)
            generations[token] = (name, length, base)
            while len(generations) > self._keep:
                generations.popitem(last=False)
            return name, length, token

    def _republish(self, snapshot: Any, token: int) -> Tuple[str, int, int]:
        """Drop a stale publication (attach missed) and publish afresh."""
        relation = snapshot.relation
        with self._lock:
            self.registry.forget(relation, token)
            generations = self._published.get(relation)
            if generations is not None:
                generations.pop(token, None)
        return self._publish_base(snapshot)

    def _ident_map(self, snapshot: Any) -> Dict[Hashable, Predicate]:
        """``ident -> Predicate`` over *snapshot*'s live set, cached.

        Workers return identifiers; this map turns them back into the
        parent's own Predicate objects, so result object identity is
        indistinguishable from the in-process path.
        """
        key = (snapshot.relation, snapshot.epoch)
        with self._lock:
            cached = self._ident_maps.get(key)
            if cached is not None:
                self._ident_maps.move_to_end(key)
                return cached
        built = {pred.ident: pred for pred in snapshot.predicates()}
        with self._lock:
            self._ident_maps[key] = built
            while len(self._ident_maps) > _IDENT_MAP_CACHE:
                self._ident_maps.popitem(last=False)
        return built

    def canonical_rows(
        self, snapshot: Any, rows: List[List[Predicate]]
    ) -> List[List[Predicate]]:
        """Sort each row into the snapshot's canonical predicate order."""
        return snapshot.canonical_rows(rows)

    def _inline(
        self, snapshot: Any, tuples: Sequence[Mapping[str, Any]]
    ) -> List[List[Predicate]]:
        """The in-process answer for a chunk, in canonical order."""
        return snapshot.canonical_rows(snapshot.match_batch(tuples))

    # -- dispatch -------------------------------------------------------

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _dispatch(
        self,
        handle: WorkerHandle,
        chunk: _Chunk,
        snapshot: Any,
        publication: Dict[str, Any],
    ) -> bool:
        """Send *chunk* to *handle*; True if the request left the parent."""
        chunk.seq = self._next_seq()
        chunk.deadline = time.monotonic() + self.supervisor.deadline
        msg: Dict[str, Any] = {
            "op": "match",
            "seq": chunk.seq,
            "relation": snapshot.relation,
            "epoch": snapshot.epoch,
            "shm": publication["name"],
            "shm_len": publication["length"],
            "overlay": snapshot.overlay,
            "removed": snapshot.removed,
            "overlay_preds": snapshot.overlay_preds,
            "tuples": list(chunk.tuples),
        }
        # drill: a worker that accepts the batch and then blocks past
        # the deadline — realised as a real oversized sleep worker-side
        try:
            fault_point("worker.hang")
        except InjectedFault:
            msg["hang"] = self.supervisor.deadline * 2 + 0.25
        try:
            data = encode_frame(msg)
            if chunk.drill:
                # drill: a byte torn in transit — flip one for real so
                # the worker's CRC check (and our resend path) runs
                try:
                    fault_point("ipc.corrupt_frame")
                except InjectedFault:
                    torn = bytearray(data)
                    torn[len(torn) // 2] ^= 0xFF
                    data = bytes(torn)
            handle.conn.send_bytes(data)
            handle.dispatches += 1
        except (OSError, ValueError, BrokenPipeError):
            return False
        # drill: a worker that dies after taking the batch — a real
        # SIGKILL, so crash detection and the retry path run for real
        try:
            fault_point("worker.kill_before_reply")
        except InjectedFault:
            handle.process.kill()
        return True

    # -- the tier entry point ------------------------------------------

    def match_batch(
        self, snapshot: Any, tuples: Sequence[Mapping[str, Any]]
    ) -> Optional[List[List[Predicate]]]:
        """Match *tuples* against *snapshot* across the worker pool.

        Returns the per-tuple predicate rows — identical, object for
        object, to ``snapshot.match_batch(tuples)`` — or ``None`` when
        the process tier declines (closed, degraded, unavailable, batch
        too small, or no worker could be checked out).  It never raises
        for worker misbehaviour and never drops a chunk: any chunk the
        pool cannot get answered remotely is answered in-process.
        """
        batch = list(tuples)
        if not batch:
            return []
        if self._closed or self.degraded or not shared_memory_available():
            return None
        if len(batch) < self.min_chunk:
            return None
        try:
            name, length, token = self._publish_base(snapshot)
        except (RuntimeError, OSError, pickle.PicklingError):
            return None
        want = min(self.supervisor.workers, max(1, len(batch) // self.min_chunk))
        handles = self.supervisor.acquire(want)
        if not handles:
            return None
        publication = {"name": name, "length": length, "token": token}
        chunks = self._split(batch, len(handles))
        results: List[Optional[List[List[Predicate]]]] = [None] * len(chunks)
        inflight: Dict[int, Tuple[WorkerHandle, _Chunk]] = {}
        try:
            for handle, chunk in zip(handles, chunks):
                self._launch(handle, chunk, snapshot, publication, inflight, results)
            self._collect(snapshot, publication, inflight, results)
        finally:
            # inflight must be empty here on every path; this is the
            # belt-and-braces for an unexpected exception mid-collect
            for handle, chunk in list(inflight.values()):
                self.supervisor.kill(handle, "dispatch loop aborted")
                if results[chunk.index] is None:
                    results[chunk.index] = self._inline(snapshot, chunk.tuples)
        merged: List[List[Predicate]] = []
        for rows in results:
            assert rows is not None
            merged.extend(rows)
        return merged

    @staticmethod
    def _split(
        batch: Sequence[Mapping[str, Any]], pieces: int
    ) -> List[_Chunk]:
        size, extra = divmod(len(batch), pieces)
        chunks: List[_Chunk] = []
        start = 0
        for index in range(pieces):
            stop = start + size + (1 if index < extra else 0)
            if stop > start:
                chunks.append(_Chunk(len(chunks), batch[start:stop]))
            start = stop
        return chunks

    # -- the recovery state machine ------------------------------------

    def _launch(
        self,
        handle: WorkerHandle,
        chunk: _Chunk,
        snapshot: Any,
        publication: Dict[str, Any],
        inflight: Dict[int, Tuple[WorkerHandle, _Chunk]],
        results: List[Optional[List[List[Predicate]]]],
    ) -> None:
        """Dispatch *chunk* on *handle*, falling to the failure path."""
        if self._dispatch(handle, chunk, snapshot, publication):
            inflight[chunk.index] = (handle, chunk)
        else:
            self._hard_fail(
                handle, chunk, "request pipe broken",
                snapshot, publication, inflight, results,
            )

    def _hard_fail(
        self,
        handle: WorkerHandle,
        chunk: _Chunk,
        reason: str,
        snapshot: Any,
        publication: Dict[str, Any],
        inflight: Dict[int, Tuple[WorkerHandle, _Chunk]],
        results: List[Optional[List[List[Predicate]]]],
    ) -> None:
        """The worker is untrustworthy: kill it, retry once, then eat it."""
        inflight.pop(chunk.index, None)
        self.supervisor.kill(handle, reason)
        chunk.kills += 1
        if chunk.kills >= 2:
            # the batch itself is the common factor: dead-letter it and
            # answer in-process — recorded, retried never, dropped never
            self.supervisor.quarantine(
                QuarantinedBatch(
                    seq=chunk.seq,
                    relation=snapshot.relation,
                    size=len(chunk.tuples),
                    reason=reason,
                    kills=chunk.kills,
                    tuples=chunk.tuples,
                )
            )
            results[chunk.index] = self._inline(snapshot, chunk.tuples)
            return
        replacement = self.supervisor.acquire(1, timeout=1.0)
        if not replacement:
            # no fresh worker (budget exhausted / degraded): in-process
            results[chunk.index] = self._inline(snapshot, chunk.tuples)
            return
        self._launch(replacement[0], chunk, snapshot, publication, inflight, results)

    def _soft_fail(
        self,
        handle: WorkerHandle,
        chunk: _Chunk,
        snapshot: Any,
        publication: Dict[str, Any],
        inflight: Dict[int, Tuple[WorkerHandle, _Chunk]],
        results: List[Optional[List[List[Predicate]]]],
        republish: bool,
    ) -> None:
        """The worker is healthy but the request needs another go."""
        inflight.pop(chunk.index, None)
        chunk.soft += 1
        chunk.drill = False  # resend clean: drills must terminate
        if chunk.soft > _SOFT_RETRY_LIMIT:
            self.supervisor.release(handle)
            results[chunk.index] = self._inline(snapshot, chunk.tuples)
            return
        if republish:
            try:
                name, length, token = self._republish(
                    snapshot, publication["token"]
                )
                publication.update(name=name, length=length, token=token)
            except (RuntimeError, OSError, pickle.PicklingError):
                self.supervisor.release(handle)
                results[chunk.index] = self._inline(snapshot, chunk.tuples)
                return
        self._launch(handle, chunk, snapshot, publication, inflight, results)

    def _collect(
        self,
        snapshot: Any,
        publication: Dict[str, Any],
        inflight: Dict[int, Tuple[WorkerHandle, _Chunk]],
        results: List[Optional[List[List[Predicate]]]],
    ) -> None:
        ident_map = self._ident_map(snapshot)
        rank = snapshot.canonical_rank()
        while inflight:
            now = time.monotonic()
            waitables: List[Any] = []
            owner: Dict[Any, Tuple[WorkerHandle, _Chunk]] = {}
            soonest = None
            for handle, chunk in inflight.values():
                waitables.append(handle.conn)
                owner[handle.conn] = (handle, chunk)
                try:
                    sentinel = handle.process.sentinel
                except ValueError:  # pragma: no cover - already closed
                    sentinel = None
                if sentinel is not None:
                    waitables.append(sentinel)
                    owner[sentinel] = (handle, chunk)
                if soonest is None or chunk.deadline < soonest:
                    soonest = chunk.deadline
            timeout = max(0.0, min((soonest or now) - now, 0.5))
            try:
                ready = _conn_wait(waitables, timeout)
            except OSError:  # pragma: no cover - fd torn down under us
                ready = []
            ready_set = set(ready)
            seen: set = set()
            for obj in ready:
                handle, chunk = owner[obj]
                if id(handle) in seen or chunk.index not in inflight:
                    continue
                seen.add(id(handle))
                if handle.conn in ready_set:
                    self._consume_reply(
                        handle, chunk, snapshot, publication,
                        inflight, results, ident_map, rank,
                    )
                else:
                    # only the exit sentinel fired: the worker died
                    # without answering
                    self._hard_fail(
                        handle, chunk, "worker crashed before replying",
                        snapshot, publication, inflight, results,
                    )
            now = time.monotonic()
            for handle, chunk in list(inflight.values()):
                if now > chunk.deadline:
                    self._hard_fail(
                        handle, chunk,
                        f"deadline of {self.supervisor.deadline:.1f}s exceeded",
                        snapshot, publication, inflight, results,
                    )

    def _consume_reply(
        self,
        handle: WorkerHandle,
        chunk: _Chunk,
        snapshot: Any,
        publication: Dict[str, Any],
        inflight: Dict[int, Tuple[WorkerHandle, _Chunk]],
        results: List[Optional[List[List[Predicate]]]],
        ident_map: Dict[Hashable, Predicate],
        rank: Dict[Hashable, int],
    ) -> None:
        try:
            reply = decode_frame(handle.conn.recv_bytes())
        except (EOFError, OSError):
            self._hard_fail(
                handle, chunk, "worker pipe closed mid-reply",
                snapshot, publication, inflight, results,
            )
            return
        except FrameError as exc:
            # a reply that fails CRC means the worker (or its pipe) is
            # lying; do not trust anything further from it
            self._hard_fail(
                handle, chunk, f"torn reply frame: {exc}",
                snapshot, publication, inflight, results,
            )
            return
        op = reply.get("op") if isinstance(reply, dict) else None
        seq = reply.get("seq") if isinstance(reply, dict) else None
        # a bad-frame reject carries no seq (the worker could not read
        # the request); each worker has at most one request inflight, so
        # a seq-less reply is unambiguously for this chunk
        if op in ("rows", "reject", "error") and seq is not None and seq != chunk.seq:
            return  # stale answer to an abandoned request; keep waiting
        if op == "rows":
            try:
                resolved = [
                    [ident_map[ident] for ident in sorted(row, key=rank.__getitem__)]
                    for row in reply["rows"]
                ]
            except (KeyError, TypeError):
                self._hard_fail(
                    handle, chunk, "worker returned unknown predicate idents",
                    snapshot, publication, inflight, results,
                )
                return
            if len(resolved) != len(chunk.tuples):
                self._hard_fail(
                    handle, chunk, "worker returned wrong row count",
                    snapshot, publication, inflight, results,
                )
                return
            inflight.pop(chunk.index, None)
            results[chunk.index] = resolved
            handle.last_seen = time.monotonic()
            self.supervisor.release(handle)
            return
        if op == "reject":
            reason = reply.get("reason")
            if reason == "shm-missing":
                self._soft_fail(
                    handle, chunk, snapshot, publication,
                    inflight, results, republish=True,
                )
                return
            if reason == "bad-frame":
                self._soft_fail(
                    handle, chunk, snapshot, publication,
                    inflight, results, republish=False,
                )
                return
            # bad-op or anything newer than this parent: answer inline
            inflight.pop(chunk.index, None)
            self.supervisor.release(handle)
            results[chunk.index] = self._inline(snapshot, chunk.tuples)
            return
        if op == "error":
            # the worker raised but kept serving; the failure may be
            # deterministic, so do not burn a worker on a retry —
            # answer in-process and move on
            inflight.pop(chunk.index, None)
            self.supervisor.release(handle)
            results[chunk.index] = self._inline(snapshot, chunk.tuples)
            return
        # pong or unknown chatter: ignore, keep waiting
        return
