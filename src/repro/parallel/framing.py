"""Length-prefixed, CRC-framed messages for the worker pipes.

``multiprocessing.Connection`` already preserves message boundaries,
but it does *not* protect message contents: a worker killed mid-write,
a torn pipe buffer, or a corrupted byte anywhere in transit yields a
payload that unpickles to garbage — or worse, unpickles cleanly to the
wrong answer.  Every message the process tier sends therefore travels
inside a frame::

    +-------+----------------+----------------+------------------+
    | MAGIC | payload length | CRC32(payload) | pickled payload  |
    | 4 B   | 4 B LE         | 4 B LE         | length bytes     |
    +-------+----------------+----------------+------------------+

and is validated *before* unpickling.  A failed check raises
:class:`~repro.errors.FrameError`; the supervisor treats a bad reply
frame as a worker failure (kill, restart, retry) and a worker treats a
bad request frame as a reject (reply with an error, no side effects).
Because frames ride ``send_bytes``/``recv_bytes``, a corrupt frame
never desynchronises the stream — the next message starts clean.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any

from ..errors import FrameError

__all__ = ["MAGIC", "encode_frame", "decode_frame", "send_frame", "recv_frame"]

#: Frame signature; bumping the protocol bumps the digit.
MAGIC = b"RPF1"

_HEADER = struct.Struct("<4sII")

#: Refuse to allocate for absurd advertised lengths (a corrupted length
#: field must not become a memory bomb).  512 MiB is far above any real
#: base publication or batch chunk.
MAX_FRAME_PAYLOAD = 512 * 1024 * 1024


def encode_frame(payload: Any) -> bytes:
    """Pickle *payload* and wrap it in a validated frame."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MAGIC, len(body), zlib.crc32(body)) + body


def decode_frame(data: bytes) -> Any:
    """Validate and unpickle one frame; raise :class:`FrameError` on damage."""
    if len(data) < _HEADER.size:
        raise FrameError(f"truncated frame: {len(data)} bytes < header")
    magic, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_PAYLOAD:
        raise FrameError(f"frame advertises absurd payload length {length}")
    body = data[_HEADER.size :]
    if len(body) != length:
        raise FrameError(f"frame length mismatch: header says {length}, got {len(body)}")
    if zlib.crc32(body) != crc:
        raise FrameError("frame CRC mismatch")
    try:
        return pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of types on bad bytes
        raise FrameError(f"frame payload failed to unpickle: {exc}") from exc


def send_frame(conn: Any, payload: Any) -> None:
    """Encode *payload* and send it as one message on *conn*."""
    conn.send_bytes(encode_frame(payload))


def recv_frame(conn: Any) -> Any:
    """Receive one message from *conn* and decode it (may raise FrameError)."""
    return decode_frame(conn.recv_bytes())
