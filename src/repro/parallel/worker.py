"""Shard-worker process: attach published bases, answer match batches.

One worker is one OS process running :func:`worker_main` over a duplex
pipe.  The loop is deliberately boring — receive a frame, validate it,
answer it — because everything interesting (deadlines, retries,
restarts, quarantine) lives parent-side in the supervisor, where a
worker that stops being boring can be killed and replaced.

Protocol (all messages are CRC frames, see :mod:`.framing`):

``{"op": "ping", "seq": n}``
    Liveness probe; answered with ``{"op": "pong", "seq": n, ...}``
    carrying cache statistics.
``{"op": "match", "seq": n, "relation": r, "epoch": e, "shm": name,
"shm_len": b, "base_token": t, "overlay": idx | None, "removed": fs,
"overlay_preds": tuple, "tuples": [...], "hang": secs}``
    Attach/cached-load the base published under ``shm``, rebuild the
    epoch snapshot with the inline overlay parts, match the tuple
    chunk, reply ``{"op": "rows", "seq": n, "rows": [[ident, ...], ...]}``.
    Rows carry identifiers, not predicates — the parent maps them back
    to its own objects so results are identical to the in-process path.
    ``hang`` is the deadline drill: sleep that long before answering.
``{"op": "shutdown"}``
    Reply ``{"op": "bye"}`` and exit 0.

Failure answers: a request frame that fails CRC gets
``{"op": "reject", "reason": "bad-frame", ...}`` (no side effects — the
stream stays usable because frames are message-bounded); a missing
shared-memory segment gets ``reason: "shm-missing"`` so the parent can
republish and retry; any other exception is reported as
``{"op": "error", ...}`` with a traceback string and the worker keeps
serving.  Only an unreadable pipe ends the loop.
"""

from __future__ import annotations

import pickle
import signal
import time
import traceback
from collections import OrderedDict
from typing import Any, Dict, List

from ..errors import FrameError
from .framing import decode_frame, send_frame
from .shm import attach_bytes

__all__ = ["worker_main", "BASE_CACHE_SIZE"]

#: Deserialised bases kept per worker (LRU).  Two covers the steady
#: state — current generation plus the one a racing batch still holds.
BASE_CACHE_SIZE = 2


def _load_base(
    cache: "OrderedDict[str, Any]", name: str, length: int
) -> Any:
    """The unpickled base for segment *name*, cached LRU."""
    base = cache.get(name)
    if base is not None:
        cache.move_to_end(name)
        return base
    base = pickle.loads(attach_bytes(name, length))
    cache[name] = base
    while len(cache) > BASE_CACHE_SIZE:
        cache.popitem(last=False)
    return base


def _match(msg: Dict[str, Any], cache: "OrderedDict[str, Any]") -> List[List[Any]]:
    # imported here so a spawn-context worker pays the import once, and
    # so this module stays importable without dragging the concurrency
    # layer in at module load
    from ..concurrency.shard import EpochSnapshot

    base = _load_base(cache, msg["shm"], msg["shm_len"])
    snapshot = EpochSnapshot(
        msg["relation"],
        msg["epoch"],
        base,
        msg["overlay"],
        msg["removed"],
        msg["overlay_preds"],
    )
    return [[pred.ident for pred in row] for row in snapshot.match_batch(msg["tuples"])]


def worker_main(conn: Any, worker_id: int) -> None:
    """Serve match requests on *conn* until shutdown or pipe loss."""
    # a forked worker inherits the parent's installed FaultInjector;
    # drills are driven parent-side, so the worker must run clean
    from ..testing import faults

    faults.uninstall()
    # the supervisor owns this process's lifetime; Ctrl-C belongs to
    # the parent, and SIGTERM (supervisor kill) should stay default so
    # terminate() works
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    base_cache: "OrderedDict[str, Any]" = OrderedDict()
    served = 0
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            break  # parent went away; nothing to clean up but the pipe
        try:
            msg = decode_frame(data)
        except FrameError as exc:
            # a torn request frame: reject without side effects; the
            # message boundary is intact so the stream stays usable
            try:
                send_frame(conn, {"op": "reject", "reason": "bad-frame", "detail": str(exc)})
            except OSError:
                break
            continue
        op = msg.get("op")
        try:
            if op == "shutdown":
                send_frame(conn, {"op": "bye", "id": worker_id})
                break
            if op == "ping":
                send_frame(
                    conn,
                    {
                        "op": "pong",
                        "seq": msg.get("seq"),
                        "id": worker_id,
                        "served": served,
                        "bases": len(base_cache),
                    },
                )
                continue
            if op != "match":
                send_frame(
                    conn,
                    {"op": "reject", "reason": "bad-op", "detail": repr(op), "seq": msg.get("seq")},
                )
                continue
            hang = msg.get("hang")
            if hang:
                time.sleep(hang)  # deadline drill: blow the budget
            try:
                rows = _match(msg, base_cache)
            except FileNotFoundError:
                # published segment is gone (early unlink / reclaimed
                # generation): a publication miss, retryable parent-side
                send_frame(
                    conn,
                    {"op": "reject", "reason": "shm-missing", "seq": msg.get("seq")},
                )
                continue
            served += 1
            send_frame(conn, {"op": "rows", "seq": msg.get("seq"), "rows": rows})
        except (EOFError, OSError, BrokenPipeError):
            break
        except BaseException as exc:  # noqa: B036 - report, keep serving
            try:
                send_frame(
                    conn,
                    {
                        "op": "error",
                        "seq": msg.get("seq"),
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    },
                )
            except OSError:
                break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass
