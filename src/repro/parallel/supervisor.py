"""Worker-process supervision: liveness, restarts, budgets, quarantine.

PR 2 established the discipline for rule actions: a failing unit of
work is retried a bounded number of times, then quarantined onto a
dead-letter queue, and a repeat offender is disabled rather than
allowed to starve everyone else.  Crossing a process boundary makes
matching itself subject to the same failure modes — workers crash,
hang, and lie — so this module applies the identical discipline to the
process-pool matching tier:

* **liveness** — every reply refreshes a worker's heartbeat; idle
  workers past the heartbeat interval are pinged, and a silent worker
  is killed and replaced before it can absorb a real batch;
* **crash detection** — dispatch waits on the pipe *and* the process
  exit sentinel, so a SIGKILLed worker is detected immediately, not at
  deadline;
* **restart with backoff and a budget** — a dead worker's slot is
  respawned after an exponentially growing delay; a slot that exhausts
  its restart budget is retired, and when every slot is retired the
  supervisor flips to **degraded** (the facade then matches in-process,
  identical results, only latency lost);
* **quarantine** — a batch that kills its worker twice is recorded as
  a :class:`QuarantinedBatch` on the dead-letter deque (the process
  tier's analogue of PR 2's :class:`~repro.rules.failures.ActionFailure`)
  and answered in-process instead of being retried forever.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .framing import recv_frame, send_frame

__all__ = ["WorkerHandle", "QuarantinedBatch", "WorkerSupervisor"]


def default_mp_context() -> Any:
    """Pick the cheapest start method that is safe right now.

    ``fork`` is by far the fastest (no interpreter re-exec, the child
    inherits every imported module) but forking a multi-threaded
    process is unsafe — and on 3.12+ raises ``DeprecationWarning``,
    which tier-1 CI escalates to an error.  So: ``fork`` only while
    this process is still single-threaded, else ``forkserver`` (its
    server forks from a clean single-threaded process), else ``spawn``.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


@dataclass
class QuarantinedBatch:
    """One poisoned batch on the process tier's dead-letter queue.

    Mirrors :class:`~repro.rules.failures.ActionFailure`: enough context
    to diagnose and replay, plus how many workers the batch took down
    before being pulled from rotation.  The tuples themselves are kept
    so ``requeue`` semantics stay possible; the batch was *answered*
    in-process, so nothing was dropped — this is a record, not a loss.
    """

    seq: int
    relation: str
    size: int
    reason: str
    kills: int
    tuples: Any = field(repr=False, default=None)

    def describe(self) -> str:
        return (
            f"#{self.seq} batch of {self.size} tuples on {self.relation!r}: "
            f"{self.reason} ({self.kills} worker kill{'s' if self.kills != 1 else ''})"
        )


class WorkerHandle:
    """One supervised worker slot's live process + pipe."""

    __slots__ = ("slot", "worker_id", "process", "conn", "last_seen", "dispatches")

    def __init__(self, slot: int, worker_id: int, process: Any, conn: Any):
        self.slot = slot
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.last_seen = time.monotonic()
        self.dispatches = 0

    def alive(self) -> bool:
        return self.process.is_alive()

    def __repr__(self) -> str:
        return (
            f"<WorkerHandle slot={self.slot} id={self.worker_id} "
            f"pid={self.process.pid} alive={self.alive()}>"
        )


class WorkerSupervisor:
    """Owns a fixed set of worker slots and their failure policy."""

    def __init__(
        self,
        workers: int,
        mp_context: Any = None,
        deadline: float = 30.0,
        heartbeat_interval: float = 5.0,
        max_restarts: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        quarantine_limit: int = 64,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._ctx = mp_context  # resolved lazily: context choice depends
        # on the thread count at spawn time, not at construction
        self.deadline = float(deadline)
        self.heartbeat_interval = float(heartbeat_interval)
        self.max_restarts = int(max_restarts)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self._lock = threading.Condition()
        #: slot -> live handle (None: empty, pending respawn or retired)
        self._slots: List[Optional[WorkerHandle]] = [None] * self.workers
        #: slot -> how many times this slot has been respawned
        self._restarts: List[int] = [0] * self.workers
        #: slot -> monotonic time before which respawn is not allowed
        self._not_before: List[float] = [0.0] * self.workers
        #: slots whose restart budget is exhausted
        self._retired: List[bool] = [False] * self.workers
        self._busy: Dict[int, WorkerHandle] = {}
        self._worker_ids = 0
        self._started = False
        self._closed = False
        self._degraded_reason: Optional[str] = None
        self.restarts_total = 0
        self.kills_total = 0
        #: dead-letter queue of poisoned batches (bounded)
        self.failures: Deque[QuarantinedBatch] = deque(maxlen=quarantine_limit)

    # -- degradation ----------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once the tier has given up on process workers."""
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> Optional[str]:
        return self._degraded_reason

    def force_degrade(self, reason: str) -> None:
        """Flip to degraded mode now (bench/test hook, and the terminal
        state of restart-budget exhaustion)."""
        with self._lock:
            self._degraded_reason = reason
            self._kill_all_locked()

    # -- spawning -------------------------------------------------------

    def _context(self) -> Any:
        if self._ctx is None:
            self._ctx = default_mp_context()
        return self._ctx

    def _spawn_locked(self, slot: int) -> Optional[WorkerHandle]:
        from .worker import worker_main

        ctx = self._context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._worker_ids += 1
        worker_id = self._worker_ids
        try:
            process = ctx.Process(
                target=worker_main,
                args=(child_conn, worker_id),
                name=f"repro-shard-worker-{worker_id}",
                daemon=True,
            )
            process.start()
        except BaseException:
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()  # child holds its own copy
        handle = WorkerHandle(slot, worker_id, process, parent_conn)
        self._slots[slot] = handle
        return handle

    def _ensure_started_locked(self) -> None:
        if self._started or self._closed or self.degraded:
            return
        self._started = True
        for slot in range(self.workers):
            if self._slots[slot] is None and not self._retired[slot]:
                self._spawn_locked(slot)

    def _respawn_due_locked(self) -> None:
        """Respawn empty, non-retired slots whose backoff has elapsed."""
        if self._closed or self.degraded or not self._started:
            return
        now = time.monotonic()
        for slot in range(self.workers):
            if (
                self._slots[slot] is None
                and not self._retired[slot]
                and slot not in self._busy
                and now >= self._not_before[slot]
            ):
                self._spawn_locked(slot)

    # -- checkout -------------------------------------------------------

    def acquire(self, count: int, timeout: float = 0.25) -> List[WorkerHandle]:
        """Check out up to *count* live workers; may return fewer (or none).

        Never blocks past *timeout*: the caller's contract is "use
        whatever workers are available right now, run the rest of the
        batch in-process" — degradation is always graceful, never a
        stall.
        """
        deadline = time.monotonic() + timeout
        acquired: List[WorkerHandle] = []
        with self._lock:
            if self._closed or self.degraded or count < 1:
                return []
            self._ensure_started_locked()
            while True:
                self._respawn_due_locked()
                self._heartbeat_locked()
                for slot, handle in enumerate(self._slots):
                    if len(acquired) >= count:
                        break
                    if handle is None or slot in self._busy:
                        continue
                    if not handle.alive():
                        self._retire_locked(handle, "found dead at checkout")
                        continue
                    self._busy[slot] = handle
                    acquired.append(handle)
                if acquired or self._closed or self.degraded:
                    return acquired
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return acquired
                self._lock.wait(remaining)

    def release(self, handle: WorkerHandle) -> None:
        """Return a healthy worker to the free set."""
        with self._lock:
            if self._busy.get(handle.slot) is handle:
                del self._busy[handle.slot]
            handle.last_seen = time.monotonic()
            self._lock.notify_all()

    # -- failure handling ----------------------------------------------

    def kill(self, handle: WorkerHandle, reason: str) -> None:
        """Forcibly terminate *handle* and schedule its slot's respawn.

        The caller has decided the worker is untrustworthy (deadline
        blown, corrupt reply, crash detected).  SIGKILL, not SIGTERM:
        a hung worker may never service SIGTERM, and the worker holds
        no state that needs a graceful exit — published segments are
        parent-owned and attachments are copy-and-close.
        """
        with self._lock:
            self.kills_total += 1
            self._kill_handle_locked(handle)
            self._retire_locked(handle, reason)
            self._lock.notify_all()

    def _kill_handle_locked(self, handle: WorkerHandle) -> None:
        try:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=5.0)
        except (OSError, ValueError):  # pragma: no cover - already reaped
            pass
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _retire_locked(self, handle: WorkerHandle, reason: str) -> None:
        """Take a dead worker out of its slot; respawn or retire the slot."""
        slot = handle.slot
        if self._slots[slot] is not handle:
            return  # already replaced
        self._slots[slot] = None
        self._busy.pop(slot, None)
        if self._closed:
            return
        self._restarts[slot] += 1
        self.restarts_total += 1
        if self._restarts[slot] > self.max_restarts:
            self._retired[slot] = True
            if all(self._retired):
                self._degraded_reason = (
                    f"restart budget exhausted on every slot (last: {reason})"
                )
                self._kill_all_locked()
            return
        delay = min(
            self.backoff * (2 ** (self._restarts[slot] - 1)), self.backoff_cap
        )
        self._not_before[slot] = time.monotonic() + delay

    def quarantine(self, batch: QuarantinedBatch) -> None:
        """Record a poisoned batch on the dead-letter queue."""
        self.failures.append(batch)

    # -- liveness -------------------------------------------------------

    def _heartbeat_locked(self, force: bool = False) -> None:
        now = time.monotonic()
        for slot, handle in enumerate(self._slots):
            if handle is None or slot in self._busy:
                continue
            if not force and now - handle.last_seen < self.heartbeat_interval:
                continue
            if not self._ping_locked(handle):
                self._kill_handle_locked(handle)
                self._retire_locked(handle, "heartbeat failed")

    def _ping_locked(self, handle: WorkerHandle) -> bool:
        if not handle.alive():
            return False
        try:
            send_frame(handle.conn, {"op": "ping", "seq": -1})
            if not handle.conn.poll(min(2.0, self.deadline)):
                return False
            reply = recv_frame(handle.conn)
            ok = isinstance(reply, dict) and reply.get("op") == "pong"
        except (OSError, EOFError, ValueError):
            return False
        if ok:
            handle.last_seen = time.monotonic()
        return ok

    def heartbeat(self) -> int:
        """Ping every idle worker now; returns the number alive after."""
        with self._lock:
            self._ensure_started_locked()
            self._heartbeat_locked(force=True)
            self._respawn_due_locked()
            return sum(
                1
                for slot, handle in enumerate(self._slots)
                if handle is not None and handle.alive()
            )

    # -- introspection / shutdown --------------------------------------

    def live_workers(self) -> int:
        with self._lock:
            return sum(
                1 for handle in self._slots if handle is not None and handle.alive()
            )

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "workers": self.workers,
                "live": sum(
                    1 for h in self._slots if h is not None and h.alive()
                ),
                "retired_slots": sum(self._retired),
                "restarts": self.restarts_total,
                "kills": self.kills_total,
                "quarantined": len(self.failures),
                "degraded": self.degraded,
                "degraded_reason": self._degraded_reason,
            }

    def _kill_all_locked(self) -> None:
        for handle in self._slots:
            if handle is not None:
                self._kill_handle_locked(handle)
        self._slots = [None] * self.workers
        self._busy.clear()

    def close(self) -> None:
        """Shut every worker down.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = [h for h in self._slots if h is not None]
            self._slots = [None] * self.workers
            self._busy.clear()
            self._lock.notify_all()
        for handle in handles:
            try:
                send_frame(handle.conn, {"op": "shutdown"})
            except (OSError, ValueError, BrokenPipeError):
                pass
        grace = time.monotonic() + 2.0
        for handle in handles:
            handle.process.join(timeout=max(0.0, grace - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        if sys.is_finalizing():  # pragma: no cover - repr during shutdown
            return "<WorkerSupervisor finalizing>"
        stats = self.stats()
        return (
            f"<WorkerSupervisor {stats['live']}/{self.workers} live, "
            f"restarts={stats['restarts']}, degraded={stats['degraded']}>"
        )
