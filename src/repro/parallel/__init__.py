"""Supervised multiprocess matching tier.

The thread tier (:mod:`repro.concurrency`) parallelises matching only
as far as the GIL allows; this package crosses the process boundary.
Frozen shard bases are published once per generation into shared
memory (:mod:`.shm`), per-core workers (:mod:`.worker`) attach them
read-only and answer CRC-framed match requests (:mod:`.framing`), and
a supervisor (:mod:`.supervisor`) holds the whole thing to the rule
engine's failure discipline — heartbeats, deadlines, bounded restarts,
quarantine, graceful degradation.  :class:`~repro.parallel.pool.ProcessMatchPool`
ties it together behind a single ``match_batch`` that either answers
identically to the serial path or declines with ``None``.
"""

from .framing import MAGIC, MAX_FRAME_PAYLOAD, decode_frame, encode_frame
from .pool import ProcessMatchPool
from .shm import SegmentRegistry, shared_memory_available
from .supervisor import QuarantinedBatch, WorkerHandle, WorkerSupervisor
from .worker import worker_main

__all__ = [
    "MAGIC",
    "MAX_FRAME_PAYLOAD",
    "decode_frame",
    "encode_frame",
    "ProcessMatchPool",
    "SegmentRegistry",
    "shared_memory_available",
    "QuarantinedBatch",
    "WorkerHandle",
    "WorkerSupervisor",
    "worker_main",
]
