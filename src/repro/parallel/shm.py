"""Shared-memory publication of frozen shard bases.

The concurrency layer's :class:`~repro.concurrency.shard.EpochSnapshot`
splits a relation into a large frozen *base* (rebuilt only on
compaction) and a small per-epoch overlay.  That split is exactly what
makes a process tier affordable: the base — the expensive part — is
serialised **once per compaction** into a ``multiprocessing``
shared-memory segment keyed by ``(relation, base generation)``, and the
tiny overlay rides along inside each request frame.  Workers attach the
segment read-only, deserialise the base a single time, and then answer
any number of batches against it with zero further transfer of index
state.

Lifetime discipline (the part that actually matters):

* the **publishing process owns every segment** — workers only ever
  attach and are explicitly unregistered from their process's
  ``resource_tracker`` (Python < 3.13 tracks attachments too, and its
  tracker would otherwise unlink a segment the parent still serves the
  moment any worker exits — CPython issue 39959);
* reclamation is **epoch-based**: publishing a new base generation for
  a relation retires all but the newest ``keep`` generations, so a
  long-lived facade never accumulates dead segments, while a reader
  mid-batch on the previous generation still finds it mapped;
* :meth:`SegmentRegistry.close` unlinks everything and is idempotent;
  a ``weakref.finalize`` on the registry does the same at interpreter
  exit, so SIGKILLed workers and abandoned pools leak nothing (the
  no-``resource_tracker``-warnings test pins this).
"""

from __future__ import annotations

import secrets
import threading
import weakref
from typing import Any, Dict, List, Optional, Tuple

from ..errors import InjectedFault
from ..testing.faults import fault_point

__all__ = [
    "shared_memory_available",
    "create_segment",
    "attach_bytes",
    "SegmentRegistry",
]

try:  # pragma: no cover - exercised via shared_memory_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without _posixshmem
    _shared_memory = None  # type: ignore[assignment]


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is usable here."""
    return _shared_memory is not None


def _attach_untracked(name: str) -> Any:
    """Attach to segment *name* without tracker registration.

    On Python < 3.13 attaching registers the segment with the attaching
    process's resource tracker, which believes it owns the segment —
    under ``spawn`` the worker's tracker would unlink it at worker
    exit, and under ``fork`` (where every process shares the parent's
    tracker) two workers attach-then-unregistering the same name race
    into the tracker's cache (CPython issue 39959).  3.13+ exposes
    ``track=False``; earlier versions get the registration suppressed
    at the source by briefly no-op'ing ``register`` around the attach —
    safe here because workers are single-threaded when attaching.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def create_segment(data: bytes) -> Any:
    """Create a uniquely named segment holding *data*; caller owns it."""
    if _shared_memory is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    name = f"repro_{secrets.token_hex(6)}"
    shm = _shared_memory.SharedMemory(name=name, create=True, size=max(1, len(data)))
    shm.buf[: len(data)] = data
    return shm


def attach_bytes(name: str, length: int) -> bytes:
    """Copy *length* bytes out of segment *name* and detach immediately.

    Copying (rather than holding the mapping) keeps worker-side segment
    lifetime trivial: no exported ``memoryview`` ever blocks a
    ``close()``, and a retired segment can be unlinked the moment the
    parent decides to.  Raises ``FileNotFoundError`` when the segment
    is gone (e.g. the ``shm.unlink_early`` drill) — callers treat that
    as a retryable publication miss, not a crash.
    """
    if _shared_memory is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    shm = _attach_untracked(name)
    try:
        return bytes(shm.buf[:length])
    finally:
        shm.close()


class SegmentRegistry:
    """Parent-side table of published base segments, epoch-reclaimed.

    Keys are ``(relation, token)`` where *token* identifies one base
    generation (the facade uses the base index's object identity while
    holding a strong reference, so tokens are never reused while
    live).  Thread-safe: the facade may publish from several writer
    threads.
    """

    def __init__(self, keep_generations: int = 2):
        self._keep = max(1, int(keep_generations))
        self._lock = threading.Lock()
        #: (relation, token) -> (shm, payload length, insertion order)
        self._segments: Dict[Tuple[str, int], Tuple[Any, int, int]] = {}
        self._counter = 0
        self._closed = False
        # unlink everything at interpreter exit even if close() is
        # never called (finalize survives SIGKILLed workers: the parent
        # owns the segments)
        self._finalizer = weakref.finalize(
            self, SegmentRegistry._release_all, self._segments
        )

    # -- publication ---------------------------------------------------

    def publish(self, relation: str, token: int, data: bytes) -> Tuple[str, int]:
        """Publish *data* for base *token*; returns ``(name, length)``.

        Re-publishing an existing key returns the existing segment.
        Publishing a new generation retires everything older than the
        newest ``keep_generations`` for that relation.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SegmentRegistry is closed")
            entry = self._segments.get((relation, token))
            if entry is not None:
                return entry[0].name, entry[1]
            shm = create_segment(data)
            self._counter += 1
            self._segments[(relation, token)] = (shm, len(data), self._counter)
            self._reclaim_locked(relation)
            # the drill for "segment vanished while a worker needed
            # it": unlink right after publication, keeping the stale
            # registry entry so the next attach misses
            try:
                fault_point("shm.unlink_early")
            except InjectedFault:
                name, length = shm.name, len(data)
                try:
                    shm.close()
                    shm.unlink()
                except FileNotFoundError:
                    pass
                return name, length
            return shm.name, len(data)

    def forget(self, relation: str, token: int) -> None:
        """Drop (and unlink) one publication, e.g. after an attach miss."""
        with self._lock:
            self._unlink_locked((relation, token))

    def _reclaim_locked(self, relation: str) -> None:
        mine = sorted(
            (key for key in self._segments if key[0] == relation),
            key=lambda key: self._segments[key][2],
        )
        for key in mine[: -self._keep]:
            self._unlink_locked(key)

    def _unlink_locked(self, key: Tuple[str, int]) -> None:
        entry = self._segments.pop(key, None)
        if entry is None:
            return
        shm = entry[0]
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass  # already gone (unlink_early drill or external cleanup)

    # -- introspection / shutdown --------------------------------------

    def live_segments(self) -> List[str]:
        """Names of currently published segments (for leak tests)."""
        with self._lock:
            return [entry[0].name for entry in self._segments.values()]

    def close(self) -> None:
        """Unlink every published segment.  Idempotent."""
        with self._lock:
            self._closed = True
            for key in list(self._segments):
                self._unlink_locked(key)
        self._finalizer.detach()

    @staticmethod
    def _release_all(segments: Dict[Tuple[str, int], Tuple[Any, int, int]]) -> None:
        for shm, _length, _order in list(segments.values()):
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
        segments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)
