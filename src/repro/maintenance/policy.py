"""The user-facing knob bundle for the maintenance plane.

One frozen dataclass travels from ``Database(maintenance=...)``
through the registry into both facades, the same way ``RetryPolicy``
travels into the rule engine.  ``None`` intervals mean "don't register
that task"; a policy with every interval ``None`` still carries the
shared knobs (compaction threshold, budgets, backoff, quarantine) for
tasks the facades register themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Optional

__all__ = ["MaintenancePolicy"]

#: The facade's synchronous compaction backstop (mirrors
#: ``repro.concurrency.shard.DEFAULT_COMPACTION_THRESHOLD`` without
#: importing the concurrency layer from this leaf package).
_DEFAULT_COMPACTION_THRESHOLD = 64


@dataclass(frozen=True)
class MaintenancePolicy:
    """Declarative configuration for :class:`MaintenanceScheduler`.

    Interval semantics follow the clock's documented op-count: an
    interval of ``N`` means "run once every N matched tuples +
    predicate writes".  All intervals are optional; a facade only
    registers the tasks whose intervals (or prerequisites, e.g. a
    configured auto-selector) are present.

    ``budget_ops`` / ``budget_seconds`` bound a *single task run* —
    the disk checkpointer charges one op per shard, so
    ``budget_ops=4`` means "at most four shards per checkpoint tick".
    ``backoff_multiplier`` / ``max_backoff_intervals`` shape the
    exponential retry delay (measured in multiples of the failing
    task's own interval), and ``quarantine_failures`` consecutive
    failures move a task to the dead-letter list — the same poison-
    pill discipline :class:`repro.rules.failures.RetryPolicy` applies
    to rule actions.
    """

    enabled: bool = True
    retune_interval: Optional[int] = None
    autoselect_interval: Optional[int] = None
    compact_interval: Optional[int] = None
    checkpoint_interval: Optional[int] = None
    evict_interval: Optional[int] = None
    compaction_threshold: int = _DEFAULT_COMPACTION_THRESHOLD
    budget_ops: Optional[int] = None
    budget_seconds: Optional[float] = None
    backoff_multiplier: float = 2.0
    max_backoff_intervals: float = 8.0
    quarantine_failures: int = 3
    #: Optional wall-clock source handed to the clock; keep ``None``
    #: for fully deterministic schedules.
    time_source: Optional[Callable[[], float]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for name in (
            "retune_interval",
            "autoselect_interval",
            "compact_interval",
            "checkpoint_interval",
            "evict_interval",
            "budget_ops",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (got {value})")
        if self.compaction_threshold <= 0:
            raise ValueError(
                "compaction_threshold must be positive "
                f"(got {self.compaction_threshold})"
            )
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be positive (got {self.budget_seconds})"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                "backoff_multiplier must be >= 1.0 "
                f"(got {self.backoff_multiplier})"
            )
        if self.max_backoff_intervals < 1.0:
            raise ValueError(
                "max_backoff_intervals must be >= 1.0 "
                f"(got {self.max_backoff_intervals})"
            )
        if self.quarantine_failures < 1:
            raise ValueError(
                "quarantine_failures must be >= 1 "
                f"(got {self.quarantine_failures})"
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view for reports and the CLI (no callables)."""
        doc: Dict[str, Any] = {}
        for spec in fields(self):
            if spec.name == "time_source":
                doc["timed"] = self.time_source is not None
                continue
            doc[spec.name] = getattr(self, spec.name)
        return doc
