"""The one maintenance clock: op-count ticks, optional wall time.

Before this package existed the repo had *four* op-counters with four
different ideas of what an "operation" is: ``_tuples_since_retune``
advanced on matched tuples only (and kept advancing on a frozen
index), ``_tuples_since_autoselect`` advanced on matched tuples unless
frozen, the concurrent facade's compaction clock advanced on overlay
size, and the disk checkpointer had no counter at all (manual
cadence).  The divergence was a real bug class: two intervals set to
the same number fired at different times depending on which subset of
traffic each counter happened to see.

This clock defines **one documented op-count semantics**, shared by
every tier and pinned by ``tests/test_maintenance.py``:

* one op per matched tuple — ``match`` / ``match_idents`` advance by
  1, ``match_batch`` by ``len(batch)``;
* one op per predicate write — ``add`` / ``remove`` advance by 1,
  ``add_many`` by ``len(batch)``;
* caller-supplied candidate matching (``match_with_candidates``)
  advances nothing — the index did no routing work;
* a frozen index advances nothing — no maintenance runs while frozen,
  full stop (this closes the retune-while-frozen hole).

Wall time is strictly opt-in: ``time_source`` defaults to ``None``, in
which case the clock is a pure function of the op sequence and every
schedule derived from it is seed-reproducible.  Injecting a source
(``time.monotonic`` in production, a fake in tests) enables the
time-based half of task triggers and budgets without giving up
determinism anywhere it wasn't asked for.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["MaintenanceClock"]


class MaintenanceClock:
    """Monotone operation counter with an optional wall-clock source."""

    __slots__ = ("_ops", "time_source")

    def __init__(
        self, time_source: Optional[Callable[[], float]] = None
    ) -> None:
        self._ops = 0
        #: Optional wall-clock callable; ``None`` keeps the clock (and
        #: everything scheduled off it) deterministic.
        self.time_source = time_source

    @property
    def ops(self) -> int:
        """Total operations observed since construction."""
        return self._ops

    def advance(self, ops: int = 1) -> int:
        """Advance by *ops* operations; returns the new total.

        Negative advances are rejected — the clock is monotone, which
        is what lets the scheduler store "next due at op N" marks.
        """
        if ops < 0:
            raise ValueError(f"clock cannot run backwards (ops={ops})")
        self._ops += ops
        return self._ops

    def now(self) -> Optional[float]:
        """Current wall time, or ``None`` when no source is injected."""
        if self.time_source is None:
            return None
        return self.time_source()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        timed = "timed" if self.time_source is not None else "op-only"
        return f"MaintenanceClock(ops={self._ops}, {timed})"
