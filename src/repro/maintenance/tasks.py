"""Maintenance tasks and the budget they run under.

A task is deliberately small: a name, a cost class (so reports and
budgets can tell a cheap in-memory retune from an fsync-heavy
checkpoint), a trigger interval in clock ops (plus an optional
interval in seconds, only live when the clock has a time source), and
a ``run(budget, relation)`` body.  Everything stateful — last-run
marks, failure counts, backoff, quarantine — lives in the scheduler,
so a task body stays a plain callable and facades can register
closures over ``self`` without ceremony.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

__all__ = [
    "COST_CLASSES",
    "CallbackTask",
    "MaintenanceBudget",
    "MaintenanceTask",
]

#: Coarse work classification, surfaced in reports and used to pick
#: sensible default priorities: ``cheap`` covers in-memory counter
#: work (retune), ``bulk`` covers structure rebuilds (compaction,
#: backend migration), ``io`` covers disk traffic (checkpoint, evict).
COST_CLASSES = ("cheap", "bulk", "io")


class MaintenanceBudget:
    """Op/time allowance for one task run.

    Long tasks call :meth:`charge` per unit of work and stop when
    :meth:`exhausted` turns true — the disk checkpointer charges one
    op per shard, so a preempted pass still ends on a shard boundary
    and publishes a consistent manifest.  With no limits (both
    ``None``) the budget never exhausts; with no *timer* the time
    limit is inert, keeping budget behaviour deterministic unless a
    wall clock was explicitly injected.
    """

    __slots__ = ("ops", "seconds", "_timer", "_started", "spent_ops")

    def __init__(
        self,
        ops: Optional[int] = None,
        seconds: Optional[float] = None,
        timer: Optional[Callable[[], float]] = None,
    ) -> None:
        if ops is not None and ops <= 0:
            raise ValueError(f"budget ops must be positive (got {ops})")
        if seconds is not None and seconds <= 0:
            raise ValueError(f"budget seconds must be positive (got {seconds})")
        self.ops = ops
        self.seconds = seconds
        self._timer = timer
        self._started = timer() if timer is not None else None
        self.spent_ops = 0

    def charge(self, ops: int = 1) -> None:
        """Record *ops* units of work done by the running task."""
        self.spent_ops += ops

    def exhausted(self) -> bool:
        """True once either the op or the time allowance is spent."""
        if self.ops is not None and self.spent_ops >= self.ops:
            return True
        if (
            self.seconds is not None
            and self._timer is not None
            and self._started is not None
            and self._timer() - self._started >= self.seconds
        ):
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaintenanceBudget(ops={self.ops}, seconds={self.seconds}, "
            f"spent_ops={self.spent_ops})"
        )


@runtime_checkable
class MaintenanceTask(Protocol):
    """What the scheduler needs from a registered task."""

    name: str
    cost_class: str
    priority: int
    interval_ops: Optional[int]
    interval_seconds: Optional[float]

    def run(self, budget: MaintenanceBudget, relation: Optional[str]) -> Any:
        """Do one slice of maintenance work within *budget*.

        *relation* is the relation whose traffic triggered the tick,
        or ``None`` for a global tick (manual ``run_task``, time-based
        trigger); tasks scoped per relation use it to avoid touching
        cold shards.
        """
        ...


class CallbackTask:
    """A :class:`MaintenanceTask` wrapping a plain callable.

    The callable receives ``(budget, relation)``; its return value is
    kept as the task's ``last_result`` in the scheduler report.
    """

    __slots__ = (
        "name",
        "cost_class",
        "priority",
        "interval_ops",
        "interval_seconds",
        "_fn",
    )

    def __init__(
        self,
        name: str,
        fn: Callable[[MaintenanceBudget, Optional[str]], Any],
        interval_ops: Optional[int] = None,
        interval_seconds: Optional[float] = None,
        priority: int = 0,
        cost_class: str = "cheap",
    ) -> None:
        if not name:
            raise ValueError("task name must be non-empty")
        if cost_class not in COST_CLASSES:
            raise ValueError(
                f"unknown cost class {cost_class!r}; expected one of "
                f"{', '.join(COST_CLASSES)}"
            )
        if interval_ops is not None and interval_ops <= 0:
            raise ValueError(
                f"interval_ops must be positive (got {interval_ops})"
            )
        if interval_seconds is not None and interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive (got {interval_seconds})"
            )
        if interval_ops is None and interval_seconds is None:
            raise ValueError(
                f"task {name!r} needs an op or time interval to ever run"
            )
        self.name = name
        self.cost_class = cost_class
        self.priority = priority
        self.interval_ops = interval_ops
        self.interval_seconds = interval_seconds
        self._fn = fn

    def run(self, budget: MaintenanceBudget, relation: Optional[str]) -> Any:
        return self._fn(budget, relation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallbackTask({self.name!r}, interval_ops={self.interval_ops}, "
            f"cost_class={self.cost_class!r}, priority={self.priority})"
        )
