"""The maintenance scheduler: due-ness, budgets, backoff, quarantine.

Design rules, in order of importance:

1. **A failing task never breaks matching.**  ``advance()`` is called
   from the hot match/write paths; no exception a task raises (real or
   injected via ``maint.task_raises``) may escape it.  Failures are
   recorded, backed off, and eventually quarantined — the dead-letter
   discipline of :mod:`repro.rules.failures` applied to background
   work.
2. **Deterministic by default.**  Due-ness is computed from the
   op-count clock; with no injected time source, the same op sequence
   triggers the same tasks at the same ticks in the same order
   (priority desc, then registration order).
3. **Maintenance never blocks matching.**  The run lock is taken
   non-blocking: whichever thread's tick finds work runs it; every
   other thread just accumulates ops and carries on.  A task that
   itself causes ticks (compaction re-publishing snapshots) cannot
   recurse for the same reason.

Backoff is measured in op-space, in multiples of the failing task's
own interval: after the *k*-th consecutive failure the task is not due
again until ``interval_ops * min(multiplier ** (k-1), max_intervals)``
further ops, mirroring :meth:`repro.rules.failures.RetryPolicy.delay`
(which measures in seconds — wall time is not available here by
default).  ``quarantine_failures`` consecutive failures move the task
to the dead-letter list; it stays registered (and visible in
``report()``) but only an explicit :meth:`run_task` revives it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..testing.faults import fault_point
from .clock import MaintenanceClock
from .policy import MaintenancePolicy
from .tasks import CallbackTask, MaintenanceBudget, MaintenanceTask

__all__ = ["MaintenanceFailure", "MaintenanceScheduler", "TaskState"]


@dataclass
class MaintenanceFailure:
    """Dead-letter record for one failed task run.

    The same shape as :class:`repro.rules.failures.ActionFailure`
    (sequence number, name, context, error, attempt count, poison
    flag) so operators read one failure vocabulary across foreground
    rule actions and background maintenance.
    """

    seq: int
    task: str
    relation: Optional[str]
    error: Exception
    ops: int
    attempts: int
    quarantined: bool = False

    def describe(self) -> str:
        scope = self.relation if self.relation is not None else "*"
        state = "quarantined" if self.quarantined else "backing off"
        return (
            f"#{self.seq} task={self.task} relation={scope} "
            f"at op {self.ops} attempt {self.attempts}: "
            f"{type(self.error).__name__}: {self.error} ({state})"
        )


@dataclass
class TaskState:
    """Mutable per-task bookkeeping owned by the scheduler."""

    task: MaintenanceTask
    order: int
    last_run_ops: int = 0
    last_run_time: Optional[float] = None
    next_due_ops: Optional[int] = None
    runs: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False
    last_error: Optional[str] = None
    last_result: Any = field(default=None, repr=False)

    def as_dict(self) -> Dict[str, Any]:
        task = self.task
        return {
            "name": task.name,
            "cost_class": task.cost_class,
            "priority": task.priority,
            "interval_ops": task.interval_ops,
            "interval_seconds": task.interval_seconds,
            "last_run_ops": self.last_run_ops,
            "next_due_ops": self.next_due_ops,
            "runs": self.runs,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "quarantined": self.quarantined,
            "last_error": self.last_error,
        }


class MaintenanceScheduler:
    """Runs registered :class:`MaintenanceTask`\\ s off one clock."""

    def __init__(
        self,
        policy: Optional[MaintenancePolicy] = None,
        clock: Optional[MaintenanceClock] = None,
        observer: Any = None,
    ) -> None:
        self.policy = policy if policy is not None else MaintenancePolicy()
        self.clock = (
            clock
            if clock is not None
            else MaintenanceClock(time_source=self.policy.time_source)
        )
        self._observer = observer
        self._tasks: Dict[str, TaskState] = {}
        self._failures: List[MaintenanceFailure] = []
        self._failure_seq = 0
        self._ops_lock = threading.Lock()
        self._run_lock = threading.Lock()

    # -- registration ---------------------------------------------------

    def register(self, task: MaintenanceTask) -> MaintenanceTask:
        """Register *task*; names are unique, order is significant."""
        if task.name in self._tasks:
            raise ValueError(f"task {task.name!r} already registered")
        state = TaskState(task=task, order=len(self._tasks))
        state.last_run_ops = self.clock.ops
        if task.interval_ops is not None:
            state.next_due_ops = self.clock.ops + task.interval_ops
        state.last_run_time = self.clock.now()
        self._tasks[task.name] = state
        return task

    def register_callback(
        self,
        name: str,
        fn: Callable[[MaintenanceBudget, Optional[str]], Any],
        interval_ops: Optional[int] = None,
        interval_seconds: Optional[float] = None,
        priority: int = 0,
        cost_class: str = "cheap",
    ) -> CallbackTask:
        """Convenience: wrap *fn* in a :class:`CallbackTask` and register."""
        task = CallbackTask(
            name,
            fn,
            interval_ops=interval_ops,
            interval_seconds=interval_seconds,
            priority=priority,
            cost_class=cost_class,
        )
        self.register(task)
        return task

    def tasks(self) -> List[str]:
        """Registered task names in registration order."""
        return list(self._tasks)

    @property
    def failures(self) -> List[MaintenanceFailure]:
        """Dead-letter list of failed runs, oldest first."""
        return list(self._failures)

    # -- ticking --------------------------------------------------------

    def advance(self, ops: int = 1, relation: Optional[str] = None) -> List[str]:
        """Advance the clock by *ops* and run whatever came due.

        Returns the names of tasks that ran (successfully or not) on
        this tick.  Never raises on task failure; never blocks if
        another thread is already running maintenance.
        """
        with self._ops_lock:
            self.clock.advance(ops)
        if not self.policy.enabled or not self._tasks or ops == 0:
            return []
        if not self._run_lock.acquire(blocking=False):
            return []
        try:
            return self._run_due(relation)
        finally:
            self._run_lock.release()

    def run_task(self, name: str, relation: Optional[str] = None) -> Any:
        """Run *name* immediately, ignoring interval/backoff/quarantine.

        The one escape hatch from quarantine: a manual run that
        succeeds clears the task's failure streak and re-enables it.
        Unlike :meth:`advance`, a failure here *raises*, because the
        caller explicitly asked for this task.
        """
        state = self._tasks.get(name)
        if state is None:
            raise KeyError(
                f"unknown maintenance task {name!r}; registered: "
                f"{', '.join(self._tasks) or '(none)'}"
            )
        with self._run_lock:
            error = self._run_one(state, relation)
        if error is not None:
            raise error
        return state.last_result

    def _run_due(self, relation: Optional[str]) -> List[str]:
        now_ops = self.clock.ops
        now_time = self.clock.now()
        due = [
            state
            for state in self._tasks.values()
            if self._is_due(state, now_ops, now_time)
        ]
        if not due:
            return []
        # priority first, then registration order: deterministic for
        # identical op sequences.
        due.sort(key=lambda state: (-state.task.priority, state.order))
        ran = []
        for state in due:
            self._run_one(state, relation)
            ran.append(state.task.name)
        return ran

    def _is_due(
        self,
        state: TaskState,
        now_ops: int,
        now_time: Optional[float],
    ) -> bool:
        if state.quarantined:
            return False
        task = state.task
        if state.next_due_ops is not None and now_ops >= state.next_due_ops:
            return True
        if (
            task.interval_seconds is not None
            and now_time is not None
            and state.last_run_time is not None
            and now_time - state.last_run_time >= task.interval_seconds
        ):
            return True
        return False

    def _run_one(
        self, state: TaskState, relation: Optional[str]
    ) -> Optional[Exception]:
        task = state.task
        budget = MaintenanceBudget(
            ops=self.policy.budget_ops,
            seconds=self.policy.budget_seconds,
            timer=self.clock.time_source,
        )
        error: Optional[Exception] = None
        try:
            fault_point("maint.task_raises")
            state.last_result = task.run(budget, relation)
        except Exception as exc:  # noqa: BLE001 - the whole point
            error = exc
        state.runs += 1
        state.last_run_ops = self.clock.ops
        state.last_run_time = self.clock.now()
        if error is None:
            state.consecutive_failures = 0
            state.last_error = None
            if state.quarantined:
                state.quarantined = False
            if task.interval_ops is not None:
                state.next_due_ops = self.clock.ops + task.interval_ops
        else:
            self._record_failure(state, relation, error)
        if self._observer is not None:
            self._observer.on_maintenance(
                task.name, error is None, budget.spent_ops
            )
        return error

    def _record_failure(
        self,
        state: TaskState,
        relation: Optional[str],
        error: Exception,
    ) -> None:
        policy = self.policy
        state.failures += 1
        state.consecutive_failures += 1
        state.last_error = f"{type(error).__name__}: {error}"
        quarantine = state.consecutive_failures >= policy.quarantine_failures
        state.quarantined = quarantine
        interval = state.task.interval_ops
        if interval is not None:
            scale = min(
                policy.backoff_multiplier ** (state.consecutive_failures - 1),
                policy.max_backoff_intervals,
            )
            state.next_due_ops = self.clock.ops + int(interval * scale)
        self._failure_seq += 1
        self._failures.append(
            MaintenanceFailure(
                seq=self._failure_seq,
                task=state.task.name,
                relation=relation,
                error=error,
                ops=self.clock.ops,
                attempts=state.consecutive_failures,
                quarantined=quarantine,
            )
        )

    # -- reporting ------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """One document mirroring ``tuning_report()``: clock, tasks,
        policy, dead-letter tail."""
        return {
            "enabled": self.policy.enabled,
            "clock_ops": self.clock.ops,
            "timed": self.clock.time_source is not None,
            "tasks": {
                name: state.as_dict() for name, state in self._tasks.items()
            },
            "policy": self.policy.as_dict(),
            "failures": [f.describe() for f in self._failures],
        }
