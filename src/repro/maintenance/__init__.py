"""The unified maintenance plane: one clock, one scheduler, all tiers.

PRs 3-9 grew four separate self-maintenance mechanisms — adaptive
entry-clause retuning, cost-driven backend auto-selection, the
concurrent facade's compaction clock, and the disk tier's
checkpoint/eviction machinery — each with its own bespoke op-counter,
trigger condition, and failure handling.  This package replaces every
bespoke counter with a single deterministic substrate:

* :class:`MaintenanceClock` — the one op-count clock.  Its tick
  semantics (what counts as "an operation") are documented on the
  class and pinned by regression tests; every facade advances the same
  clock for the same events.
* :class:`MaintenanceTask` / :class:`CallbackTask` — the unit of
  background work: a name, a cost class, a trigger interval, and a
  ``run(budget, relation)`` body.
* :class:`MaintenanceBudget` — op/time budget handed to each run so
  long tasks (checkpoints, eviction sweeps) can stop at a consistent
  point and resume on a later tick.
* :class:`MaintenanceScheduler` — owns registered tasks, decides
  due-ness from the clock, runs tasks under budget with per-task
  priorities, applies exponential backoff after failures, and
  quarantines a task that keeps failing (the dead-letter discipline of
  :mod:`repro.rules.failures`, applied to background work).  A failing
  task *never* breaks matching: exceptions stop at the scheduler.
* :class:`MaintenancePolicy` — the user-facing knob bundle accepted by
  ``PredicateIndex(maintenance=...)``,
  ``ConcurrentPredicateIndex(maintenance=...)``, and
  ``Database(maintenance=...)``.

Determinism contract: with no injected ``time_source`` the plane is a
pure function of the op sequence — the same workload replay triggers
the same tasks at the same ticks, which is what makes the
tick-vs-twin differential suite in ``tests/test_maintenance.py``
meaningful.
"""

from .clock import MaintenanceClock
from .policy import MaintenancePolicy
from .scheduler import MaintenanceFailure, MaintenanceScheduler, TaskState
from .tasks import CallbackTask, MaintenanceBudget, MaintenanceTask

__all__ = [
    "CallbackTask",
    "MaintenanceBudget",
    "MaintenanceClock",
    "MaintenanceFailure",
    "MaintenancePolicy",
    "MaintenanceScheduler",
    "MaintenanceTask",
    "TaskState",
]
