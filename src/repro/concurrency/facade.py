"""`ConcurrentPredicateIndex` — thread-safe sharded matching front-end.

Satisfies the :class:`~repro.baselines.base.PredicateMatcher` contract
(so the rule engine can select it as the ``"ibs-concurrent"`` strategy)
while allowing matching to proceed concurrently with predicate
registration, removal, compaction, and rebuilds:

* one :class:`~repro.concurrency.shard.RelationShard` per relation —
  writers to different relations never contend;
* reads are lock-free: a match loads the shard's current
  :class:`~repro.concurrency.shard.EpochSnapshot` once and works on
  that immutable state;
* :meth:`match_batch` optionally fans its tuple chunks across a worker
  pool and merges chunk results back in input order, so the output is
  byte-for-byte identical to the serial result for the same snapshot.

Lock ordering (documented in ``docs/concurrency_model.md``): the
facade's catalog lock protects only the shard table and the ident →
relation routing map, and is never held while a shard's write lock is
taken with user code on the stack below it; shard locks are leaf locks.
Publication hooks registered via :meth:`on_publish` run under the
publishing shard's write lock and must not call back into the write
API.

On parallelism: under CPython's GIL the worker pool does not multiply
CPU throughput — the measured advantage of this layer on a mixed
read/write workload (see the CONCURRENCY benchmark) comes from
*snapshot isolation*: writes land in a small overlay instead of
mutating the big per-attribute trees, so the frozen base's decode and
residual caches stay warm where the serial index invalidates them on
every mutation.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from ..baselines.base import PredicateMatcher
from ..core.ibs_tree import IBSTree
from ..core.predicate_index import PredicateIndex, TreeFactory
from ..core.selectivity import SelectivityEstimator
from ..errors import ConcurrencyError, PredicateError, UnknownIntervalError
from ..maintenance import MaintenancePolicy, MaintenanceScheduler
from ..match.observer import MatchStatistics, StatsObserver
from ..predicates.predicate import Predicate
from .shard import (
    DEFAULT_COMPACTION_THRESHOLD,
    EpochSnapshot,
    PublishHook,
    RelationShard,
)

__all__ = ["ConcurrentPredicateIndex"]


class ConcurrentPredicateIndex(PredicateMatcher):
    """Sharded, epoch-snapshot concurrent predicate matcher.

    Parameters
    ----------
    tree_factory / estimator / multi_clause:
        Forwarded to every internal :class:`PredicateIndex` (base and
        overlay of each shard).  ``tree_factory`` also accepts the name
        of a backend registered in the
        :data:`~repro.match.registry.DEFAULT_REGISTRY` (``"ibs"``,
        ``"avl"``, …).  The internal indexes are always built
        with ``adaptive=False`` — feedback counters mutate state on the
        read path and are unsafe under lock-free readers (see
        ``docs/concurrency_model.md``).
    snapshot_cache_size:
        Stab-cache capacity for each shard's base/overlay index.
        Freezing demotes the cache to an append-only discipline (plain
        GIL-atomic dict reads/writes, no LRU reordering, no eviction),
        so it is safe under lock-free readers — and because a frozen
        tree's epoch never moves, cached stabs stay valid for the whole
        life of the snapshot.  This is the snapshot design's main
        single-CPU win over a mutable index, whose every write bumps a
        tree epoch and strands the entire cache.  ``0`` disables it.
    workers:
        Size of the shared worker pool :meth:`match_batch` fans out
        over.  ``0`` or ``1`` disables fan-out (everything runs
        inline).  The pool is created lazily on first use and shut
        down by :meth:`close` (the facade is also a context manager).
        The string ``"process"`` is shorthand for
        ``pool="process", workers=os.cpu_count()``.
    pool:
        Which worker tier backs the fan-out: ``"thread"`` (default —
        in-process, snapshot-isolation wins only) or ``"process"`` —
        the supervised multiprocess tier (:mod:`repro.parallel`), which
        publishes shard bases into shared memory and matches on
        per-core worker processes.  The process tier is self-healing:
        worker crashes, hangs, and torn frames are retried and, past
        the restart budget, the facade **degrades** to the in-process
        path — results are identical in every mode, only latency
        changes.  With ``pool="process"`` all ``match_batch`` rows are
        returned in the snapshot's canonical order
        (:meth:`EpochSnapshot.canonical_rank`), whichever tier served
        them, so results are reproducible across processes and runs.
    compaction_threshold:
        Overlay/tombstone size at which a shard folds its overlay into
        a fresh bulk-loaded base.
    min_chunk:
        Smallest per-worker tuple chunk worth dispatching; batches
        below ``2 * min_chunk`` run inline to avoid pool overhead.
    columnar:
        Forwarded to every internal index: batch reads try the
        vectorized columnar plane (:mod:`repro.match.columnar`) first.
        A natural fit for this facade — snapshot bases are frozen, so
        their mutation version never moves and the plane is built once
        per compaction.  Safe under lock-free readers: the plane cache
        is a single GIL-atomic attribute publish of an immutable
        object.  Silently inert when NumPy is not installed.
    auto_backend:
        Enable per-attribute backend auto-selection
        (:class:`~repro.match.autoselect.AutoSelector`).  Reads and
        writes accumulate workload evidence at the facade level;
        :meth:`autoselect` prices each attribute against the calibrated
        cost table and records winners in a backend *plan*.  Under
        snapshot publication the safe migration primitive is a
        compaction: the plan is applied to every fresh base built by
        the shard (``set_backend_plan``), so a migration publishes a
        whole new :class:`EpochSnapshot` and never mutates a frozen
        base — readers only ever see the old or the new epoch.
    auto_candidates / auto_cost_table / min_evidence_ops:
        Forwarded to the :class:`~repro.match.autoselect.AutoSelector`
        — candidate backend names, a pre-calibrated cost table, and
        the evidence floor below which no decision is made.
    maintenance:
        A :class:`~repro.maintenance.MaintenancePolicy` driving this
        facade's background work off the unified maintenance clock:
        ``compact_interval`` compacts shards proactively (folding
        overlays *before* the synchronous size threshold forces a
        write-side fold), ``autoselect_interval`` retunes backends
        continuously off that same clock instead of explicit
        :meth:`autoselect` calls, ``evict_interval`` sweeps disk-tier
        residency, and a :class:`~repro.disk.checkpoint.DiskCheckpointer`
        attached to this facade registers its budgeted checkpoint task
        here.  The policy's ``compaction_threshold`` also becomes the
        shards' synchronous backstop threshold unless the
        ``compaction_threshold`` argument overrides it explicitly.  See
        :meth:`maintenance_report`.
    """

    name = "ibs-concurrent"

    def __init__(
        self,
        tree_factory: Union[str, TreeFactory] = IBSTree,
        estimator: Optional[SelectivityEstimator] = None,
        multi_clause: bool = False,
        workers: Union[int, str] = 0,
        compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
        min_chunk: int = 64,
        snapshot_cache_size: int = 4_096,
        columnar: bool = False,
        pool: str = "thread",
        auto_backend: bool = False,
        auto_candidates: Optional[Iterable[str]] = None,
        auto_cost_table: Optional[Any] = None,
        min_evidence_ops: int = 512,
        storage: str = "memory",
        data_dir: Optional[str] = None,
        memory_budget: Optional[int] = None,
        maintenance: Optional[MaintenancePolicy] = None,
    ):
        backend_name: Optional[str] = None
        if isinstance(tree_factory, str):
            from ..match.registry import DEFAULT_REGISTRY

            backend_name = tree_factory
            tree_factory = DEFAULT_REGISTRY.tree_factory(tree_factory)
        elif tree_factory is IBSTree:
            backend_name = "ibs"
        if workers == "process":
            import os

            pool = "process"
            workers = os.cpu_count() or 1
        if pool not in ("thread", "process"):
            raise ConcurrencyError(
                f"unknown pool kind {pool!r}: expected 'thread' or 'process'"
            )
        if storage not in ("memory", "disk"):
            raise ConcurrencyError(
                f"unknown storage {storage!r}: expected 'memory' or 'disk'"
            )
        if storage == "disk" and data_dir is None:
            import tempfile

            data_dir = tempfile.mkdtemp(prefix="repro-disk-")
        self._storage = storage
        self._data_dir = data_dir
        self._memory_budget = memory_budget
        self._tree_factory = tree_factory
        self._estimator = estimator
        self._multi_clause = bool(multi_clause)
        self._snapshot_cache_size = max(0, int(snapshot_cache_size))
        self._workers = max(0, int(workers))
        self._pool_kind = pool
        self._columnar = bool(columnar)
        if (
            maintenance is not None
            and compaction_threshold == DEFAULT_COMPACTION_THRESHOLD
        ):
            # the policy owns the synchronous backstop threshold unless
            # the caller pinned one explicitly
            compaction_threshold = maintenance.compaction_threshold
        self._compaction_threshold = int(compaction_threshold)
        self._min_chunk = max(1, int(min_chunk))
        #: catalog lock: shard-table and routing-map writes only.
        self._catalog_lock = threading.Lock()
        self._shards: Dict[str, RelationShard] = {}
        #: ident -> relation routing.  Entries are *claimed* under the
        #: catalog lock before the shard add (so the same ident can
        #: never be registered under two relations) and removed with a
        #: GIL-atomic ``pop``.
        self._relation_of: Dict[Hashable, str] = {}
        #: shared by every shard; appended to by :meth:`on_publish`.
        self._publish_hooks: List[PublishHook] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[Any] = None
        self._pool_lock = threading.Lock()
        self._closed = False
        #: relation -> attribute -> (backend name, factory).  Mutated
        #: only under ``_auto_lock`` and published by whole-dict
        #: replacement, so ``_index_factory`` may read it bare.
        self._backend_plan: Dict[str, Dict[str, Tuple[str, Any]]] = {}
        #: guards evidence writes, plan publication, and selector
        #: bookkeeping — short critical sections only, never held
        #: across a compaction.
        self._auto_lock = threading.Lock()
        #: serializes whole :meth:`autoselect` passes (including their
        #: compactions); never taken by readers or writers.
        self._tune_lock = threading.Lock()
        self._selector: Optional[Any] = None
        if auto_backend:
            from ..match.autoselect import DEFAULT_CANDIDATES, AutoSelector

            self._selector = AutoSelector(
                candidates=(
                    tuple(auto_candidates)
                    if auto_candidates is not None
                    else DEFAULT_CANDIDATES
                ),
                cost_table=auto_cost_table,
                min_evidence_ops=min_evidence_ops,
                default_backend=backend_name,
            )
        self._maint_observer = StatsObserver(MatchStatistics())
        self._maintenance = self._build_maintenance(maintenance)

    def _build_maintenance(
        self, policy: Optional[MaintenancePolicy]
    ) -> Optional[MaintenanceScheduler]:
        """Register the facade's background work as scheduler tasks.

        ``compact`` (closing ROADMAP item 4's follow-on: background
        compaction off one clock) and ``autoselect`` (closing item 5's:
        continuous retune-by-compaction) register here; the disk tier's
        ``checkpoint`` task is registered by the
        :class:`~repro.disk.checkpoint.DiskCheckpointer` that attaches
        to this facade, and ``evict`` sweeps each shard's disk store.
        The shards' synchronous size-threshold fold stays as the
        structural backstop — a write burst can always outrun any
        periodic schedule — but its threshold is sourced from the same
        policy, so there is one place to tune both.
        """
        if policy is None:
            return None
        scheduler = MaintenanceScheduler(
            policy=policy, observer=self._maint_observer
        )
        if policy.compact_interval is not None:
            scheduler.register_callback(
                "compact",
                lambda budget, relation: self.compact(relation),
                interval_ops=policy.compact_interval,
                priority=5,
                cost_class="bulk",
            )
        if self._selector is not None and policy.autoselect_interval is not None:
            scheduler.register_callback(
                "autoselect",
                lambda budget, relation: self.autoselect(relation),
                interval_ops=policy.autoselect_interval,
                priority=3,
                cost_class="bulk",
            )
        if policy.evict_interval is not None and self._storage == "disk":
            scheduler.register_callback(
                "evict",
                lambda budget, relation: self._evict_pass(),
                interval_ops=policy.evict_interval,
                priority=0,
                cost_class="io",
            )
        return scheduler

    def _evict_pass(self) -> int:
        """Ask every live shard index to shed cold decoded trees."""
        evicted = 0
        for _relation, shard in self._shard_items():
            snap = shard.snapshot
            for index in (snap.base, snap.overlay):
                if index is not None and index.maybe_evict():
                    evicted += 1
        return evicted

    def _tick(self, relation: Optional[str], count: int) -> None:
        """Advance the maintenance clock (one op per matched tuple or
        predicate write — the unified semantics documented on
        :class:`~repro.maintenance.MaintenanceClock`)."""
        self._maintenance.advance(count, relation=relation)

    @property
    def maintenance_scheduler(self) -> Optional[MaintenanceScheduler]:
        """The facade's scheduler, or ``None`` without a policy."""
        return self._maintenance

    @property
    def maintenance_stats(self) -> MatchStatistics:
        """Counters fed by the scheduler's ``on_maintenance`` hook."""
        return self._maint_observer.stats

    def maintenance_report(self) -> Dict[str, Any]:
        """Introspect the maintenance plane (mirrors :meth:`tuning_report`)."""
        if self._maintenance is None:
            return {"enabled": False, "clock_ops": 0, "tasks": {}, "failures": []}
        return self._maintenance.report()

    # -- shard / pool management ---------------------------------------

    def _index_factory(self) -> PredicateIndex:
        index = PredicateIndex(
            tree_factory=self._tree_factory,
            estimator=self._estimator,
            multi_clause=self._multi_clause,
            stab_cache_size=self._snapshot_cache_size,
            adaptive=False,
            columnar=self._columnar,
            storage=self._storage,
            data_dir=self._data_dir,
            memory_budget=self._memory_budget,
        )
        # The auto-selection plan rides on every fresh base/overlay:
        # the plan dict is replaced wholesale under _auto_lock, so a
        # bare read here always sees a complete plan.
        plan = self._backend_plan
        if plan:
            index.set_backend_plan(plan)
        return index

    def shard(self, relation: str) -> RelationShard:
        """The shard for *relation*, creating it on first use."""
        shard = self._shards.get(relation)
        if shard is not None:
            return shard
        with self._catalog_lock:
            shard = self._shards.get(relation)
            if shard is None:
                shard = RelationShard(
                    relation,
                    self._index_factory,
                    compaction_threshold=self._compaction_threshold,
                    publish_hooks=self._publish_hooks,
                )
                self._shards[relation] = shard
            return shard

    @property
    def storage(self) -> str:
        """``"memory"`` or ``"disk"``."""
        return self._storage

    @property
    def data_dir(self) -> Optional[str]:
        """The disk tier's data directory (``None`` on the memory tier)."""
        return self._data_dir

    def resident_bytes(self) -> int:
        """Decoded-object residency summed over every published snapshot.

        Counts the current epoch's base and overlay of each shard; old
        epochs still pinned by in-flight readers are unreachable from
        here and die with their readers.
        """
        total = 0
        for _relation, shard in self._shard_items():
            snap = shard.snapshot
            for index in (snap.base, snap.overlay):
                counter = getattr(index, "resident_bytes", None)
                if counter is not None:
                    total += counter()
        return total

    def _adopt_shard(
        self,
        relation: str,
        shard: RelationShard,
        idents: Iterable[Hashable],
    ) -> None:
        """Install a recovered shard and its ident routing (cold start).

        Recovery seam for :func:`repro.disk.checkpoint.recover_concurrent`:
        the shard arrives pre-built from checkpoint segments at its
        manifest epoch, *idents* are the predicates it already holds.
        Refuses to replace a live shard — recovery populates an empty
        facade, it never clobbers one in use.
        """
        with self._catalog_lock:
            if relation in self._shards:
                raise ConcurrencyError(
                    f"cannot adopt shard {relation!r}: relation already live"
                )
            for ident in idents:
                existing = self._relation_of.get(ident)
                if existing is not None and existing != relation:
                    raise PredicateError(
                        f"predicate ident {ident!r} already indexed under "
                        f"relation {existing!r}"
                    )
                self._relation_of[ident] = relation
            self._shards[relation] = shard

    def _shard_items(self) -> List[Tuple[str, RelationShard]]:
        """Stable snapshot of the shard table, taken under the catalog lock.

        Iterating ``self._shards`` bare can race a first-use shard
        creation and raise ``dictionary changed size during iteration``.
        """
        with self._catalog_lock:
            return list(self._shards.items())

    def _claim_ident(self, ident: Hashable, relation: str) -> bool:
        """Reserve *ident* for *relation* in the routing map.

        Returns ``True`` when this call inserted the entry (the caller
        must release it with :meth:`_release_ident` if the shard add
        fails), ``False`` when the ident is already routed to the same
        relation (the shard will reject the duplicate itself).  An
        ident routed to a *different* relation raises — without this
        guard a cross-relation duplicate would silently overwrite the
        routing entry and strand the first predicate (still matching,
        unreachable via ``get``/``remove``), diverging from the serial
        index's uniqueness contract.
        """
        with self._catalog_lock:
            existing = self._relation_of.get(ident)
            if existing is None:
                self._relation_of[ident] = relation
                return True
            if existing != relation:
                raise PredicateError(
                    f"predicate ident {ident!r} already indexed under "
                    f"relation {existing!r}"
                )
            return False

    def _release_ident(self, ident: Hashable, relation: str) -> None:
        """Undo a claim whose shard add raised.

        The entry is kept when the shard's current snapshot already
        holds the ident — the predicate *was* published despite the
        exception (a post-publish hook raised, or a racing duplicate
        add won) and must stay routable.
        """
        shard = self._shards.get(relation)
        if shard is not None and ident in shard.snapshot:
            return
        with self._catalog_lock:
            if self._relation_of.get(ident) == relation:
                del self._relation_of[ident]

    # -- auto-selection evidence ---------------------------------------

    def _observe_read(
        self,
        relation: str,
        snapshot: EpochSnapshot,
        tuples: Iterable[Mapping[str, Any]],
    ) -> None:
        """Fold one read's per-attribute stab counts into the evidence.

        Counts non-null values for every attribute the snapshot keeps
        a tree for (base or overlay — both are frozen for the
        snapshot's life) — the same logical totals the serial
        pipeline's ``on_attribute_stabs`` hook reports.  Only called
        when auto-selection is on; readers pay nothing otherwise.
        """
        attrs = set(snapshot.base.attribute_backends(relation))
        if snapshot.overlay is not None:
            attrs.update(snapshot.overlay.attribute_backends(relation))
        if not attrs:
            return
        counts: Dict[str, int] = {}
        for tup in tuples:
            for attribute in attrs:
                if tup.get(attribute) is not None:
                    counts[attribute] = counts.get(attribute, 0) + 1
        if counts:
            with self._auto_lock:
                self._selector.evidence.observe_stabs(relation, counts)

    def _indexed_attrs(self, relation: str, ident: Hashable) -> Tuple[str, ...]:
        """The attributes whose trees hold *ident*, overlay first."""
        shard = self._shards.get(relation)
        if shard is None:
            return ()
        snapshot = shard.snapshot
        for index in (snapshot.overlay, snapshot.base):
            if index is None:
                continue
            attrs = index.indexed_attributes(ident)
            if attrs:
                return attrs
        return ()

    def _record_write(
        self, relation: str, attrs: Iterable[str], insert: bool
    ) -> None:
        with self._auto_lock:
            evidence = self._selector.evidence
            for attribute in attrs:
                if insert:
                    evidence.observe_insert(relation, attribute)
                else:
                    evidence.observe_delete(relation, attribute)

    def _get_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    if self._closed:
                        raise ConcurrencyError(
                            "ConcurrentPredicateIndex is closed"
                        )
                    pool = ThreadPoolExecutor(
                        max_workers=self._workers,
                        thread_name_prefix="repro-match",
                    )
                    self._pool = pool
        return pool

    def _get_process_pool(self) -> Any:
        pool = self._process_pool
        if pool is None:
            with self._pool_lock:
                pool = self._process_pool
                if pool is None:
                    if self._closed:
                        raise ConcurrencyError(
                            "ConcurrentPredicateIndex is closed"
                        )
                    from ..parallel import ProcessMatchPool

                    pool = ProcessMatchPool(
                        workers=max(1, self._workers),
                        min_chunk=self._min_chunk,
                    )
                    self._process_pool = pool
        return pool

    def _process_match(
        self, snapshot: EpochSnapshot, tuple_list: List[Mapping[str, Any]]
    ) -> Optional[List[List[Predicate]]]:
        """One attempt at the process tier; ``None`` means fall back."""
        try:
            pool = self._get_process_pool()
            return pool.match_batch(snapshot, tuple_list)
        except (ConcurrencyError, RuntimeError):
            # closed (or closing) facade, or a pool that cannot start:
            # the caller runs the batch in-process instead
            return None

    def degrade_process_tier(self, reason: str) -> None:
        """Force the process tier into degraded mode (bench/test hook).

        Subsequent ``match_batch`` calls run on the in-process path with
        identical results — this is the state the tier enters on its own
        when every worker slot exhausts its restart budget.  No-op
        unless ``pool="process"``.
        """
        if self._pool_kind != "process":
            return
        self._get_process_pool().degrade(reason)

    def process_stats(self) -> Optional[Dict[str, Any]]:
        """Diagnostics from the process tier (``None`` before first use).

        Keys include ``live``, ``restarts``, ``kills``, ``quarantined``,
        ``degraded`` and ``segments`` — see
        :meth:`repro.parallel.ProcessMatchPool.stats`.
        """
        pool = self._process_pool
        return pool.stats() if pool is not None else None

    def close(self) -> None:
        """Shut down the worker pools.  Idempotent.

        Matching stays available afterwards (it just runs inline, with
        unchanged results); registration is unaffected.  For the
        process tier this also reaps every worker process and unlinks
        every published shared-memory segment.
        """
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
            process_pool = self._process_pool
        if pool is not None:
            pool.shutdown(wait=True)
        if process_pool is not None:
            process_pool.close()

    def __enter__(self) -> "ConcurrentPredicateIndex":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- publication hooks ---------------------------------------------

    def on_publish(self, hook: PublishHook) -> None:
        """Register ``hook(relation, epoch, kind, payload)``.

        Called after every epoch publication, under the publishing
        shard's write lock — the calls for one relation arrive in
        strict epoch order.  Hooks must be fast and must never call
        this facade's write API (``add``/``remove``/``retune``/…), or
        they will deadlock on the shard lock they are already under.
        """
        self._publish_hooks.append(hook)

    # -- PredicateMatcher: registration --------------------------------

    def add(self, predicate: Predicate) -> Hashable:
        """Register *predicate*; returns its identifier."""
        normalized = predicate.normalized()
        if normalized is None:
            raise PredicateError(
                f"predicate {predicate} is unsatisfiable and cannot be indexed"
            )
        relation = normalized.relation
        ident = normalized.ident
        shard = self.shard(relation)
        claimed = self._claim_ident(ident, relation)
        try:
            shard.add(normalized)
        except BaseException:
            if claimed:
                self._release_ident(ident, relation)
            raise
        if self._selector is not None:
            self._record_write(
                relation, self._indexed_attrs(relation, ident), insert=True
            )
        if self._maintenance is not None:
            self._tick(relation, 1)
        return ident

    def add_many(self, predicates: Iterable[Predicate]) -> List[Hashable]:
        """Register many predicates grouped by relation shard."""
        by_relation: Dict[str, List[Predicate]] = {}
        ordered: List[Hashable] = []
        for predicate in predicates:
            normalized = predicate.normalized()
            if normalized is None:
                raise PredicateError(
                    f"predicate {predicate} is unsatisfiable and cannot be indexed"
                )
            by_relation.setdefault(normalized.relation, []).append(normalized)
            ordered.append(normalized.ident)
        for relation, group in by_relation.items():
            shard = self.shard(relation)
            claimed: List[Hashable] = []
            try:
                for normalized in group:
                    if self._claim_ident(normalized.ident, relation):
                        claimed.append(normalized.ident)
                shard.add_many(group)
            except BaseException:
                for ident in claimed:
                    self._release_ident(ident, relation)
                raise
            if self._selector is not None:
                for normalized in group:
                    self._record_write(
                        relation,
                        self._indexed_attrs(relation, normalized.ident),
                        insert=True,
                    )
            if self._maintenance is not None:
                self._tick(relation, len(group))
        return ordered

    def remove(self, ident: Hashable) -> Predicate:
        """Unregister and return the predicate under *ident*."""
        # pop() is atomic: exactly one of several racing removers of
        # the same ident proceeds to the shard; the rest raise here.
        relation = self._relation_of.pop(ident, None)
        if relation is None:
            raise UnknownIntervalError(ident)
        # capture before the remove: afterwards the snapshot no longer
        # holds the ident and the attributes are unrecoverable
        attrs = (
            self._indexed_attrs(relation, ident)
            if self._selector is not None
            else ()
        )
        try:
            predicate = self._shards[relation].remove(ident)
        except BaseException:
            self._relation_of.setdefault(ident, relation)
            raise
        if attrs:
            self._record_write(relation, attrs, insert=False)
        if self._maintenance is not None:
            self._tick(relation, 1)
        return predicate

    # -- PredicateMatcher: matching (lock-free reads) ------------------

    def snapshot(self, relation: str) -> EpochSnapshot:
        """The current epoch snapshot for *relation* (may be empty)."""
        return self.shard(relation).snapshot

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        """All predicates of *relation* matching *tup* at one epoch."""
        snapshot = self.snapshot(relation)
        if self._selector is not None:
            self._observe_read(relation, snapshot, (tup,))
        matched = snapshot.match(tup)
        if self._maintenance is not None:
            self._tick(relation, 1)
        return matched

    def match_idents(self, relation: str, tup: Mapping[str, Any]) -> Set[Hashable]:
        """Identifiers of all matching predicates at one epoch."""
        snapshot = self.snapshot(relation)
        if self._selector is not None:
            self._observe_read(relation, snapshot, (tup,))
        matched = snapshot.match_idents(tup)
        if self._maintenance is not None:
            self._tick(relation, 1)
        return matched

    def match_idents_at(
        self, relation: str, tup: Mapping[str, Any]
    ) -> Tuple[int, frozenset]:
        """``(epoch, idents)`` — the match *and* the epoch that served it.

        The read-side half of the epoch checker protocol: a stress
        reader records this pair and the checker later validates the
        idents against a serial replay of the publication log up to
        that epoch.
        """
        snapshot = self.snapshot(relation)
        return snapshot.epoch, frozenset(snapshot.match_idents(tup))

    def match_batch(
        self, relation: str, tuples: Iterable[Mapping[str, Any]]
    ) -> List[List[Predicate]]:
        """Match several tuples against one epoch, fanning out if enabled.

        The whole batch is served by a **single** snapshot — a batch
        never straddles a concurrent write.  With ``workers > 1`` the
        tuple list is cut into contiguous chunks, matched on the pool,
        and the chunk results are concatenated in input order, making
        the output independent of worker scheduling.

        With ``pool="process"`` the batch is first offered to the
        supervised multiprocess tier; if it declines (too small, no
        worker available, degraded after exhausting its restart budget,
        or the facade is closed) the batch runs on this tier's
        in-process path instead.  Either way the rows are identical and
        arrive in the snapshot's canonical order.
        """
        snapshot = self.snapshot(relation)
        tuple_list = tuples if isinstance(tuples, list) else list(tuples)
        if self._selector is not None:
            self._observe_read(relation, snapshot, tuple_list)
        if self._pool_kind == "process" and self._workers >= 1:
            rows = self._process_match(snapshot, tuple_list)
            if rows is None:
                # degraded / declined: in-process answer, same canonical
                # order as the process tier so results are mode-independent
                rows = snapshot.canonical_rows(
                    self._thread_match_batch(snapshot, tuple_list)
                )
        else:
            rows = self._thread_match_batch(snapshot, tuple_list)
        if self._maintenance is not None and tuple_list:
            self._tick(relation, len(tuple_list))
        return rows

    def _thread_match_batch(
        self, snapshot: EpochSnapshot, tuple_list: List[Mapping[str, Any]]
    ) -> List[List[Predicate]]:
        """The in-process tier: thread fan-out or inline."""
        if self._workers <= 1 or len(tuple_list) < 2 * self._min_chunk:
            return snapshot.match_batch(tuple_list)
        chunk_size = max(
            self._min_chunk,
            -(-len(tuple_list) // self._workers),  # ceil division
        )
        chunks = [
            tuple_list[start : start + chunk_size]
            for start in range(0, len(tuple_list), chunk_size)
        ]
        if len(chunks) == 1:
            return snapshot.match_batch(tuple_list)
        try:
            pool = self._get_pool()
            futures = [
                pool.submit(snapshot.match_batch, chunk) for chunk in chunks
            ]
        except (ConcurrencyError, RuntimeError):
            # closed (or closing) facade: the pool is gone, but matching
            # stays available — run the batch inline as close() promises.
            return snapshot.match_batch(tuple_list)
        rows: List[List[Predicate]] = []
        for future in futures:
            rows.extend(future.result())
        return rows

    def match_batch_grouped(
        self, batches: Mapping[str, Iterable[Mapping[str, Any]]]
    ) -> Dict[str, List[List[Predicate]]]:
        """Match per-relation batches concurrently, one task per shard.

        Each relation's batch is served by its shard's current snapshot;
        with a pool the shards are matched in parallel.  Results are
        keyed by relation, per-tuple rows in input order.

        Each submitted task runs its relation's whole batch inline on
        one worker (``snapshot.match_batch`` directly, never the
        chunk-fanning :meth:`match_batch`): a task that resubmitted
        chunks to the same bounded pool and blocked on their futures
        could fill every worker with blocked parents and deadlock.
        """
        items = [
            (relation, tuples if isinstance(tuples, list) else list(tuples))
            for relation, tuples in batches.items()
        ]
        if self._pool_kind == "process":
            # the process tier parallelises within each relation's
            # batch; per-relation dispatch order adds nothing and the
            # thread pool would only contend with the dispatch loop
            return {
                relation: self.match_batch(relation, tuples)
                for relation, tuples in items
            }
        if self._workers <= 1 or len(items) <= 1:
            return {
                relation: self.match_batch(relation, tuples)
                for relation, tuples in items
            }
        try:
            pool = self._get_pool()
            futures = [
                (relation, pool.submit(self.snapshot(relation).match_batch, tuples))
                for relation, tuples in items
            ]
        except (ConcurrencyError, RuntimeError):
            # closed (or closing) facade: run everything inline.
            return {
                relation: self.snapshot(relation).match_batch(tuples)
                for relation, tuples in items
            }
        return {relation: future.result() for relation, future in futures}

    # -- maintenance ---------------------------------------------------

    def compact(self, relation: Optional[str] = None) -> Dict[str, int]:
        """Force compaction; returns ``{relation: new_epoch}``."""
        if relation is not None:
            shard = self._shards.get(relation)
            items = [(relation, shard)] if shard is not None else []
        else:
            items = self._shard_items()
        return {rel: shard.compact() for rel, shard in items}

    def retune(self, relation: Optional[str] = None) -> List[Hashable]:
        """Rebuild shard bases so entry-clause choices are re-made.

        The serial index migrates individual entry clauses in place;
        under snapshot publication the equivalent safe operation is a
        per-shard compaction — the fresh base re-runs entry-clause
        selection against the current estimator for every live
        predicate, and readers only ever see the old or the new epoch.
        Returns the identifiers whose entry attribute changed.
        """
        migrated: List[Hashable] = []
        if relation is not None:
            shard = self._shards.get(relation)
            items = [(relation, shard)] if shard is not None else []
        else:
            items = self._shard_items()
        for rel, shard in items:
            before = shard.snapshot
            old_attrs = {
                pred.ident: before.base.indexed_attributes(pred.ident)
                for pred in before.base.predicates_for(rel)
            }
            shard.compact()
            after = shard.snapshot
            for pred in after.base.predicates_for(rel):
                old = old_attrs.get(pred.ident)
                if old is not None and old != after.base.indexed_attributes(
                    pred.ident
                ):
                    migrated.append(pred.ident)
        return migrated

    def autoselect(self, relation: Optional[str] = None) -> List[Any]:
        """One cost-driven backend-selection pass over the shards.

        Decisions are priced against the facade-level evidence and the
        selector's calibrated cost table, exactly as in the serial
        index.  A migration, however, never touches a published tree:
        the winning ``(backend, factory)`` pair is recorded in the
        facade's backend plan and the shard is **compacted** — the
        fresh bulk-loaded base picks the plan up via
        ``set_backend_plan`` and is published as a whole new
        :class:`EpochSnapshot`.  Readers only ever see the old or the
        new epoch; the frozen old base is never mutated.

        Returns every :class:`BackendDecision` that cleared the
        evidence floor.  A compaction failure rolls the plan back and
        quarantines the (relation, attribute, backend) triple, exactly
        like a failed serial migration.
        """
        selector = self._selector
        if selector is None:
            raise PredicateError(
                "backend auto-selection is disabled; construct the facade "
                "with auto_backend=True"
            )
        from ..match.autoselect import AttributeProfile

        if relation is not None:
            shard = self._shards.get(relation)
            items = [(relation, shard)] if shard is not None else []
        else:
            items = self._shard_items()
        decisions: List[Any] = []
        with self._tune_lock:
            with self._auto_lock:
                selector.begin_pass()
            for rel, shard in items:
                snapshot = shard.snapshot
                base = snapshot.base
                overlay = snapshot.overlay
                backends = dict(base.attribute_backends(rel))
                if overlay is not None:
                    for attribute, name in overlay.attribute_backends(rel).items():
                        backends.setdefault(attribute, name)
                migrations: List[Any] = []
                for attribute, current in backends.items():
                    base_tree = base.tree_for(rel, attribute)
                    overlay_tree = (
                        overlay.tree_for(rel, attribute)
                        if overlay is not None
                        else None
                    )
                    size = (len(base_tree) if base_tree is not None else 0) + (
                        len(overlay_tree) if overlay_tree is not None else 0
                    )
                    # probe the populated tree: pre-compaction the base
                    # may be empty while everything sits in the overlay
                    tree = base_tree
                    if tree is None or (overlay_tree is not None and not len(tree)):
                        tree = overlay_tree
                    if tree is None:
                        continue
                    plan_entry = self._backend_plan.get(rel, {}).get(attribute)
                    if plan_entry is not None:
                        current = plan_entry[0]
                    elif current is None:
                        current = selector.default_backend
                    profile = AttributeProfile(
                        relation=rel,
                        attribute=attribute,
                        size=size,
                        current_backend=current,
                        usage=selector.evidence.usage(rel, attribute),
                        tree=tree,
                    )
                    decision = selector.decide(profile)
                    if decision is None:
                        continue
                    decisions.append(decision)
                    if decision.migrate:
                        migrations.append(decision)
                if not migrations:
                    continue
                with self._auto_lock:
                    old_plan = self._backend_plan
                    plan = {r: dict(a) for r, a in old_plan.items()}
                    rel_plan = plan.setdefault(rel, {})
                    for decision in migrations:
                        rel_plan[decision.attribute] = (
                            decision.chosen_backend,
                            selector.factory_for(decision.chosen_backend),
                        )
                    self._backend_plan = plan
                try:
                    shard.compact()
                except Exception as exc:  # noqa: BLE001 - quarantine & continue
                    with self._auto_lock:
                        self._backend_plan = old_plan
                        for decision in migrations:
                            selector.commit(decision, False, error=str(exc))
                else:
                    with self._auto_lock:
                        for decision in migrations:
                            selector.commit(decision, True)
        return decisions

    def tuning_report(self) -> Dict[str, Any]:
        """The selector's report plus the facade's live backend plan."""
        selector = self._selector
        if selector is None:
            raise PredicateError(
                "backend auto-selection is disabled; construct the facade "
                "with auto_backend=True"
            )
        with self._auto_lock:
            report = selector.report()
            report["backend_plan"] = {
                rel: {attr: entry[0] for attr, entry in attrs.items()}
                for rel, attrs in self._backend_plan.items()
            }
        return report

    def verify_and_rebuild(self) -> Dict[str, Any]:
        """Audit every shard's published base; rebuild the unhealthy ones.

        Readers are never exposed to a half-repaired state: a failing
        shard keeps serving its old epoch until the verified
        replacement base is published.
        """
        problems: List[str] = []
        rebuilt: List[str] = []
        for relation, shard in self._shard_items():
            snapshot = shard.snapshot
            shard_problems = snapshot.base.audit()
            if snapshot.overlay is not None:
                shard_problems.extend(snapshot.overlay.audit())
            if not shard_problems:
                continue
            problems.extend(f"{relation}: {p}" for p in shard_problems)
            shard.rebuild()
            rebuilt.append(relation)
        return {"healthy": not problems, "problems": problems, "rebuilt": rebuilt}

    # -- introspection -------------------------------------------------

    def get(self, ident: Hashable) -> Predicate:
        """Return the predicate registered under *ident*."""
        relation = self._relation_of.get(ident)
        if relation is None:
            raise UnknownIntervalError(ident)
        return self._shards[relation].snapshot.get(ident)

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._relation_of

    def __len__(self) -> int:
        return sum(len(shard.snapshot) for _, shard in self._shard_items())

    def relations(self) -> List[str]:
        """Relations with a shard (possibly empty after removals)."""
        return [relation for relation, _ in self._shard_items()]

    def epochs(self) -> Dict[str, int]:
        """Current published epoch per relation."""
        return {
            relation: shard.snapshot.epoch
            for relation, shard in self._shard_items()
        }

    def __repr__(self) -> str:
        return (
            f"<ConcurrentPredicateIndex {len(self)} predicates over "
            f"{len(self._shards)} shards, workers={self._workers}>"
        )
